// Package catalog implements Starburst's catalog: tables, views,
// indexes (attachments), statistics, and the registries of externally
// defined functions, storage managers and access methods. Corona's
// "base system functions (e.g., catalog interface) can frequently be
// used by the extension" (section 4) — all extensions flow through the
// registries held here.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/storage"
)

// Column describes one column of a table or view.
type Column struct {
	Name    string
	Type    datum.TypeID
	NotNull bool
}

// TableStats carries the optimizer's statistics for one table,
// maintained by Analyze and used for cardinality estimation.
type TableStats struct {
	Rows  int64
	Pages int64
	// ColCard is the number of distinct values per column.
	ColCard []int64
	// ColMin and ColMax bound each column's values (NULL when unknown
	// or non-scalar).
	ColMin, ColMax []datum.Value
}

// Index is an attachment instance on a table.
type Index struct {
	Name    string
	Table   string
	KeyCols []int
	Method  string
	Caps    storage.AccessMethodCaps
	Unique  bool
	At      storage.Attachment
}

// Table is a stored table: schema, storage handle, attachments, stats.
type Table struct {
	Name string
	Cols []Column
	// SM names the storage manager handling this table; Corona "must
	// ensure that the correct storage manager is invoked when a table
	// is accessed" (section 1).
	SM      string
	Rel     storage.Relation
	Indexes []*Index
	Stats   TableStats
	// System marks an engine-registered introspection table (the SYS
	// schema): read-only, excluded from user DDL, volatile.
	System bool

	// fb holds the observed-cardinality overlays (see feedback.go),
	// guarded by fbMu: folds happen after statements finish, concurrent
	// with compilations consulting the overlays.
	fbMu sync.Mutex
	fb   cardFeedback
}

// ColIndex resolves a column name (case-insensitive) to its ordinal, or
// -1 when absent.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// View is a named query. The definition is kept as Hydrogen text and
// re-translated into QGM at each use, where the view-merging rewrite
// rules take over ("as view definitions are hidden from the query
// writer, only the DBMS can rewrite queries involving views").
type View struct {
	Name string
	// ColNames optionally renames the output columns.
	ColNames []string
	Text     string
}

// Catalog is one database's schema plus the extension registries.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View

	// Funcs is the registry of scalar/aggregate/set-predicate/table
	// functions, seeded with built-ins.
	Funcs *expr.Registry
	// Storage is the registry of storage managers and access methods.
	Storage *storage.Registry
	// IO is the shared simulated-I/O counter for all relations.
	IO *storage.IOStats

	// faults, when non-nil, decorates new relations and attachments as
	// they are created (see AttachFaults).
	faults *storage.FaultInjector

	// version counts schema and statistics generations: every DDL
	// statement kind (CREATE/DROP TABLE, VIEW, INDEX), every statistics
	// update (Analyze) and every storage re-decoration (fault
	// attachment) bumps it. Plan caches key their entries on the version
	// they compiled against and lazily evict entries whose generation no
	// longer matches.
	version atomic.Int64
}

// Version reports the current schema/statistics generation.
func (c *Catalog) Version() int64 { return c.version.Load() }

// BumpVersion advances the schema generation, invalidating any plan
// compiled against earlier generations. Catalog mutators call it
// internally; it is exported for extensions that mutate storage out of
// band (e.g. a storage manager whose contents change externally).
func (c *Catalog) BumpVersion() { c.version.Add(1) }

// New returns an empty catalog with built-in registries.
func New() *Catalog {
	return &Catalog{
		tables:  map[string]*Table{},
		views:   map[string]*View{},
		Funcs:   expr.NewRegistry(),
		Storage: storage.NewRegistry(),
		IO:      &storage.IOStats{},
	}
}

func key(name string) string { return strings.ToUpper(name) }

// SystemSchema is the reserved name prefix of the engine's
// introspection tables.
const SystemSchema = "SYS."

// IsSystemName reports whether a table/view name lies in the reserved
// SYS schema (case-insensitive).
func IsSystemName(name string) bool { return strings.HasPrefix(key(name), SystemSchema) }

// SystemObjectError is the typed error returned when a statement tries
// to modify a system object: DML against a SYS table, or DDL that would
// create, drop, index or re-analyze anything in the reserved schema.
type SystemObjectError struct {
	// Name is the system object, e.g. "SYS.STATEMENTS".
	Name string
	// Op is the rejected operation, e.g. "INSERT" or "DROP TABLE".
	Op string
}

func (e *SystemObjectError) Error() string {
	return fmt.Sprintf("catalog: %s is a system object: %s is not allowed", e.Name, e.Op)
}

// checkNotSystem rejects user operations on reserved names.
func checkNotSystem(name, op string) error {
	if IsSystemName(name) {
		return &SystemObjectError{Name: key(name), Op: op}
	}
	return nil
}

// CreateTable creates a table under the named storage manager (empty
// for the default heap).
// starburst:locks db.stmtMu:write
func (c *Catalog) CreateTable(name string, cols []Column, smName string) (*Table, error) {
	if err := checkNotSystem(name, "CREATE TABLE"); err != nil {
		return nil, err
	}
	return c.createTable(name, cols, smName, false)
}

// CreateSystemTable registers one table of the engine's SYS
// introspection schema. It is the only path that may create tables
// under the reserved prefix; the resulting table is marked System so
// DML and user DDL reject it with a SystemObjectError.
func (c *Catalog) CreateSystemTable(name string, cols []Column, smName string) (*Table, error) {
	if !IsSystemName(name) {
		return nil, fmt.Errorf("catalog: system table %s must live in the %s schema", name, SystemSchema)
	}
	return c.createTable(name, cols, smName, true)
}

func (c *Catalog) createTable(name string, cols []Column, smName string, system bool) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("catalog: table %s needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, col := range cols {
		k := key(col.Name)
		if seen[k] {
			return nil, fmt.Errorf("catalog: duplicate column %s in %s", col.Name, name)
		}
		seen[k] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; ok {
		return nil, fmt.Errorf("catalog: table %s already exists", name)
	}
	if _, ok := c.views[k]; ok {
		return nil, fmt.Errorf("catalog: %s already exists as a view", name)
	}
	sm, err := c.Storage.StorageManager(smName)
	if err != nil {
		return nil, err
	}
	rel, err := sm.Create(name, len(cols), c.IO)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: strings.ToUpper(name), Cols: cols, SM: sm.Name(), Rel: rel, System: system}
	t.Stats.ColCard = make([]int64, len(cols))
	t.Stats.ColMin = make([]datum.Value, len(cols))
	t.Stats.ColMax = make([]datum.Value, len(cols))
	c.tables[k] = t
	c.BumpVersion()
	return t, nil
}

// DropTable removes a table and its attachments.
// starburst:locks db.stmtMu:write
func (c *Catalog) DropTable(name string) error {
	if err := checkNotSystem(name, "DROP TABLE"); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(name)]; !ok {
		return fmt.Errorf("catalog: no table %s", name)
	}
	delete(c.tables, key(name))
	c.BumpVersion()
	return nil
}

// Table resolves a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	return t, ok
}

// TableNames lists user tables, sorted. System (SYS.*) tables are
// listed by SystemTableNames instead: they snapshot live engine state,
// so dump/compare tooling iterating TableNames must not see them.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, t := range c.tables {
		if t.System {
			continue
		}
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// SystemTableNames lists the SYS virtual tables, sorted.
func (c *Catalog) SystemTableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, t := range c.tables {
		if t.System {
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// CreateView records a view definition.
// starburst:locks db.stmtMu:write
func (c *Catalog) CreateView(name string, colNames []string, text string) error {
	if err := checkNotSystem(name, "CREATE VIEW"); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("catalog: view %s already exists", name)
	}
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: %s already exists as a table", name)
	}
	c.views[k] = &View{Name: strings.ToUpper(name), ColNames: colNames, Text: text}
	c.BumpVersion()
	return nil
}

// DropView removes a view.
// starburst:locks db.stmtMu:write
func (c *Catalog) DropView(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.views[key(name)]; !ok {
		return fmt.Errorf("catalog: no view %s", name)
	}
	delete(c.views, key(name))
	c.BumpVersion()
	return nil
}

// View resolves a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[key(name)]
	return v, ok
}

// ViewNames lists views, sorted.
func (c *Catalog) ViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for _, v := range c.views {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}

// CreateIndex creates an attachment on a table using the named access
// method (empty for B-tree) and backfills it from existing records.
// starburst:locks db.stmtMu:write
func (c *Catalog) CreateIndex(name, tableName string, colNames []string, method string, unique bool) (*Index, error) {
	if err := checkNotSystem(tableName, "CREATE INDEX"); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[key(tableName)]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %s", tableName)
	}
	for _, ix := range t.Indexes {
		if strings.EqualFold(ix.Name, name) {
			return nil, fmt.Errorf("catalog: index %s already exists", name)
		}
	}
	if len(colNames) == 0 {
		return nil, fmt.Errorf("catalog: index %s needs key columns", name)
	}
	keyCols := make([]int, len(colNames))
	keyTypes := make([]datum.TypeID, len(colNames))
	for i, cn := range colNames {
		ord := t.ColIndex(cn)
		if ord < 0 {
			return nil, fmt.Errorf("catalog: no column %s in %s", cn, tableName)
		}
		keyCols[i] = ord
		keyTypes[i] = t.Cols[ord].Type
	}
	am, err := c.Storage.AccessMethod(method)
	if err != nil {
		return nil, err
	}
	at, err := am.New(keyTypes, unique, c.IO)
	if err != nil {
		return nil, err
	}
	// A fault-wrapped access method cannot know the owning table at New
	// time; name the counter bucket now.
	if fa, ok := at.(*storage.FaultAttachment); ok && fa.Owner() == "" {
		fa.SetOwner(t.Name)
	}
	ix := &Index{
		Name:    strings.ToUpper(name),
		Table:   t.Name,
		KeyCols: keyCols,
		Method:  am.Name(),
		Caps:    am.Caps(),
		Unique:  unique,
		At:      at,
	}
	// Backfill from stored records.
	it := t.Rel.Scan()
	defer it.Close()
	for {
		row, rid, ok := it.Next()
		if !ok {
			if err := storage.IterErr(it); err != nil {
				return nil, fmt.Errorf("catalog: backfilling %s: %w", name, err)
			}
			break
		}
		if err := at.Insert(extractKey(row, keyCols), rid); err != nil {
			return nil, fmt.Errorf("catalog: backfilling %s: %w", name, err)
		}
	}
	t.Indexes = append(t.Indexes, ix)
	c.BumpVersion()
	return ix, nil
}

// DropIndex removes an attachment.
// starburst:locks db.stmtMu:write
func (c *Catalog) DropIndex(tableName, name string) error {
	if err := checkNotSystem(tableName, "DROP INDEX"); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[key(tableName)]
	if !ok {
		return fmt.Errorf("catalog: no table %s", tableName)
	}
	for i, ix := range t.Indexes {
		if strings.EqualFold(ix.Name, name) {
			t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
			c.BumpVersion()
			return nil
		}
	}
	return fmt.Errorf("catalog: no index %s on %s", name, tableName)
}

func extractKey(row datum.Row, cols []int) datum.Row {
	k := make(datum.Row, len(cols))
	for i, c := range cols {
		k[i] = row[c]
	}
	return k
}

// Insert stores a row in a table, enforcing NOT NULL and type
// compatibility, coercing numerics, and maintaining every attachment.
func (c *Catalog) Insert(t *Table, row datum.Row) (storage.RID, error) {
	if len(row) != len(t.Cols) {
		return storage.RID{}, fmt.Errorf("catalog: %s: %d values for %d columns", t.Name, len(row), len(t.Cols))
	}
	coerced := make(datum.Row, len(row))
	for i, v := range row {
		if v.IsNull() {
			if t.Cols[i].NotNull {
				return storage.RID{}, fmt.Errorf("catalog: %s.%s is NOT NULL", t.Name, t.Cols[i].Name)
			}
			coerced[i] = v
			continue
		}
		cv, err := datum.Coerce(v, t.Cols[i].Type)
		if err != nil {
			return storage.RID{}, fmt.Errorf("catalog: %s.%s: %w", t.Name, t.Cols[i].Name, err)
		}
		coerced[i] = cv
	}
	rid, err := t.Rel.Insert(coerced)
	if err != nil {
		return storage.RID{}, err
	}
	for _, ix := range t.Indexes {
		if err := ix.At.Insert(extractKey(coerced, ix.KeyCols), rid); err != nil {
			// Undo the record insert to keep table and attachments
			// consistent (uniqueness violations surface here).
			t.Rel.Delete(rid)
			return storage.RID{}, err
		}
	}
	return rid, nil
}

// Delete removes the record at rid and its index entries.
func (c *Catalog) Delete(t *Table, rid storage.RID) error {
	row, ok := t.Rel.Fetch(rid)
	if !ok {
		return fmt.Errorf("catalog: %s: no record %s", t.Name, rid)
	}
	for _, ix := range t.Indexes {
		if err := ix.At.Delete(extractKey(row, ix.KeyCols), rid); err != nil {
			return err
		}
	}
	return t.Rel.Delete(rid)
}

// Update replaces the record at rid, maintaining attachments.
func (c *Catalog) Update(t *Table, rid storage.RID, newRow datum.Row) error {
	old, ok := t.Rel.Fetch(rid)
	if !ok {
		return fmt.Errorf("catalog: %s: no record %s", t.Name, rid)
	}
	for i, v := range newRow {
		if v.IsNull() && t.Cols[i].NotNull {
			return fmt.Errorf("catalog: %s.%s is NOT NULL", t.Name, t.Cols[i].Name)
		}
	}
	for _, ix := range t.Indexes {
		oldKey := extractKey(old, ix.KeyCols)
		newKey := extractKey(newRow, ix.KeyCols)
		if storage.CompareKeys(oldKey, newKey) == 0 {
			continue
		}
		if err := ix.At.Delete(oldKey, rid); err != nil {
			return err
		}
		if err := ix.At.Insert(newKey, rid); err != nil {
			return err
		}
	}
	return t.Rel.Update(rid, newRow)
}

// Analyze recomputes optimizer statistics for a table. The scan error
// (surfaced through storage.IterErr — e.g. an injected fault) aborts
// the refresh: stats computed from a partial scan would silently skew
// every subsequent plan.
//
// starburst:locks db.stmtMu:write
func (c *Catalog) Analyze(t *Table) error {
	if t.System {
		// Statistics over a SYS snapshot would be stale by the next
		// statement; the optimizer costs them from live RowCount instead.
		return &SystemObjectError{Name: t.Name, Op: "ANALYZE"}
	}
	n := len(t.Cols)
	distinct := make([]map[string]bool, n)
	mins := make([]datum.Value, n)
	maxs := make([]datum.Value, n)
	for i := range distinct {
		distinct[i] = map[string]bool{}
		mins[i], maxs[i] = datum.Null, datum.Null
	}
	rows := int64(0)
	it := t.Rel.Scan()
	defer it.Close()
	for {
		row, _, ok := it.Next()
		if !ok {
			if err := storage.IterErr(it); err != nil {
				return fmt.Errorf("catalog: analyzing %s: %w", t.Name, err)
			}
			break
		}
		rows++
		for i, v := range row {
			if v.IsNull() {
				continue
			}
			distinct[i][datum.RowKey(datum.Row{v})] = true
			if mins[i].IsNull() || datum.SortCompare(v, mins[i]) < 0 {
				mins[i] = v
			}
			if maxs[i].IsNull() || datum.SortCompare(v, maxs[i]) > 0 {
				maxs[i] = v
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.Stats.Rows = rows
	t.Stats.Pages = t.Rel.PageCount()
	for i := range distinct {
		t.Stats.ColCard[i] = int64(len(distinct[i]))
		t.Stats.ColMin[i] = mins[i]
		t.Stats.ColMax[i] = maxs[i]
	}
	c.BumpVersion()
	// Freshly measured statistics supersede corrections learned against
	// the stale ones.
	t.clearCardOverlays()
	return nil
}
