package catalog

// Transactional DML: the MVCC write paths, the per-transaction write
// log that gives statements and transactions rollback, and the version
// garbage collector.
//
// Writes are in-place with prior-image chains (see internal/txn): the
// relation always holds a row's newest image, and readers whose
// snapshots predate it walk back through the version entry's chain.
// The write log records one compensating action per storage-level step
// — the PR-2 undo log promoted to transaction scope — so ROLLBACK (and
// statement-level abort inside a larger transaction, via Mark /
// RollbackTo) restores the heap, the version map and every attachment
// to the pre-write state. Compensations run against the unwrapped
// (fault-free) store: rollback must not be failed by the injector that
// aborted the statement.
//
// Index maintenance under MVCC is insert-only: a key-changing update
// inserts the new-key entry eagerly and leaves the old-key entry
// linked (recorded as a stale key on the version) so older snapshots
// can still reach the row by its old key; the GC unlinks stale entries
// once no snapshot needs them. Physical deletes are likewise deferred
// to the GC. Index scans therefore recheck the key they used against
// the visible image whenever the table has unfrozen versions.

import (
	"errors"
	"fmt"

	"repro/internal/datum"
	"repro/internal/storage"
	"repro/internal/txn"
)

type writeKind uint8

const (
	wRowInsert writeKind = iota // compensate: physically delete, drop entry
	wRowDelete                  // compensate: clear xmax (or drop created entry)
	wRowUpdate                  // compensate: restore old image, pop prev
	wIxInsert                   // compensate: delete the entry
	wRelink                     // compensate: re-insert a force-unlinked entry
	wStaleKey                   // compensate: drop the recorded stale key
)

// txnWrite is one compensating action in a transaction's write log.
type txnWrite struct {
	kind  writeKind
	table string
	rid   storage.RID
	// key is the index key (wIxInsert, wRelink, wStaleKey).
	key datum.Row
	// index names the attachment (wIxInsert, wRelink, wStaleKey).
	index string
	// oldRow is the pre-update image (wRowUpdate).
	oldRow datum.Row
	// created marks a version entry this write registered; its
	// compensation unregisters it.
	created bool
	// pushedPrev marks an update that chained a prior image and took
	// over xmin; its compensation pops the chain and restores xmin.
	pushedPrev          bool
	oldXminTxn, oldXmin int64
}

// TxnState carries one transaction's write log through its statements.
// The engine owns its lifecycle: created at BEGIN (or per statement in
// autocommit), rolled back on abort, garbage-enqueued on commit.
type TxnState struct {
	// Txn is the identity and snapshot the writes run under.
	Txn    *txn.Txn
	writes []txnWrite
}

// NewTxnState wraps a transaction for DML.
func NewTxnState(t *txn.Txn) *TxnState { return &TxnState{Txn: t} }

// Mark returns a savepoint: the current write-log length. A statement
// that fails mid-flight rolls back to its entry mark, leaving the
// transaction's earlier statements intact.
func (ts *TxnState) Mark() int { return len(ts.writes) }

// Writes reports the number of logged compensating actions.
func (ts *TxnState) Writes() int { return len(ts.writes) }

func (ts *TxnState) note(w txnWrite) { ts.writes = append(ts.writes, w) }

// RollbackTo undoes the write log back to a Mark, in reverse order,
// bypassing fault decoration. It keeps going past individual
// compensation failures (joining them into the returned error): a
// partial rollback is still better than none.
func (ts *TxnState) RollbackTo(c *Catalog, mark int) error {
	var errs []error
	for i := len(ts.writes) - 1; i >= mark; i-- {
		w := ts.writes[i]
		t, ok := c.currentTable(w.table)
		if !ok {
			continue // table dropped; nothing left to restore
		}
		tv := t.MVCC
		switch w.kind {
		case wRowInsert:
			tv.WriteLock()
			if err := storage.UnwrapRelation(t.Rel).Delete(w.rid); err != nil {
				errs = append(errs, fmt.Errorf("catalog: undo %s: %w", t.Name, err))
			}
			if tv.LookupLocked(w.rid) != nil {
				tv.RemoveLocked(w.rid)
				tv.AddCount(-1)
			}
			tv.WriteUnlock()
		case wRowDelete:
			tv.WriteLock()
			if v := tv.LookupLocked(w.rid); v != nil {
				if w.created {
					tv.RemoveLocked(w.rid)
					tv.AddCount(-1)
				} else {
					v.SetXmax(0, 0)
				}
			}
			tv.WriteUnlock()
		case wRowUpdate:
			tv.WriteLock()
			if err := storage.UnwrapRelation(t.Rel).Update(w.rid, w.oldRow); err != nil {
				errs = append(errs, fmt.Errorf("catalog: undo %s: %w", t.Name, err))
			}
			if v := tv.LookupLocked(w.rid); v != nil {
				if w.pushedPrev {
					v.PopPrev()
					v.SetXmin(w.oldXminTxn, w.oldXmin)
				}
				if w.created {
					tv.RemoveLocked(w.rid)
					tv.AddCount(-1)
				}
			}
			tv.WriteUnlock()
		case wIxInsert:
			if ix := findIndex(t, w.index); ix != nil {
				if err := storage.UnwrapAttachment(ix.At).Delete(w.key, w.rid); err != nil {
					errs = append(errs, fmt.Errorf("catalog: undo %s.%s: %w", t.Name, w.index, err))
				}
			}
		case wRelink:
			if ix := findIndex(t, w.index); ix != nil {
				if err := storage.UnwrapAttachment(ix.At).Insert(w.key, w.rid); err != nil {
					errs = append(errs, fmt.Errorf("catalog: undo %s.%s: %w", t.Name, w.index, err))
				}
			}
		case wStaleKey:
			tv.WriteLock()
			if v := tv.LookupLocked(w.rid); v != nil {
				v.DropStale(w.index, w.key)
			}
			tv.WriteUnlock()
		}
	}
	ts.writes = ts.writes[:mark]
	return errors.Join(errs...)
}

// Rollback undoes the whole transaction's write log.
func (ts *TxnState) Rollback(c *Catalog) error { return ts.RollbackTo(c, 0) }

func findIndex(t *Table, name string) *Index {
	for _, ix := range t.Indexes {
		if ix.Name == name {
			return ix
		}
	}
	return nil
}

// checkWriteConflict enforces first-writer-wins: a row whose newest
// write or deletion belongs to another in-flight transaction, or
// committed after our snapshot, cannot be written.
func checkWriteConflict(v *txn.RowVersion, snap txn.Snapshot, table string) error {
	if dt, dc := v.Xmax(); dt != 0 && dt != snap.Own {
		if dc == 0 {
			return &txn.ConflictError{Table: table, Other: dt}
		}
		if dc > snap.TS {
			return &txn.ConflictError{Table: table}
		}
		// Deletion committed at or below our snapshot: the row is dead
		// for us and should never have been targeted.
		return fmt.Errorf("catalog: %s: record deleted", table)
	}
	if xt, xc := v.Xmin(); xt != 0 && xt != snap.Own {
		if xc == 0 {
			return &txn.ConflictError{Table: table, Other: xt}
		}
		if xc > snap.TS {
			return &txn.ConflictError{Table: table}
		}
	}
	return nil
}

// InsertTx stores a row under a transaction: the record is written
// physically, registered in the version map as created by ts.Txn
// (invisible to every other snapshot until commit), and entered into
// every current attachment. The whole mutation runs inside the table's
// version write lock, which keeps the count fast path sound and
// serializes row writers per table.
func (c *Catalog) InsertTx(t *Table, row datum.Row, ts *TxnState) (storage.RID, error) {
	tv := t.MVCC
	if tv == nil {
		return storage.RID{}, &SystemObjectError{Name: t.Name, Op: "INSERT"}
	}
	coerced, err := coerceRow(t, row)
	if err != nil {
		return storage.RID{}, err
	}
	cur, ok := c.currentTable(t.Name)
	if !ok {
		cur = t // table dropped mid-statement; maintain the pinned index set
	}
	tv.BeginWrite()
	defer tv.EndWrite()
	tv.WriteLock()
	defer tv.WriteUnlock()

	tv.AddCount(1)
	rid, err := t.Rel.Insert(coerced)
	if err != nil {
		tv.AddCount(-1)
		return storage.RID{}, err
	}
	v := txn.NewVersion(ts.Txn.ID)
	tv.PutLocked(rid, v)
	ts.Txn.Track(v)
	ts.note(txnWrite{kind: wRowInsert, table: t.Name, rid: rid})

	for _, ix := range cur.Indexes {
		key := extractKey(coerced, ix.KeyCols)
		if err := c.insertEntry(cur, tv, ix, key, rid, ts); err != nil {
			return storage.RID{}, err
		}
	}
	return rid, nil
}

// DeleteTx tombstones the record at rid for ts.Txn: it sets the
// version's xmax, leaving the record and its index entries physically
// in place for older snapshots. The GC reaps them once no snapshot can
// see the row.
func (c *Catalog) DeleteTx(t *Table, rid storage.RID, ts *TxnState) error {
	tv := t.MVCC
	if tv == nil {
		return &SystemObjectError{Name: t.Name, Op: "DELETE"}
	}
	tv.BeginWrite()
	defer tv.EndWrite()
	tv.WriteLock()
	defer tv.WriteUnlock()

	if _, ok := t.Rel.Fetch(rid); !ok {
		return fmt.Errorf("catalog: %s: no record %s", t.Name, rid)
	}
	v := tv.LookupLocked(rid)
	created := false
	if v == nil {
		// Frozen row: register an entry carrying only our tombstone.
		v = txn.NewVersion(0)
		tv.AddCount(1)
		tv.PutLocked(rid, v)
		created = true
	} else {
		if dt, _ := v.Xmax(); dt == ts.Txn.ID {
			return fmt.Errorf("catalog: %s: no record %s", t.Name, rid)
		}
		if err := checkWriteConflict(v, ts.Txn.Snap, t.Name); err != nil {
			return err
		}
	}
	v.SetXmax(ts.Txn.ID, 0)
	ts.Txn.Track(v)
	ts.note(txnWrite{kind: wRowDelete, table: t.Name, rid: rid, created: created})
	return nil
}

// UpdateTx replaces the record's image in place for ts.Txn: the old
// image is chained as a prior version for older snapshots, the
// relation takes the new image, and key-changing attachments gain the
// new-key entry eagerly while the old-key entry stays linked as a
// stale key until GC.
func (c *Catalog) UpdateTx(t *Table, rid storage.RID, newRow datum.Row, ts *TxnState) error {
	tv := t.MVCC
	if tv == nil {
		return &SystemObjectError{Name: t.Name, Op: "UPDATE"}
	}
	if err := checkNotNull(t, newRow); err != nil {
		return err
	}
	cur, ok := c.currentTable(t.Name)
	if !ok {
		cur = t
	}
	tv.BeginWrite()
	defer tv.EndWrite()
	tv.WriteLock()
	defer tv.WriteUnlock()

	old, ok := t.Rel.Fetch(rid)
	if !ok {
		return fmt.Errorf("catalog: %s: no record %s", t.Name, rid)
	}
	v := tv.LookupLocked(rid)
	created, pushed := false, false
	var oldXminTxn, oldXminCTS int64
	switch {
	case v == nil:
		// Frozen row: the old image becomes a frozen prior version.
		v = txn.NewVersion(ts.Txn.ID)
		v.PushPrev(&txn.PrevImage{Row: old})
		tv.AddCount(1)
		tv.PutLocked(rid, v)
		created, pushed = true, true
	default:
		if err := checkWriteConflict(v, ts.Txn.Snap, t.Name); err != nil {
			return err
		}
		if xt, xc := v.Xmin(); xt == ts.Txn.ID && xc == 0 {
			// Second write by this transaction: the committed prior
			// image is already chained; the undo record restores the
			// intermediate image from its logged copy.
		} else {
			oldXminTxn, oldXminCTS = xt, xc
			v.PushPrev(&txn.PrevImage{Row: old, XminCTS: xc})
			v.SetXmin(ts.Txn.ID, 0)
			pushed = true
		}
	}
	if err := t.Rel.Update(rid, newRow); err != nil {
		// Unwind the version-side mutation; nothing was logged yet.
		if pushed {
			v.PopPrev()
			v.SetXmin(oldXminTxn, oldXminCTS)
		}
		if created {
			tv.RemoveLocked(rid)
			tv.AddCount(-1)
		}
		return err
	}
	ts.Txn.Track(v)
	ts.note(txnWrite{
		kind: wRowUpdate, table: t.Name, rid: rid, oldRow: old,
		created: created, pushedPrev: pushed,
		oldXminTxn: oldXminTxn, oldXmin: oldXminCTS,
	})

	for _, ix := range cur.Indexes {
		oldKey := extractKey(old, ix.KeyCols)
		newKey := extractKey(newRow, ix.KeyCols)
		if storage.CompareKeys(oldKey, newKey) == 0 {
			continue
		}
		if err := c.insertEntry(cur, tv, ix, newKey, rid, ts); err != nil {
			return err
		}
		// The old-key entry stays for older snapshots; GC unlinks it.
		v.AddStale(ix.Name, oldKey)
		ts.note(txnWrite{kind: wStaleKey, table: t.Name, rid: rid, index: ix.Name, key: oldKey})
	}
	return nil
}

// insertEntry adds one attachment entry, logging its compensation.
// On a unique violation it classifies the competing entries under MVCC
// and force-unlinks the ones that are dead or stale for every relevant
// snapshot, retrying the insert; genuinely live duplicates and entries
// owned by other in-flight transactions surface as errors.
func (c *Catalog) insertEntry(t *Table, tv *txn.TableVersions, ix *Index, key datum.Row, rid storage.RID, ts *TxnState) error {
	for attempt := 0; ; attempt++ {
		err := ix.At.Insert(key, rid)
		if err == nil {
			ts.note(txnWrite{kind: wIxInsert, table: t.Name, rid: rid, index: ix.Name, key: key})
			return nil
		}
		if !ix.Unique || attempt >= 3 {
			return err
		}
		unlinked, cerr := c.classifyDuplicates(t, tv, ix, key, rid, ts)
		if cerr != nil {
			return cerr
		}
		if unlinked == 0 {
			return err
		}
	}
}

// classifyDuplicates examines the entries blocking a unique insert.
// Deferred physical deletes and stale old-key entries are unlinked
// (with a relink compensation, so our rollback restores them for older
// snapshots); an entry owned by another in-flight transaction, or one
// whose key-change committed after our snapshot would still be live
// for us, is a write conflict. A live committed entry whose key really
// is current is a genuine duplicate (zero unlinked, no error).
//
// Known limitation: a snapshot older than a force-unlink can no longer
// reach the old row through this index; heap scans still see it.
func (c *Catalog) classifyDuplicates(t *Table, tv *txn.TableVersions, ix *Index, key datum.Row, rid storage.RID, ts *TxnState) (int, error) {
	b := storage.Bound{Key: key, Inclusive: true}
	it := ix.At.Search(b, b)
	var matches []storage.Entry
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if storage.CompareKeys(e.Key, key) == 0 && e.RID != rid {
			matches = append(matches, e)
		}
	}
	it.Close()
	if err := storage.IterErr(it); err != nil {
		return 0, err
	}
	snap := ts.Txn.Snap
	unlinked := 0
	unlink := func(e storage.Entry) error {
		if err := storage.UnwrapAttachment(ix.At).Delete(e.Key, e.RID); err != nil {
			return err
		}
		ts.note(txnWrite{kind: wRelink, table: t.Name, rid: e.RID, index: ix.Name, key: e.Key})
		unlinked++
		return nil
	}
	for _, e := range matches {
		row, ok := t.Rel.Fetch(e.RID)
		if !ok {
			// Orphan: the record is gone but the entry survived.
			if err := unlink(e); err != nil {
				return unlinked, err
			}
			continue
		}
		v := tv.LookupLocked(e.RID)
		keyCurrent := storage.CompareKeys(extractKey(row, ix.KeyCols), key) == 0
		if v == nil {
			if keyCurrent {
				return unlinked, nil // frozen live duplicate
			}
			// Stale entry of a frozen row whose key moved on.
			if err := unlink(e); err != nil {
				return unlinked, err
			}
			continue
		}
		if dt, dc := v.Xmax(); dt != 0 {
			switch {
			case dt == snap.Own || (dc != 0 && dc <= snap.TS):
				// Deleted by us, or dead before our snapshot: the entry
				// only serves older readers.
				if err := unlink(e); err != nil {
					return unlinked, err
				}
			case dc == 0:
				return unlinked, &txn.ConflictError{Table: t.Name, Other: dt}
			default:
				return unlinked, &txn.ConflictError{Table: t.Name}
			}
			continue
		}
		xt, xc := v.Xmin()
		if !keyCurrent {
			// Old-key entry of a key-changing update.
			if xt != 0 && xt != snap.Own && xc == 0 {
				// The key-change is uncommitted; its owner may yet roll
				// back, making this key current again.
				return unlinked, &txn.ConflictError{Table: t.Name, Other: xt}
			}
			if err := unlink(e); err != nil {
				return unlinked, err
			}
			continue
		}
		if xt != 0 && xt != snap.Own && xc == 0 {
			return unlinked, &txn.ConflictError{Table: t.Name, Other: xt}
		}
		return unlinked, nil // live duplicate (ours, committed, or frozen)
	}
	return unlinked, nil
}

// ---------------------------------------------------------------------
// Version garbage collection

// gcItem is one row awaiting the horizon: a committed write whose old
// images, stale index entries or tombstoned record can be cleaned once
// every snapshot has moved past it.
type gcItem struct {
	table string
	rid   storage.RID
}

// EnqueueGC schedules a committed transaction's written rows for
// version cleanup. The engine calls it after Commit publishes.
func (c *Catalog) EnqueueGC(ts *TxnState) {
	l := c.live()
	seen := map[gcItem]bool{}
	var items []gcItem
	for _, w := range ts.writes {
		switch w.kind {
		case wRowInsert, wRowUpdate, wRowDelete:
			it := gcItem{table: w.table, rid: w.rid}
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
	}
	if len(items) == 0 {
		return
	}
	l.gcMu.Lock()
	l.gc = append(l.gc, items...)
	l.gcMu.Unlock()
}

// RunGC drains the pending-cleanup queue against a GC horizon (the
// oldest active snapshot): rows whose death committed at or below the
// horizon are physically reaped — record deleted, current and stale
// index entries unlinked, version entry dropped — and rows whose birth
// committed at or below it are frozen — stale entries unlinked, entry
// dropped, restoring the no-entry fast path. Rows still needed by some
// snapshot are requeued. Cleanup bypasses fault decoration: GC is not
// part of any statement.
func (c *Catalog) RunGC(horizon int64) error {
	l := c.live()
	l.gcMu.Lock()
	items := l.gc
	l.gc = nil
	l.gcMu.Unlock()
	if len(items) == 0 {
		return nil
	}
	var errs []error
	var keep []gcItem
	for _, item := range items {
		t, ok := c.currentTable(item.table)
		if !ok {
			continue // table dropped; versions go with it
		}
		tv := t.MVCC
		tv.WriteLock()
		v := tv.LookupLocked(item.rid)
		if v == nil {
			tv.WriteUnlock()
			continue // already frozen or reaped
		}
		dt, dc := v.Xmax()
		xt, xc := v.Xmin()
		switch {
		case dt != 0 && dc != 0 && dc <= horizon:
			// Dead for every snapshot: reap.
			for _, s := range v.TakeStale() {
				if ix := findIndex(t, s.Index); ix != nil {
					if err := storage.UnwrapAttachment(ix.At).Delete(s.Key, item.rid); err != nil {
						errs = append(errs, fmt.Errorf("catalog: gc %s.%s: %w", t.Name, s.Index, err))
					}
				}
			}
			if row, ok := t.Rel.Fetch(item.rid); ok {
				for _, ix := range t.Indexes {
					if err := storage.UnwrapAttachment(ix.At).Delete(extractKey(row, ix.KeyCols), item.rid); err != nil {
						errs = append(errs, fmt.Errorf("catalog: gc %s.%s: %w", t.Name, ix.Name, err))
					}
				}
				if err := storage.UnwrapRelation(t.Rel).Delete(item.rid); err != nil {
					errs = append(errs, fmt.Errorf("catalog: gc %s: %w", t.Name, err))
				}
			}
			tv.RemoveLocked(item.rid)
			tv.AddCount(-1)
		case dt == 0 && (xt == 0 || (xc != 0 && xc <= horizon)):
			// Visible to every snapshot: freeze.
			for _, s := range v.TakeStale() {
				if ix := findIndex(t, s.Index); ix != nil {
					if err := storage.UnwrapAttachment(ix.At).Delete(s.Key, item.rid); err != nil {
						errs = append(errs, fmt.Errorf("catalog: gc %s.%s: %w", t.Name, s.Index, err))
					}
				}
			}
			tv.RemoveLocked(item.rid)
			tv.AddCount(-1)
		default:
			keep = append(keep, item)
		}
		tv.WriteUnlock()
	}
	if len(keep) > 0 {
		l.gcMu.Lock()
		l.gc = append(l.gc, keep...)
		l.gcMu.Unlock()
	}
	return errors.Join(errs...)
}

// PendingGC reports the cleanup-queue length (tests and SYS).
func (c *Catalog) PendingGC() int {
	l := c.live()
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	return len(l.gc)
}
