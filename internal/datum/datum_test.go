package datum

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
	if v := NewBool(true); !v.Bool() || v.Type() != TBool {
		t.Fatal("bool round trip")
	}
	if v := NewInt(42); v.Int() != 42 || v.Type() != TInt {
		t.Fatal("int round trip")
	}
	if v := NewFloat(3.5); v.Float() != 3.5 || v.Type() != TFloat {
		t.Fatal("float round trip")
	}
	if v := NewString("abc"); v.Str() != "abc" || v.Type() != TString {
		t.Fatal("string round trip")
	}
	if NewInt(7).Float() != 7.0 {
		t.Fatal("Float() must coerce INT")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { NewInt(1).Bool() },
		func() { NewBool(true).Int() },
		func() { NewString("x").Float() },
		func() { NewInt(1).Str() },
		func() { NewInt(1).User() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null,
		"TRUE":  NewBool(true),
		"FALSE": NewBool(false),
		"42":    NewInt(42),
		"-7":    NewInt(-7),
		"3.5":   NewFloat(3.5),
		"'hi'":  NewString("hi"),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewInt(3), NewInt(2), 1, true},
		{NewInt(1), NewFloat(1.5), -1, true},
		{NewFloat(2.0), NewInt(2), 0, true},
		{NewString("a"), NewString("b"), -1, true},
		{NewString("b"), NewString("b"), 0, true},
		{NewBool(false), NewBool(true), -1, true},
		{NewBool(true), NewBool(true), 0, true},
		{Null, NewInt(1), 0, false},
		{NewInt(1), Null, 0, false},
		{Null, Null, 0, false},
		{NewInt(1), NewString("1"), 0, false}, // incomparable types
	}
	for _, tc := range tests {
		cmp, ok := Compare(tc.a, tc.b)
		if ok != tc.ok || (ok && cmp != tc.cmp) {
			t.Errorf("Compare(%v, %v) = (%d, %v), want (%d, %v)", tc.a, tc.b, cmp, ok, tc.cmp, tc.ok)
		}
	}
}

func TestSortCompareTotalOrder(t *testing.T) {
	vals := []Value{Null, NewBool(false), NewBool(true), NewInt(-1), NewInt(0),
		NewFloat(0.5), NewInt(1), NewString(""), NewString("z")}
	// NULL sorts first.
	for _, v := range vals[1:] {
		if SortCompare(Null, v) != -1 || SortCompare(v, Null) != 1 {
			t.Errorf("NULL must sort before %v", v)
		}
	}
	// Antisymmetry over all pairs.
	for _, a := range vals {
		for _, b := range vals {
			if SortCompare(a, b) != -SortCompare(b, a) {
				t.Errorf("SortCompare not antisymmetric for %v, %v", a, b)
			}
		}
	}
}

func TestEqualAndIdentical(t *testing.T) {
	if Equal(Null, Null) {
		t.Error("Equal(NULL, NULL) must be false (UNKNOWN)")
	}
	if !Identical(Null, Null) {
		t.Error("Identical(NULL, NULL) must be true (grouping semantics)")
	}
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("INT 3 must equal FLOAT 3")
	}
	if Identical(Null, NewInt(0)) {
		t.Error("NULL is not identical to 0")
	}
}

func TestHashConsistentWithIdentical(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(5), NewFloat(5)},
		{Null, Null},
		{NewString("x"), NewString("x")},
		{NewBool(true), NewBool(true)},
	}
	for _, p := range pairs {
		if Hash(p[0]) != Hash(p[1]) {
			t.Errorf("Hash(%v) != Hash(%v) but values identical-compatible", p[0], p[1])
		}
	}
	if Hash(NewString("a")) == Hash(NewString("b")) {
		t.Error("suspicious collision 'a' vs 'b'")
	}
}

func TestHashPropertyIntFloat(t *testing.T) {
	f := func(i int32) bool {
		a, b := NewInt(int64(i)), NewFloat(float64(i))
		return Identical(a, b) && Hash(a) == Hash(b) && RowKey(Row{a}) == RowKey(Row{b})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComparePropertyAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Compare(NewInt(a), NewInt(b))
		c2, ok2 := Compare(NewInt(b), NewInt(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUserDefinedType(t *testing.T) {
	id, err := RegisterType(TypeDef{
		Name:    "POINT_T",
		Compare: func(a, b any) int { return int(a.(int) - b.(int)) },
		Format:  func(a any) string { return "pt" },
	})
	if err != nil {
		t.Fatal(err)
	}
	if id < UserTypeBase {
		t.Fatalf("user type id %d below base", id)
	}
	got, ok := TypeByName("POINT_T")
	if !ok || got != id {
		t.Fatal("TypeByName lookup failed")
	}
	a, b := NewUser(id, 1), NewUser(id, 2)
	if c, ok := Compare(a, b); !ok || c >= 0 {
		t.Errorf("user compare = (%d, %v)", c, ok)
	}
	if a.String() != "pt" {
		t.Errorf("user format = %q", a.String())
	}
	if a.User().(int) != 1 {
		t.Error("payload round trip")
	}
	// Re-registration keeps ID.
	id2, err := RegisterType(TypeDef{Name: "POINT_T", Compare: func(a, b any) int { return 0 }})
	if err != nil || id2 != id {
		t.Fatalf("re-register: id %d err %v", id2, err)
	}
}

func TestRegisterTypeErrors(t *testing.T) {
	if _, err := RegisterType(TypeDef{Name: ""}); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := RegisterType(TypeDef{Name: "NOCOMPARE"}); err == nil {
		t.Error("missing Compare must fail")
	}
}

func TestTypeIDByName(t *testing.T) {
	for name, want := range map[string]TypeID{
		"INT": TInt, "INTEGER": TInt, "FLOAT": TFloat, "DOUBLE": TFloat,
		"STRING": TString, "VARCHAR": TString, "BOOL": TBool, "NULL": TNull,
	} {
		got, ok := TypeIDByName(name)
		if !ok || got != want {
			t.Errorf("TypeIDByName(%q) = (%v,%v)", name, got, ok)
		}
	}
	if _, ok := TypeIDByName("NO_SUCH_TYPE"); ok {
		t.Error("unknown type must not resolve")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(NewInt(3), TFloat)
	if err != nil || v.Float() != 3.0 {
		t.Errorf("int→float: %v %v", v, err)
	}
	v, err = Coerce(NewFloat(3.9), TInt)
	if err != nil || v.Int() != 3 {
		t.Errorf("float→int: %v %v", v, err)
	}
	if _, err = Coerce(NewString("x"), TInt); err == nil {
		t.Error("string→int must fail")
	}
	v, err = Coerce(Null, TInt)
	if err != nil || !v.IsNull() {
		t.Error("NULL coerces to anything")
	}
}

func TestCompatible(t *testing.T) {
	if !Compatible(TInt, TFloat) || !Compatible(TNull, TString) || Compatible(TString, TInt) {
		t.Error("Compatible matrix wrong")
	}
}

func TestArithmetic(t *testing.T) {
	type binop func(a, b Value) (Value, error)
	check := func(name string, op binop, a, b, want Value) {
		t.Helper()
		got, err := op(a, b)
		if err != nil {
			t.Fatalf("%s(%v,%v): %v", name, a, b, err)
		}
		if !Identical(got, want) {
			t.Errorf("%s(%v,%v) = %v, want %v", name, a, b, got, want)
		}
	}
	check("Add", Add, NewInt(2), NewInt(3), NewInt(5))
	check("Add", Add, NewInt(2), NewFloat(0.5), NewFloat(2.5))
	check("Add", Add, NewString("a"), NewString("b"), NewString("ab"))
	check("Add", Add, Null, NewInt(1), Null)
	check("Sub", Sub, NewInt(2), NewInt(3), NewInt(-1))
	check("Mul", Mul, NewInt(4), NewFloat(0.25), NewFloat(1))
	check("Div", Div, NewInt(7), NewInt(2), NewInt(3))
	check("Div", Div, NewFloat(7), NewInt(2), NewFloat(3.5))
	check("Mod", Mod, NewInt(7), NewInt(3), NewInt(1))
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("div by zero must error")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("mod by zero must error")
	}
	if _, err := Add(NewBool(true), NewInt(1)); err == nil {
		t.Error("bool+int must error")
	}
	if v, err := Neg(NewInt(4)); err != nil || v.Int() != -4 {
		t.Error("neg int")
	}
	if v, err := Neg(NewFloat(1.5)); err != nil || v.Float() != -1.5 {
		t.Error("neg float")
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("neg string must error")
	}
	if v, err := Neg(Null); err != nil || !v.IsNull() {
		t.Error("neg null is null")
	}
}

func TestTristateKleeneTables(t *testing.T) {
	u, tr, fa := Unknown, True, False
	and := [][3]Tristate{
		{tr, tr, tr}, {tr, fa, fa}, {tr, u, u},
		{fa, fa, fa}, {fa, u, fa}, {u, u, u},
	}
	for _, row := range and {
		if row[0].And(row[1]) != row[2] || row[1].And(row[0]) != row[2] {
			t.Errorf("AND(%v,%v) != %v", row[0], row[1], row[2])
		}
	}
	or := [][3]Tristate{
		{tr, tr, tr}, {tr, fa, tr}, {tr, u, tr},
		{fa, fa, fa}, {fa, u, u}, {u, u, u},
	}
	for _, row := range or {
		if row[0].Or(row[1]) != row[2] || row[1].Or(row[0]) != row[2] {
			t.Errorf("OR(%v,%v) != %v", row[0], row[1], row[2])
		}
	}
	if tr.Not() != fa || fa.Not() != tr || u.Not() != u {
		t.Error("NOT table wrong")
	}
	if !tr.IsTrue() || fa.IsTrue() || u.IsTrue() {
		t.Error("IsTrue collapses wrong")
	}
}

func TestTristateDatumRoundTrip(t *testing.T) {
	for _, ts := range []Tristate{True, False, Unknown} {
		if TristateOf(ts.Datum()) != ts {
			t.Errorf("round trip %v failed", ts)
		}
	}
	if TristateOf(NewInt(1)) != Unknown {
		t.Error("non-bool datum is UNKNOWN")
	}
}

func TestRowHelpers(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone must not alias")
	}
	j := Concat(Row{NewInt(1)}, Row{NewInt(2), NewInt(3)})
	if len(j) != 3 || j[2].Int() != 3 {
		t.Error("Concat wrong")
	}
	if !RowsEqual(Row{Null, NewInt(2)}, Row{Null, NewFloat(2)}) {
		t.Error("RowsEqual must use Identical semantics")
	}
	if RowsEqual(Row{NewInt(1)}, Row{NewInt(1), NewInt(2)}) {
		t.Error("length mismatch")
	}
	if HashRow(Row{NewInt(5), NewString("x")}, []int{0}) != HashRow(Row{NewFloat(5), NewString("y")}, []int{0}) {
		t.Error("HashRow must hash only selected columns, coercing numerics")
	}
}

func TestRowKey(t *testing.T) {
	a := Row{NewInt(1), NewString("x|y"), Null}
	b := Row{NewFloat(1), NewString("x|y"), Null}
	if RowKey(a) != RowKey(b) {
		t.Error("identical rows must share keys")
	}
	// Adversarial: a string containing the separator must not collide
	// with a two-column split.
	c := Row{NewString("a|"), NewString("b")}
	d := Row{NewString("a"), NewString("|b")}
	if RowKey(c) == RowKey(d) {
		t.Error("RowKey must be injective across column boundaries")
	}
	if RowKey(Row{NewBool(true)}) == RowKey(Row{NewBool(false)}) {
		t.Error("bool keys collide")
	}
}

func TestRowKeyPropertyInjective(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		r1 := Row{NewInt(a), NewString(s1)}
		r2 := Row{NewInt(b), NewString(s2)}
		if RowsEqual(r1, r2) {
			return RowKey(r1) == RowKey(r2)
		}
		return RowKey(r1) != RowKey(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatEdgeCases(t *testing.T) {
	inf := NewFloat(math.Inf(1))
	if c, ok := Compare(NewFloat(1e308), inf); !ok || c != -1 {
		t.Error("finite < +inf")
	}
	nan := NewFloat(math.NaN())
	if c, ok := Compare(nan, nan); ok && c == 0 {
		// NaN != NaN under IEEE; both branches of < fail so Compare says 0.
		// Document the behaviour: treated as equal for sorting stability.
		t.Log("NaN compares equal to NaN (documented)")
	}
}

func TestRegisteredTypesAndTypeName(t *testing.T) {
	id, err := RegisterType(TypeDef{
		Name:    "LISTED_T",
		Compare: func(a, b any) int { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	names := RegisteredTypes()
	found := false
	for _, n := range names {
		if n == "LISTED_T" {
			found = true
		}
	}
	if !found {
		t.Fatalf("RegisteredTypes missing LISTED_T: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("not sorted")
		}
	}
	if TypeName(id) != "LISTED_T" {
		t.Errorf("TypeName = %q", TypeName(id))
	}
	if TypeName(TypeID(99999)) == "" {
		t.Error("unknown type renders something")
	}
}

func TestTristateString(t *testing.T) {
	if True.String() != "TRUE" || False.String() != "FALSE" || Unknown.String() != "UNKNOWN" {
		t.Error("tristate strings")
	}
}
