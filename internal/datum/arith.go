package datum

import "fmt"

// Arithmetic over datums follows SQL semantics: any NULL operand yields
// NULL; INT op INT stays INT (except division by zero, which is an
// error); mixed INT/FLOAT promotes to FLOAT; + on STRINGs concatenates.

// Add returns a + b.
func Add(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.typ == TInt && b.typ == TInt:
		return NewInt(a.i + b.i), nil
	case isNumeric(a) && isNumeric(b):
		return NewFloat(a.Float() + b.Float()), nil
	case a.typ == TString && b.typ == TString:
		return NewString(a.s + b.s), nil
	}
	return Null, typeErr("+", a, b)
}

// Sub returns a - b.
func Sub(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.typ == TInt && b.typ == TInt:
		return NewInt(a.i - b.i), nil
	case isNumeric(a) && isNumeric(b):
		return NewFloat(a.Float() - b.Float()), nil
	}
	return Null, typeErr("-", a, b)
}

// Mul returns a * b.
func Mul(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.typ == TInt && b.typ == TInt:
		return NewInt(a.i * b.i), nil
	case isNumeric(a) && isNumeric(b):
		return NewFloat(a.Float() * b.Float()), nil
	}
	return Null, typeErr("*", a, b)
}

// Div returns a / b. Integer division truncates; division by zero is an
// execution error rather than NULL, matching DB2 behaviour.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.typ == TInt && b.typ == TInt:
		if b.i == 0 {
			return Null, fmt.Errorf("datum: division by zero")
		}
		return NewInt(a.i / b.i), nil
	case isNumeric(a) && isNumeric(b):
		bf := b.Float()
		if bf == 0 {
			return Null, fmt.Errorf("datum: division by zero")
		}
		return NewFloat(a.Float() / bf), nil
	}
	return Null, typeErr("/", a, b)
}

// Mod returns a % b for integers.
func Mod(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.typ == TInt && b.typ == TInt {
		if b.i == 0 {
			return Null, fmt.Errorf("datum: division by zero")
		}
		return NewInt(a.i % b.i), nil
	}
	return Null, typeErr("%", a, b)
}

// Neg returns -a.
func Neg(a Value) (Value, error) {
	if a.IsNull() {
		return Null, nil
	}
	switch a.typ {
	case TInt:
		return NewInt(-a.i), nil
	case TFloat:
		return NewFloat(-a.f), nil
	}
	return Null, fmt.Errorf("datum: cannot negate %s", TypeName(a.typ))
}

func isNumeric(v Value) bool { return v.typ == TInt || v.typ == TFloat }

func typeErr(op string, a, b Value) error {
	return fmt.Errorf("datum: invalid operands to %s: %s, %s", op, TypeName(a.typ), TypeName(b.typ))
}

// Tristate is SQL three-valued logic, used when evaluating predicates:
// qualifier edges in QGM evaluate to TRUE, FALSE or UNKNOWN.
type Tristate int8

// Three-valued logic constants.
const (
	False   Tristate = 0
	True    Tristate = 1
	Unknown Tristate = 2
)

// And implements Kleene AND.
func (t Tristate) And(o Tristate) Tristate {
	switch {
	case t == False || o == False:
		return False
	case t == True && o == True:
		return True
	}
	return Unknown
}

// Or implements Kleene OR.
func (t Tristate) Or(o Tristate) Tristate {
	switch {
	case t == True || o == True:
		return True
	case t == False && o == False:
		return False
	}
	return Unknown
}

// Not implements Kleene NOT.
func (t Tristate) Not() Tristate {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// IsTrue collapses UNKNOWN to false, as a WHERE clause does.
func (t Tristate) IsTrue() bool { return t == True }

// Datum converts a Tristate to a BOOL datum (UNKNOWN becomes NULL).
func (t Tristate) Datum() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	}
	return Null
}

// TristateOf converts a datum to a Tristate: NULL is UNKNOWN, BOOL maps
// directly; anything else is an error at a higher level, treated here as
// UNKNOWN.
func TristateOf(v Value) Tristate {
	if v.IsNull() {
		return Unknown
	}
	if v.typ == TBool {
		if v.b {
			return True
		}
		return False
	}
	return Unknown
}

func (t Tristate) String() string {
	switch t {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	}
	return "UNKNOWN"
}
