package datum

import (
	"math"
	"math/rand"
	"testing"
)

// randValue draws from every built-in type, NULL included, with a few
// adversarial numerics (NaN payloads excluded: SQL has no NaN literal).
func randValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Null
	case 1:
		return NewBool(rng.Intn(2) == 0)
	case 2:
		return NewInt(rng.Int63n(1000) - 500)
	case 3:
		return NewFloat(float64(rng.Int63n(1000))/8 - 50)
	case 4:
		return NewString(string(rune('a' + rng.Intn(26))))
	default:
		return NewFloat(math.Inf(1 - 2*rng.Intn(2)))
	}
}

func fillBatch(rng *rand.Rand, types []TypeID, n int) (*ColBatch, []Row) {
	b := NewColBatch(types)
	var rows []Row
	for i := 0; i < n; i++ {
		r := make(Row, len(types))
		for c, t := range types {
			if rng.Intn(5) == 0 {
				r[c] = Null
				continue
			}
			switch t {
			case TBool:
				r[c] = NewBool(rng.Intn(2) == 0)
			case TInt:
				r[c] = NewInt(rng.Int63n(1000) - 500)
			case TFloat:
				r[c] = NewFloat(float64(rng.Int63n(1000))/8 - 50)
			case TString:
				r[c] = NewString(string(rune('a' + rng.Intn(26))))
			}
		}
		b.AppendRow(r)
		rows = append(rows, r)
	}
	return b, rows
}

func TestColBatchValueRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	types := []TypeID{TBool, TInt, TFloat, TString}
	b, rows := fillBatch(rng, types, 200)
	for i, r := range rows {
		for c := range types {
			got := b.Vecs[c].ValueAt(i)
			if !Identical(got, r[c]) {
				t.Fatalf("row %d col %d: got %s want %s", i, c, got, r[c])
			}
		}
	}
}

// TestColBatchHashParity pins the contract the join filter depends on:
// lane-direct hashes must agree byte-for-byte with HashRow over boxed
// values, including the INT k == FLOAT k coercion and NULL handling.
func TestColBatchHashParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	types := []TypeID{TBool, TInt, TFloat, TString}
	b, rows := fillBatch(rng, types, 300)
	cols := []int{1, 3, 2}
	hashes, nulls := b.HashLive(cols, nil, nil)
	if nulls != nil {
		t.Fatalf("nulls should stay nil when not requested")
	}
	hashes, nulls = b.HashLive(cols, hashes[:0], []bool{}[:0])
	for i, r := range rows {
		want := HashRow(r, cols)
		if hashes[i] != want {
			t.Fatalf("row %d: lane hash %x != HashRow %x", i, hashes[i], want)
		}
		wantNull := false
		for _, c := range cols {
			wantNull = wantNull || r[c].IsNull()
		}
		if nulls[i] != wantNull {
			t.Fatalf("row %d: nullAny %v want %v", i, nulls[i], wantNull)
		}
	}
	// INT k and FLOAT k must collide (hash-join coercion contract).
	ib := NewColBatch([]TypeID{TInt})
	ib.AppendRow(Row{NewInt(42)})
	fb := NewColBatch([]TypeID{TFloat})
	fb.AppendRow(Row{NewFloat(42)})
	hi, _ := ib.HashLive([]int{0}, nil, nil)
	hf, _ := fb.HashLive([]int{0}, nil, nil)
	if hi[0] != hf[0] {
		t.Fatalf("INT 42 (%x) and FLOAT 42 (%x) must hash alike", hi[0], hf[0])
	}
}

// TestColBatchKeyParity pins AppendKeyCols against RowKey, the contract
// the columnar hash aggregate's grouping depends on.
func TestColBatchKeyParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	types := []TypeID{TBool, TInt, TFloat, TString}
	b, rows := fillBatch(rng, types, 300)
	cols := []int{2, 0, 3, 1}
	var buf []byte
	for i, r := range rows {
		key := Row{r[2], r[0], r[3], r[1]}
		want := RowKey(key)
		buf = b.AppendKeyCols(buf[:0], cols, i)
		if string(buf) != want {
			t.Fatalf("row %d: lane key %q != RowKey %q", i, buf, want)
		}
	}
}

func TestColBatchSelection(t *testing.T) {
	b := NewColBatch([]TypeID{TInt})
	for i := 0; i < 10; i++ {
		b.AppendRow(Row{NewInt(int64(i))})
	}
	if b.NumLive() != 10 || b.Len() != 10 {
		t.Fatalf("live=%d len=%d", b.NumLive(), b.Len())
	}
	b.Sel = []int{1, 4, 7}
	if b.NumLive() != 3 {
		t.Fatalf("live=%d want 3", b.NumLive())
	}
	rows := b.MaterializeInto(nil)
	if len(rows) != 3 || rows[0][0].Int() != 1 || rows[1][0].Int() != 4 || rows[2][0].Int() != 7 {
		t.Fatalf("materialized %v", rows)
	}
	h, _ := b.HashLive([]int{0}, nil, nil)
	if len(h) != 3 || h[1] != HashRow(Row{NewInt(4)}, []int{0}) {
		t.Fatalf("HashLive must follow Sel order: %v", h)
	}
}

// TestColBatchBoxedPromotion: a value of the wrong type flips the vector
// to boxed representation without losing earlier elements.
func TestColBatchBoxedPromotion(t *testing.T) {
	b := NewColBatch([]TypeID{TInt})
	b.AppendRow(Row{NewInt(7)})
	b.AppendRow(Row{Null})
	b.AppendRow(Row{NewString("x")}) // mismatch → promote
	v := &b.Vecs[0]
	if v.Boxed == nil {
		t.Fatal("expected boxed promotion")
	}
	want := []Value{NewInt(7), Null, NewString("x")}
	for i, w := range want {
		if !Identical(v.ValueAt(i), w) {
			t.Fatalf("elem %d: got %s want %s", i, v.ValueAt(i), w)
		}
	}
	// Hash and key paths must keep working after promotion.
	h, _ := b.HashLive([]int{0}, nil, nil)
	for i, w := range want {
		if h[i] != HashRow(Row{w}, []int{0}) {
			t.Fatalf("boxed hash %d mismatch", i)
		}
		key := b.AppendKeyCols(nil, []int{0}, i)
		if string(key) != RowKey(Row{w}) {
			t.Fatalf("boxed key %d mismatch: %q vs %q", i, key, RowKey(Row{w}))
		}
	}
}

// TestColBatchMaterializeRetainable: rows handed out survive batch reuse.
func TestColBatchMaterializeRetainable(t *testing.T) {
	b := NewColBatch([]TypeID{TInt, TString})
	b.AppendRow(Row{NewInt(1), NewString("one")})
	b.AppendRow(Row{NewInt(2), NewString("two")})
	rows := b.MaterializeInto(nil)
	b.Reset()
	b.AppendRow(Row{NewInt(9), NewString("nine")})
	if rows[0][0].Int() != 1 || rows[0][1].Str() != "one" ||
		rows[1][0].Int() != 2 || rows[1][1].Str() != "two" {
		t.Fatalf("retained rows corrupted by batch reuse: %v", rows)
	}
}

// TestColBatchUserTypeBoxed: user-defined types run boxed from the start
// and agree with the row-oriented hash/key functions.
func TestColBatchUserTypeBoxed(t *testing.T) {
	id, err := RegisterType(TypeDef{
		Name:    "CB_POINT",
		Compare: func(a, b any) int { return a.(int) - b.(int) },
		Format:  func(a any) string { return "p" },
	})
	if err != nil {
		t.Fatal(err)
	}
	b := NewColBatch([]TypeID{id})
	v := NewUser(id, 3)
	b.AppendRow(Row{v})
	if b.Vecs[0].Boxed == nil {
		t.Fatal("user-typed vector must be boxed")
	}
	h, _ := b.HashLive([]int{0}, nil, nil)
	if h[0] != HashRow(Row{v}, []int{0}) {
		t.Fatal("user-type hash parity")
	}
}

func TestNullBitmap(t *testing.T) {
	var nb NullBitmap
	if nb.Get(5) || nb.Any(1000) {
		t.Fatal("empty bitmap must read clear")
	}
	nb.Set(63)
	nb.Set(64)
	nb.Set(200)
	for _, i := range []int{63, 64, 200} {
		if !nb.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if nb.Get(62) || nb.Get(65) || nb.Get(199) || nb.Get(201) {
		t.Fatal("stray bits")
	}
	if nb.Any(63) {
		t.Fatal("Any(63) must ignore bit 63")
	}
	if !nb.Any(64) || !nb.Any(201) {
		t.Fatal("Any missed set bits")
	}
}
