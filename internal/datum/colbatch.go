// Columnar batch representation: typed column vectors plus a selection
// vector, the data layout behind the vectorized execution spine. A
// ColBatch decomposes rows into per-column arrays so execution kernels
// can run tight per-type loops (no per-row interface dispatch, no Value
// boxing) over the hot scan→filter→aggregate spine, while staying
// convertible back to []Row at any operator boundary that is not
// columnar-native.
//
// Hash and key helpers here are byte-identical to the row-oriented
// Hash/HashRow/RowKey above: a hash computed from a vector lane must
// agree with one computed from the boxed value, because join filters
// built from boxed build rows are probed with lane-computed hashes.
package datum

import (
	"math"
	"strconv"
)

// NullBitmap records NULL positions in a column vector, one bit per
// element. The zero value is an empty bitmap (no NULLs).
type NullBitmap []uint64

// Get reports whether element i is NULL. Positions beyond the bitmap's
// allocated words read as not-NULL, so a batch with no NULLs never
// allocates words.
func (nb NullBitmap) Get(i int) bool {
	w := i >> 6
	if w >= len(nb) {
		return false
	}
	return nb[w]>>(uint(i)&63)&1 != 0
}

// Set marks element i as NULL, growing the bitmap as needed.
func (nb *NullBitmap) Set(i int) {
	w := i >> 6
	for w >= len(*nb) {
		*nb = append(*nb, 0)
	}
	(*nb)[w] |= 1 << (uint(i) & 63)
}

// Any reports whether any of the first n elements is NULL. Kernels use
// it to hoist the per-element NULL branch out of hot loops.
func (nb NullBitmap) Any(n int) bool {
	full := n >> 6
	if full > len(nb) {
		full = len(nb)
	}
	for w := 0; w < full; w++ {
		if nb[w] != 0 {
			return true
		}
	}
	if rest := n & 63; rest != 0 && full < len(nb) {
		return nb[full]&(1<<uint(rest)-1) != 0
	}
	return false
}

func (nb NullBitmap) clear() {
	for i := range nb {
		nb[i] = 0
	}
}

// ColVec is one typed column vector. Exactly one data lane is active,
// selected by Typ: Ints for TInt, Floats for TFloat, Strs for TString,
// Bools for TBool. NULL elements occupy a zero slot in the lane with the
// corresponding Nulls bit set.
//
// Boxed is the escape hatch: vectors of user-defined types, and vectors
// that receive a value whose type does not match the lane (possible when
// an expression's declared type is looser than the stored values), fall
// back to a plain []Value representation. Kernels must check Boxed once
// per batch and take a generic path; appends never fail.
type ColVec struct {
	Typ    TypeID
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Nulls  NullBitmap
	Boxed  []Value
}

func (v *ColVec) reset(typ TypeID) {
	v.Typ = typ
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	// Clear string headers and boxed values so a reused batch does not
	// pin payloads from a prior batch past their lifetime.
	clear(v.Strs)
	v.Strs = v.Strs[:0]
	v.Bools = v.Bools[:0]
	v.Nulls.clear()
	clear(v.Boxed)
	v.Boxed = v.Boxed[:0]
	if !laneType(typ) {
		// User-defined and NULL-typed columns are boxed from the start;
		// Boxed non-nil marks the vector as boxed.
		if v.Boxed == nil {
			v.Boxed = make([]Value, 0, 8)
		}
	} else {
		v.Boxed = nil
	}
}

// laneType reports whether typ has a dedicated vector lane.
func laneType(typ TypeID) bool {
	switch typ {
	case TBool, TInt, TFloat, TString:
		return true
	}
	return false
}

// Len returns the number of elements appended to the vector.
func (v *ColVec) Len() int {
	if v.Boxed != nil {
		return len(v.Boxed)
	}
	switch v.Typ {
	case TBool:
		return len(v.Bools)
	case TInt:
		return len(v.Ints)
	case TFloat:
		return len(v.Floats)
	case TString:
		return len(v.Strs)
	}
	return 0
}

// promote converts the vector to boxed representation, materializing
// every element appended so far.
func (v *ColVec) promote() {
	n := v.Len()
	boxed := make([]Value, n)
	for i := 0; i < n; i++ {
		boxed[i] = v.ValueAt(i)
	}
	v.Boxed = boxed
}

// AppendValue appends one value. A value whose type does not match the
// lane promotes the whole vector to boxed representation rather than
// failing, so fill loops have no error path.
func (v *ColVec) AppendValue(x Value) {
	if v.Boxed != nil {
		v.Boxed = append(v.Boxed, x)
		return
	}
	if x.typ == TNull {
		v.Nulls.Set(v.Len())
		switch v.Typ {
		case TBool:
			v.Bools = append(v.Bools, false)
		case TInt:
			v.Ints = append(v.Ints, 0)
		case TFloat:
			v.Floats = append(v.Floats, 0)
		case TString:
			v.Strs = append(v.Strs, "")
		}
		return
	}
	if x.typ != v.Typ {
		v.promote()
		v.Boxed = append(v.Boxed, x)
		return
	}
	switch v.Typ {
	case TBool:
		v.Bools = append(v.Bools, x.b)
	case TInt:
		v.Ints = append(v.Ints, x.i)
	case TFloat:
		v.Floats = append(v.Floats, x.f)
	case TString:
		v.Strs = append(v.Strs, x.s)
	}
}

// ValueAt boxes element i back into a Value. This is the row-adaptation
// path; kernels read lanes directly instead.
func (v *ColVec) ValueAt(i int) Value {
	if v.Boxed != nil {
		return v.Boxed[i]
	}
	if v.Nulls.Get(i) {
		return Null
	}
	switch v.Typ {
	case TBool:
		return Value{typ: TBool, b: v.Bools[i]}
	case TInt:
		return Value{typ: TInt, i: v.Ints[i]}
	case TFloat:
		return Value{typ: TFloat, f: v.Floats[i]}
	case TString:
		return Value{typ: TString, s: v.Strs[i]}
	}
	return Null
}

// ColBatch is a batch of rows in columnar layout: one ColVec per output
// column plus an optional selection vector. Sel == nil means every row
// in [0, Len()) is live; otherwise Sel lists live row indices in
// ascending order. Operators filter by shrinking Sel, never by moving
// column data.
//
// Ownership follows the BatchStream contract: the producer owns the
// batch and invalidates it at the next NextColBatch call. Consumers that
// retain data must materialize rows (MaterializeInto allocates fresh
// backing arrays).
type ColBatch struct {
	Vecs []ColVec
	Sel  []int
	n    int
}

// NewColBatch returns an empty batch with one vector per type.
func NewColBatch(types []TypeID) *ColBatch {
	b := &ColBatch{Vecs: make([]ColVec, len(types))}
	for i, t := range types {
		b.Vecs[i].reset(t)
	}
	return b
}

// Reset empties the batch for refill, keeping lane capacity.
func (b *ColBatch) Reset() {
	for i := range b.Vecs {
		b.Vecs[i].reset(b.Vecs[i].Typ)
	}
	b.Sel = nil
	b.n = 0
}

// Len returns the number of rows appended (live or not).
func (b *ColBatch) Len() int { return b.n }

// NumLive returns the number of selected rows.
func (b *ColBatch) NumLive() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// AppendRow decomposes one row into the column vectors. The row's
// values are copied; r may be reused by the caller.
func (b *ColBatch) AppendRow(r Row) {
	for i := range b.Vecs {
		b.Vecs[i].AppendValue(r[i])
	}
	b.n++
}

// AliasFrom rebuilds b as a projection of src without moving column
// data: output column j becomes a header copy of src.Vecs[srcs[j]] when
// srcs[j] >= 0, and otherwise holds the constant consts[j] replicated
// to src's length in a vector b owns. The selection vector and length
// carry over, and b is invalidated alongside src. b must have been
// created by NewColBatch with one type per output column so constant
// vectors start with the right lane.
func (b *ColBatch) AliasFrom(src *ColBatch, srcs []int, consts []Value) {
	for j, s := range srcs {
		if s >= 0 {
			b.Vecs[j] = src.Vecs[s]
			continue
		}
		// Constant column: extend-only fill. Elements beyond the current
		// length are never read, so a shorter batch after a longer one
		// needs no truncation.
		v := &b.Vecs[j]
		for v.Len() < src.n {
			v.AppendValue(consts[j])
		}
	}
	b.Sel = src.Sel
	b.n = src.n
}

// MaterializeInto appends the live rows to dst as ordinary rows backed
// by one fresh arena; the returned rows remain valid after the batch is
// reused. This is the fallback boundary from columnar to row-batch
// execution.
func (b *ColBatch) MaterializeInto(dst []Row) []Row {
	live := b.NumLive()
	if live == 0 {
		return dst
	}
	w := len(b.Vecs)
	arena := make([]Value, 0, live*w)
	appendOne := func(i int) {
		start := len(arena)
		for c := range b.Vecs {
			arena = append(arena, b.Vecs[c].ValueAt(i))
		}
		dst = append(dst, Row(arena[start:len(arena):len(arena)]))
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			appendOne(i)
		}
	} else {
		for i := 0; i < b.n; i++ {
			appendOne(i)
		}
	}
	return dst
}

// ---------------------------------------------------------------------
// Lane-direct hashing, byte-identical to Hash/HashRow.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	// rowHashSeed matches the seed hard-coded in HashRow.
	rowHashSeed = 1469598103934665603
)

func fnvBytes(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// fnvTagged64 hashes the 9-byte tag+little-endian encoding used by
// writeUint64.
func fnvTagged64(h uint64, tag byte, u uint64) uint64 {
	h = (h ^ uint64(tag)) * fnvPrime
	for i := 0; i < 8; i++ {
		h = (h ^ (u >> (8 * i) & 0xff)) * fnvPrime
	}
	return h
}

func hashNull() uint64 {
	h := uint64(fnvOffset)
	return (h ^ 0) * fnvPrime
}

func hashBool(b bool) uint64 {
	h := uint64(fnvOffset)
	if b {
		return fnvBytes(h, []byte{1, 1})
	}
	return fnvBytes(h, []byte{1, 0})
}

func hashNumBits(bits uint64) uint64 { return fnvTagged64(fnvOffset, 2, bits) }

func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	h = (h ^ 3) * fnvPrime
	return fnvString(h, s)
}

// hashAt hashes element i of the vector, identical to Hash(ValueAt(i)).
func (v *ColVec) hashAt(i int) uint64 {
	if v.Boxed != nil {
		return Hash(v.Boxed[i])
	}
	if v.Nulls.Get(i) {
		return hashNull()
	}
	switch v.Typ {
	case TBool:
		return hashBool(v.Bools[i])
	case TInt:
		return hashNumBits(math.Float64bits(float64(v.Ints[i])))
	case TFloat:
		return hashNumBits(math.Float64bits(v.Floats[i]))
	case TString:
		return hashString(v.Strs[i])
	}
	return hashNull()
}

// HashLive appends the HashRow-equivalent hash of the given columns for
// every live row, in live order, and reports whether any live row has a
// NULL in one of the columns alongside each hash. nullAny may be nil
// when the caller does not care.
func (b *ColBatch) HashLive(cols []int, out []uint64, nullAny []bool) ([]uint64, []bool) {
	hashOne := func(i int) {
		h := uint64(rowHashSeed)
		isNull := false
		for _, c := range cols {
			v := &b.Vecs[c]
			if v.Boxed == nil && v.Nulls.Get(i) || v.Boxed != nil && v.Boxed[i].typ == TNull {
				isNull = true
			}
			h = h*fnvPrime ^ v.hashAt(i)
		}
		out = append(out, h)
		if nullAny != nil {
			nullAny = append(nullAny, isNull)
		}
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			hashOne(i)
		}
	} else {
		for i := 0; i < b.n; i++ {
			hashOne(i)
		}
	}
	return out, nullAny
}

// ---------------------------------------------------------------------
// Lane-direct grouping keys, byte-identical to RowKey.

// AppendKeyCols appends the canonical grouping key of the given columns
// of row i to buf, producing exactly the bytes RowKey would for a row
// holding those values. Used by the columnar hash aggregate so its
// groups agree with the row-oriented groupOp.
func (b *ColBatch) AppendKeyCols(buf []byte, cols []int, i int) []byte {
	for _, c := range cols {
		v := &b.Vecs[c]
		if v.Boxed != nil {
			buf = appendValueKey(buf, v.Boxed[i])
			continue
		}
		if v.Nulls.Get(i) {
			buf = append(buf, 'N', '|')
			continue
		}
		switch v.Typ {
		case TBool:
			if v.Bools[i] {
				buf = append(buf, 'T')
			} else {
				buf = append(buf, 'F')
			}
		case TInt:
			buf = strconv.AppendFloat(buf, float64(v.Ints[i]), 'g', -1, 64)
		case TFloat:
			buf = strconv.AppendFloat(buf, v.Floats[i], 'g', -1, 64)
		case TString:
			buf = append(buf, 's')
			buf = strconv.AppendQuote(buf, v.Strs[i])
		default:
			buf = append(buf, 'N')
		}
		buf = append(buf, '|')
	}
	return buf
}

// appendValueKey appends one value's RowKey encoding; shared by RowKey
// and AppendKeyCols so the two stay in lockstep.
func appendValueKey(buf []byte, v Value) []byte {
	switch v.typ {
	case TNull:
		buf = append(buf, 'N')
	case TBool:
		if v.b {
			buf = append(buf, 'T')
		} else {
			buf = append(buf, 'F')
		}
	case TInt:
		buf = strconv.AppendFloat(buf, float64(v.i), 'g', -1, 64)
	case TFloat:
		buf = strconv.AppendFloat(buf, v.f, 'g', -1, 64)
	case TString:
		buf = append(buf, 's')
		buf = strconv.AppendQuote(buf, v.s)
	default:
		buf = append(buf, 'u')
		buf = append(buf, v.String()...)
	}
	return append(buf, '|')
}
