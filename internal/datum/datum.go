// Package datum implements the typed value system used throughout the
// Starburst reproduction: the built-in SQL types (NULL, BOOL, INT, FLOAT,
// STRING) plus externally defined types that a database customizer (DBC)
// may register at runtime, per section 2 of the paper ("Starburst will
// allow the definition of almost any type. Columns whose type is
// externally defined can appear anywhere a column with built-in type can
// appear, and functions can be defined on them.").
//
// Values are small immutable structs passed by value. Comparison follows
// SQL semantics: NULL is incomparable (Compare reports it via the valid
// flag), numeric types coerce with each other, and user-defined types
// compare through their registered TypeDef.
package datum

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"sync"
)

// TypeID identifies a datum type. IDs below UserTypeBase are built in;
// the rest are allocated by RegisterType.
type TypeID int32

// Built-in type IDs.
const (
	TNull TypeID = iota
	TBool
	TInt
	TFloat
	TString
	// UserTypeBase is the first TypeID handed out to externally defined
	// types registered by a DBC.
	UserTypeBase TypeID = 1000
)

// Value is a single typed datum. The zero Value is NULL.
type Value struct {
	typ TypeID
	b   bool
	i   int64
	f   float64
	s   string
	u   any // payload for user-defined types
}

// Null is the SQL NULL value.
var Null = Value{typ: TNull}

// NewBool returns a BOOL datum.
func NewBool(b bool) Value { return Value{typ: TBool, b: b} }

// NewInt returns an INT datum.
func NewInt(i int64) Value { return Value{typ: TInt, i: i} }

// NewFloat returns a FLOAT datum.
func NewFloat(f float64) Value { return Value{typ: TFloat, f: f} }

// NewString returns a STRING datum.
func NewString(s string) Value { return Value{typ: TString, s: s} }

// NewUser returns a datum of a registered user-defined type. The payload
// is interpreted by the type's TypeDef.
func NewUser(t TypeID, payload any) Value { return Value{typ: t, u: payload} }

// Type reports the datum's type.
func (v Value) Type() TypeID { return v.typ }

// IsNull reports whether the datum is SQL NULL.
func (v Value) IsNull() bool { return v.typ == TNull }

// Bool returns the boolean payload; it panics on other types.
func (v Value) Bool() bool {
	if v.typ != TBool {
		panic(fmt.Sprintf("datum: Bool() on %s", TypeName(v.typ)))
	}
	return v.b
}

// Int returns the integer payload; it panics on other types.
func (v Value) Int() int64 {
	if v.typ != TInt {
		panic(fmt.Sprintf("datum: Int() on %s", TypeName(v.typ)))
	}
	return v.i
}

// Float returns the numeric payload as float64, coercing INT.
func (v Value) Float() float64 {
	switch v.typ {
	case TFloat:
		return v.f
	case TInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("datum: Float() on %s", TypeName(v.typ)))
}

// Str returns the string payload; it panics on other types.
func (v Value) Str() string {
	if v.typ != TString {
		panic(fmt.Sprintf("datum: Str() on %s", TypeName(v.typ)))
	}
	return v.s
}

// User returns the user-defined payload; it panics on built-in types.
func (v Value) User() any {
	if v.typ < UserTypeBase {
		panic(fmt.Sprintf("datum: User() on %s", TypeName(v.typ)))
	}
	return v.u
}

// String renders the datum for display and EXPLAIN output.
func (v Value) String() string {
	switch v.typ {
	case TNull:
		return "NULL"
	case TBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	case TInt:
		return strconv.FormatInt(v.i, 10)
	case TFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TString:
		return "'" + v.s + "'"
	default:
		td := lookupType(v.typ)
		if td != nil && td.Format != nil {
			return td.Format(v.u)
		}
		return fmt.Sprintf("<%s:%v>", TypeName(v.typ), v.u)
	}
}

// TypeDef describes an externally defined type. Compare must impose a
// total order over payloads of the type; Format renders a payload; Hash,
// if nil, falls back to hashing the formatted text.
type TypeDef struct {
	Name    string
	Compare func(a, b any) int
	Format  func(a any) string
	Hash    func(a any) uint64
	// Parse converts a string literal (CAST or typed literal) into a
	// payload. Optional.
	Parse func(s string) (any, error)
}

var typeReg = struct {
	sync.RWMutex
	byID   map[TypeID]*TypeDef
	byName map[string]TypeID
	next   TypeID
}{
	byID:   map[TypeID]*TypeDef{},
	byName: map[string]TypeID{},
	next:   UserTypeBase,
}

// RegisterType registers an externally defined type and returns its
// TypeID. Registering a name twice returns the existing ID with the new
// definition installed, so tests may re-register freely.
func RegisterType(def TypeDef) (TypeID, error) {
	if def.Name == "" {
		return 0, fmt.Errorf("datum: type must have a name")
	}
	if def.Compare == nil {
		return 0, fmt.Errorf("datum: type %q must define Compare", def.Name)
	}
	typeReg.Lock()
	defer typeReg.Unlock()
	if id, ok := typeReg.byName[def.Name]; ok {
		d := def
		typeReg.byID[id] = &d
		return id, nil
	}
	id := typeReg.next
	typeReg.next++
	d := def
	typeReg.byID[id] = &d
	typeReg.byName[def.Name] = id
	return id, nil
}

// TypeByName resolves a registered user type name.
func TypeByName(name string) (TypeID, bool) {
	typeReg.RLock()
	defer typeReg.RUnlock()
	id, ok := typeReg.byName[name]
	return id, ok
}

func lookupType(id TypeID) *TypeDef {
	typeReg.RLock()
	defer typeReg.RUnlock()
	return typeReg.byID[id]
}

// RegisteredTypes returns the names of all user-defined types, sorted.
func RegisteredTypes() []string {
	typeReg.RLock()
	defer typeReg.RUnlock()
	names := make([]string, 0, len(typeReg.byName))
	for n := range typeReg.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TypeName renders a TypeID for error messages and catalog display.
func TypeName(t TypeID) string {
	switch t {
	case TNull:
		return "NULL"
	case TBool:
		return "BOOL"
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	}
	if td := lookupType(t); td != nil {
		return td.Name
	}
	return fmt.Sprintf("TYPE(%d)", t)
}

// TypeIDByName resolves both built-in and user-defined type names.
func TypeIDByName(name string) (TypeID, bool) {
	switch name {
	case "NULL":
		return TNull, true
	case "BOOL", "BOOLEAN":
		return TBool, true
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TInt, true
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL":
		return TFloat, true
	case "STRING", "VARCHAR", "CHAR", "TEXT":
		return TString, true
	}
	return TypeByName(name)
}

// Compatible reports whether a value of type from may be stored in a
// column of type to (identity, or numeric coercion).
func Compatible(from, to TypeID) bool {
	if from == to || from == TNull {
		return true
	}
	if (from == TInt || from == TFloat) && (to == TInt || to == TFloat) {
		return true
	}
	return false
}

// Coerce converts v to type t when Compatible allows it.
func Coerce(v Value, t TypeID) (Value, error) {
	if v.typ == t || v.IsNull() {
		return v, nil
	}
	switch {
	case v.typ == TInt && t == TFloat:
		return NewFloat(float64(v.i)), nil
	case v.typ == TFloat && t == TInt:
		return NewInt(int64(v.f)), nil
	}
	return Null, fmt.Errorf("datum: cannot coerce %s to %s", TypeName(v.typ), TypeName(t))
}

// Compare orders two datums. ok is false when either side is NULL or the
// types are incomparable; SQL predicates treat that as UNKNOWN.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	switch {
	case a.typ == TInt && b.typ == TInt:
		switch {
		case a.i < b.i:
			return -1, true
		case a.i > b.i:
			return 1, true
		}
		return 0, true
	case (a.typ == TInt || a.typ == TFloat) && (b.typ == TInt || b.typ == TFloat):
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	case a.typ == TString && b.typ == TString:
		switch {
		case a.s < b.s:
			return -1, true
		case a.s > b.s:
			return 1, true
		}
		return 0, true
	case a.typ == TBool && b.typ == TBool:
		switch {
		case !a.b && b.b:
			return -1, true
		case a.b && !b.b:
			return 1, true
		}
		return 0, true
	case a.typ == b.typ && a.typ >= UserTypeBase:
		td := lookupType(a.typ)
		if td == nil {
			return 0, false
		}
		return td.Compare(a.u, b.u), true
	}
	return 0, false
}

// SortCompare is a total order used by SORT and index maintenance: NULLs
// sort first, then by type, then by Compare. Unlike Compare it never
// reports incomparability.
func SortCompare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	// Different incomparable types: order by TypeID for determinism.
	switch {
	case a.typ < b.typ:
		return -1
	case a.typ > b.typ:
		return 1
	}
	return 0
}

// Equal reports SQL equality; NULL = anything is not equal (UNKNOWN is
// collapsed to false, as in a WHERE clause).
func Equal(a, b Value) bool {
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Identical reports whether two datums are indistinguishable, treating
// NULL as identical to NULL. Used by DISTINCT, GROUP BY and set
// operations, which group NULLs together.
func Identical(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	c, ok := Compare(a, b)
	if !ok {
		return false
	}
	return c == 0
}

// Hash returns a hash consistent with Identical (grouping semantics):
// NULLs hash alike, and INT k hashes like FLOAT k so that hash joins and
// grouping agree with comparison coercion.
func Hash(v Value) uint64 {
	h := fnv.New64a()
	switch v.typ {
	case TNull:
		h.Write([]byte{0})
	case TBool:
		if v.b {
			h.Write([]byte{1, 1})
		} else {
			h.Write([]byte{1, 0})
		}
	case TInt:
		writeUint64(h, 2, math.Float64bits(float64(v.i)))
	case TFloat:
		writeUint64(h, 2, math.Float64bits(v.f))
	case TString:
		h.Write([]byte{3})
		h.Write([]byte(v.s))
	default:
		td := lookupType(v.typ)
		if td != nil && td.Hash != nil {
			return td.Hash(v.u)
		}
		h.Write([]byte{4})
		h.Write([]byte(v.String()))
	}
	return h.Sum64()
}

func writeUint64(h interface{ Write([]byte) (int, error) }, tag byte, u uint64) {
	var buf [9]byte
	buf[0] = tag
	for i := 0; i < 8; i++ {
		buf[1+i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
}

// Row is a tuple of datums. Rows flow between QES operators as elements
// of streams (section 7).
type Row []Value

// Clone returns a copy that does not alias the receiver's backing array.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// RowBytes estimates the in-memory size of a row, for execution-time
// memory accounting: the fixed Value struct per column plus the
// variable-length string payload.
func RowBytes(r Row) int64 {
	n := int64(24) // slice header
	for _, v := range r {
		n += 40 // Value struct
		n += int64(len(v.s))
	}
	return n
}

// Concat returns the concatenation of two rows (used by join operators
// to build composite tuples).
func Concat(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// HashRow hashes selected columns of a row, consistent with Identical.
func HashRow(r Row, cols []int) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, c := range cols {
		h = h*1099511628211 ^ Hash(r[c])
	}
	return h
}

// RowsEqual reports column-wise Identical over whole rows.
func RowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Identical(a[i], b[i]) {
			return false
		}
	}
	return true
}

// RowKey builds a canonical string key for a row, used for duplicate
// elimination in UNION/INTERSECT/EXCEPT and recursive fixpoints. It is
// consistent with Identical: identical rows map to equal keys.
func RowKey(r Row) string {
	buf := make([]byte, 0, 16*len(r))
	for _, v := range r {
		// INT uses the canonical numeric form shared with FLOAT; the
		// per-value encoding lives in appendValueKey (colbatch.go) so the
		// columnar key builder stays byte-identical.
		buf = appendValueKey(buf, v)
	}
	return string(buf)
}
