package exec_test

import (
	"fmt"
	"strings"
	"testing"

	starburst "repro"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/plan"
)

func mustExec(t testing.TB, db *starburst.DB, q string) *starburst.Result {
	t.Helper()
	res, err := db.Exec(q, nil)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func kindsDB(t testing.TB) *starburst.DB {
	t.Helper()
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE outer_t (k INT, v INT)")
	mustExec(t, db, "CREATE TABLE inner_t (k INT, v INT)")
	for i := 1; i <= 6; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO outer_t VALUES (%d, %d)", i, i*10))
	}
	for i := 1; i <= 3; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO inner_t VALUES (%d, %d)", i, i*10))
		mustExec(t, db, fmt.Sprintf("INSERT INTO inner_t VALUES (%d, %d)", i, i*100))
	}
	return db
}

// TestJoinKindsThroughQuantifiers exercises the join kinds of section
// 7: regular, exists (semi), negated exists (anti), op-ALL, and
// scalar-subquery, all through the SUBQ operator.
func TestJoinKindsThroughQuantifiers(t *testing.T) {
	db := kindsDB(t)
	// exists join: outer rows with a match (1,2,3).
	res := mustExec(t, db, `SELECT k FROM outer_t o WHERE EXISTS
		(SELECT 1 FROM inner_t i WHERE i.k = o.k) ORDER BY 1`)
	if len(res.Rows) != 3 {
		t.Fatalf("semi join = %d rows", len(res.Rows))
	}
	// Duplicates in inner must NOT duplicate outer rows (that is what
	// distinguishes the exists kind from the regular kind).
	for i, want := range []int64{1, 2, 3} {
		if res.Rows[i][0].Int() != want {
			t.Fatalf("semi join rows = %v", res.Rows)
		}
	}
	// anti join.
	res = mustExec(t, db, `SELECT k FROM outer_t o WHERE NOT EXISTS
		(SELECT 1 FROM inner_t i WHERE i.k = o.k) ORDER BY 1`)
	if len(res.Rows) != 3 || res.Rows[0][0].Int() != 4 {
		t.Fatalf("anti join = %v", res.Rows)
	}
	// op-ALL join: v > ALL inner vs (10..300) → v > 300: none; use <.
	res = mustExec(t, db, `SELECT k FROM outer_t WHERE v < ALL
		(SELECT v FROM inner_t) ORDER BY 1`)
	// min inner v = 10 → outer v < 10: none.
	if len(res.Rows) != 0 {
		t.Fatalf("all join = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT k FROM outer_t WHERE v <= ALL
		(SELECT v FROM inner_t) ORDER BY 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("all join (<=) = %v", res.Rows)
	}
	// scalar-subquery join.
	res = mustExec(t, db, `SELECT k, (SELECT MAX(v) FROM inner_t i WHERE i.k = outer_t.k) m
		FROM outer_t ORDER BY 1`)
	if len(res.Rows) != 6 {
		t.Fatalf("scalar join = %d rows", len(res.Rows))
	}
	if res.Rows[0][1].Int() != 100 || !res.Rows[5][1].IsNull() {
		t.Fatalf("scalar join values = %v", res.Rows)
	}
}

// TestJoinKindMethodSeparation (E14): the leftouter KIND runs under
// both the nested-loop and hash-join METHODS with identical results.
func TestJoinKindMethodSeparation(t *testing.T) {
	run := func(tune func(*starburst.DB)) []string {
		db := kindsDB(t)
		tune(db)
		res := mustExec(t, db, `SELECT o.k, i.v FROM outer_t o
			LEFT OUTER JOIN inner_t i ON o.k = i.k AND i.v < 100 ORDER BY 1, 2`)
		var out []string
		for _, r := range res.Rows {
			out = append(out, fmt.Sprintf("%v|%v", r[0], r[1]))
		}
		return out
	}
	viaHash := run(func(db *starburst.DB) {
		db.Optimizer().Generator().RemoveAlternative("JOIN", "NestedLoop")
	})
	viaNL := run(func(db *starburst.DB) {
		db.Optimizer().Generator().RemoveAlternative("JOIN", "HashJoin")
		db.Optimizer().Generator().RemoveAlternative("JOIN", "MergeJoin")
	})
	if strings.Join(viaHash, ",") != strings.Join(viaNL, ",") {
		t.Fatalf("methods disagree:\nhash: %v\nnl:   %v", viaHash, viaNL)
	}
	if len(viaNL) != 6 {
		t.Fatalf("outer join rows = %d", len(viaNL))
	}
}

// TestEvaluateOnDemandCaching (E15): repeated correlation values hit
// the subquery cache, observable through page-read counts.
func TestEvaluateOnDemandCaching(t *testing.T) {
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE o (corr INT)")
	mustExec(t, db, "CREATE TABLE inn (k INT, v INT)")
	// 100 outer rows but only 2 distinct correlation values.
	for i := 0; i < 100; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO o VALUES (%d)", i%2))
	}
	for i := 0; i < 256; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO inn VALUES (%d, %d)", i%2, i))
	}
	db.ResetIOStats()
	mustExec(t, db, `SELECT corr FROM o WHERE EXISTS
		(SELECT 1 FROM inn WHERE inn.k = o.corr AND inn.v >= 0)`)
	repeated, _, _ := db.IOStats()

	// Same shape with 100 distinct correlation values.
	mustExec(t, db, "DELETE FROM o")
	for i := 0; i < 100; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO o VALUES (%d)", i))
	}
	db.ResetIOStats()
	mustExec(t, db, `SELECT corr FROM o WHERE EXISTS
		(SELECT 1 FROM inn WHERE inn.k = o.corr AND inn.v >= 0)`)
	distinct, _, _ := db.IOStats()

	if repeated*10 > distinct {
		t.Fatalf("cache ineffective: repeated-corr reads %d vs distinct-corr reads %d",
			repeated, distinct)
	}
}

// TestQESOperatorExtension (E24): a DBC registers a new plan operator
// (a STAR alternative emitting it) and its executor, without modifying
// the QES: "adding new operators to the QES has been trivial".
func TestQESOperatorExtension(t *testing.T) {
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	for i := 1; i <= 5; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	ran := false
	expanding := false // guard against re-entering our own alternative
	// The DBC operator: FIRSTN — emits only the first 2 rows of a scan.
	db.AddSTARAlternative("ACCESS", &starburst.STARAlternative{
		Name: "FirstN",
		Condition: func(ctx *starburst.OptCtx, a starburst.OptArgs) bool {
			return !expanding && a.Quant.Input.Kind == "BASE" && a.Quant.Input.Table.Name == "T"
		},
		Build: func(ctx *starburst.OptCtx, a starburst.OptArgs) ([]*starburst.PlanNode, error) {
			expanding = true
			inner, err := ctx.Evaluate("ACCESS", starburst.OptArgs{Quant: a.Quant, Preds: a.Preds})
			expanding = false
			if err != nil {
				return nil, err
			}
			var best *starburst.PlanNode
			for _, p := range inner {
				if p.Op != "FIRSTN" && (best == nil || p.Props.Cost < best.Props.Cost) {
					best = p
				}
			}
			n := &starburst.PlanNode{
				Op: "FIRSTN", Inputs: []*starburst.PlanNode{best},
				Cols: best.Cols, Types: best.Types,
				Props: best.Props,
			}
			n.Props.Cost = 0.0001 // force selection, to observe execution
			n.Props.Rows = 2
			return []*starburst.PlanNode{n}, nil
		},
	})
	db.RegisterOperator("FIRSTN", func(b *exec.Builder, n *plan.Node, inputs []exec.Stream, corr map[plan.ColRef]int) (exec.Stream, error) {
		ran = true
		return &firstN{in: inputs[0], n: 2}, nil
	})
	res := mustExec(t, db, "SELECT a FROM t")
	if !ran {
		t.Fatal("DBC operator was never built")
	}
	if len(res.Rows) != 2 {
		t.Fatalf("FIRSTN emitted %d rows", len(res.Rows))
	}
}

type firstN struct {
	in   exec.Stream
	n    int
	left int
}

func (f *firstN) Open(ctx *exec.Ctx) error {
	f.left = f.n
	return f.in.Open(ctx)
}

func (f *firstN) Next(ctx *exec.Ctx) (datum.Row, bool, error) {
	if f.left <= 0 {
		return nil, false, nil
	}
	f.left--
	return f.in.Next(ctx)
}

func (f *firstN) Close(ctx *exec.Ctx) error { return f.in.Close(ctx) }

// TestMergeJoinDuplicates forces the merge join and checks duplicate
// key groups on both sides produce the full cross product per key.
func TestMergeJoinDuplicates(t *testing.T) {
	db := starburst.Open()
	db.Optimizer().Generator().RemoveAlternative("JOIN", "NestedLoop")
	db.Optimizer().Generator().RemoveAlternative("JOIN", "HashJoin")
	mustExec(t, db, "CREATE TABLE l (k INT, t STRING)")
	mustExec(t, db, "CREATE TABLE r (k INT, t STRING)")
	mustExec(t, db, "INSERT INTO l VALUES (1,'a'), (1,'b'), (2,'c'), (3,'d'), (NULL,'n')")
	mustExec(t, db, "INSERT INTO r VALUES (1,'x'), (1,'y'), (3,'z'), (NULL,'m')")
	res := mustExec(t, db, "SELECT l.t, r.t FROM l, r WHERE l.k = r.k ORDER BY 1, 2")
	// 1: a,b × x,y = 4 rows; 3: d×z = 1; NULL never matches.
	if len(res.Rows) != 5 {
		t.Fatalf("merge join rows = %d, want 5: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].Str() != "a" || res.Rows[0][1].Str() != "x" {
		t.Errorf("first row = %v", res.Rows[0])
	}
}

// TestHashJoinNullKeys: NULL keys never match in equijoins.
func TestHashJoinNullKeys(t *testing.T) {
	db := starburst.Open()
	db.Optimizer().Generator().RemoveAlternative("JOIN", "NestedLoop")
	db.Optimizer().Generator().RemoveAlternative("JOIN", "MergeJoin")
	mustExec(t, db, "CREATE TABLE l (k INT)")
	mustExec(t, db, "CREATE TABLE r (k INT)")
	mustExec(t, db, "INSERT INTO l VALUES (1), (NULL)")
	mustExec(t, db, "INSERT INTO r VALUES (1), (NULL)")
	res := mustExec(t, db, "SELECT l.k FROM l, r WHERE l.k = r.k")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("null keys must not match: %v", res.Rows)
	}
}

// TestNonLinearRecursion: two recursive references force total-set
// (naive) evaluation; results must still be exact.
func TestNonLinearRecursion(t *testing.T) {
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE e (s INT, d INT)")
	for _, p := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}} {
		mustExec(t, db, fmt.Sprintf("INSERT INTO e VALUES (%d, %d)", p[0], p[1]))
	}
	// Non-linear transitive closure: reach ∪ reach∘reach.
	res := mustExec(t, db, `WITH RECURSIVE reach (s, d) AS (
		SELECT s, d FROM e
		UNION SELECT a.s, b.d FROM reach a, reach b WHERE a.d = b.s)
		SELECT COUNT(*) FROM reach`)
	if res.Rows[0][0].Int() != 10 { // pairs (i,j) with i<j over 1..5
		t.Fatalf("non-linear closure = %v", res.Rows[0][0])
	}
}

// TestRecursionWithinSubquery: a recursive table expression used inside
// a subquery predicate.
func TestRecursionWithinSubquery(t *testing.T) {
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE e (s INT, d INT)")
	mustExec(t, db, "CREATE TABLE nodes (id INT)")
	for _, p := range [][2]int{{1, 2}, {2, 3}} {
		mustExec(t, db, fmt.Sprintf("INSERT INTO e VALUES (%d, %d)", p[0], p[1]))
	}
	for i := 1; i <= 5; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO nodes VALUES (%d)", i))
	}
	res := mustExec(t, db, `WITH RECURSIVE reach (s, d) AS (
		SELECT s, d FROM e
		UNION SELECT r.s, e2.d FROM reach r, e e2 WHERE r.d = e2.s)
		SELECT id FROM nodes WHERE id IN (SELECT d FROM reach WHERE s = 1) ORDER BY 1`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 2 || res.Rows[1][0].Int() != 3 {
		t.Fatalf("recursive subquery = %v", res.Rows)
	}
}

// TestStreamReusability: prepared statements re-Open the same operator
// tree; state must fully reset between runs.
func TestStreamReusability(t *testing.T) {
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	stmt, err := db.Prepare("SELECT SUM(a) FROM t WHERE a >= :lo")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := stmt.Run(map[string]starburst.Value{"lo": starburst.NewInt(2)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].Int() != 5 {
			t.Fatalf("run %d = %v", i, res.Rows[0][0])
		}
	}
}

// TestDeepCorrelation: a two-level correlated subquery (innermost
// references the outermost quantifier).
func TestDeepCorrelation(t *testing.T) {
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (y INT)")
	mustExec(t, db, "CREATE TABLE c (z INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2), (3)")
	mustExec(t, db, "INSERT INTO b VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO c VALUES (1), (3)")
	// a.x qualifies when some b.y = a.x such that some c.z = a.x too.
	res := mustExec(t, db, `SELECT x FROM a WHERE EXISTS
		(SELECT 1 FROM b WHERE b.y = a.x AND EXISTS
			(SELECT 1 FROM c WHERE c.z = a.x)) ORDER BY 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("deep correlation = %v", res.Rows)
	}
}

// TestIntersectExceptAll: bag semantics respect multiplicities.
func TestIntersectExceptAll(t *testing.T) {
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE l (a INT)")
	mustExec(t, db, "CREATE TABLE r (a INT)")
	mustExec(t, db, "INSERT INTO l VALUES (1), (1), (1), (2)")
	mustExec(t, db, "INSERT INTO r VALUES (1), (1), (3)")
	res := mustExec(t, db, "SELECT a FROM l INTERSECT ALL SELECT a FROM r")
	if len(res.Rows) != 2 {
		t.Fatalf("intersect all = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT a FROM l EXCEPT ALL SELECT a FROM r")
	if len(res.Rows) != 2 { // 1×1 left over + 2
		t.Fatalf("except all = %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT a FROM l EXCEPT SELECT a FROM r")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("except distinct = %v", res.Rows)
	}
}

// TestCorrelatedIndexLookup: a correlated subquery whose inner access
// is an index lookup keyed by the correlation value (index
// nested-loop execution of subqueries).
func TestCorrelatedIndexLookup(t *testing.T) {
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE o (k INT)")
	mustExec(t, db, "CREATE TABLE inn (k INT, v INT)")
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO o VALUES (%d)", i))
		mustExec(t, db, fmt.Sprintf("INSERT INTO inn VALUES (%d, %d)", i, i*2))
	}
	mustExec(t, db, "CREATE UNIQUE INDEX inn_k ON inn (k)")
	mustExec(t, db, "ANALYZE inn")
	mustExec(t, db, "ANALYZE o")
	stmt, err := db.Prepare(`SELECT k FROM o WHERE EXISTS
		(SELECT 1 FROM inn WHERE inn.k = o.k AND inn.v > 50)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.Plan(), "ISCAN") {
		t.Logf("plan (no correlated iscan — acceptable but suboptimal):\n%s", stmt.Plan())
	}
	res, err := stmt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 24 { // v=2k>50 → k>25 → 26..49
		t.Fatalf("correlated lookup rows = %d", len(res.Rows))
	}
}

// TestCorrelatedJoinInsideSubquery: a correlated subquery containing a
// NON-equi join (forcing the nested-loop method) whose materialized
// inner side carries the correlated predicate. The inner side must be
// re-materialized for every correlation value — a cached copy from the
// first outer row would give wrong answers.
func TestCorrelatedJoinInsideSubquery(t *testing.T) {
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (y INT)")
	mustExec(t, db, "CREATE TABLE c (z INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2), (3)")
	mustExec(t, db, "INSERT INTO b VALUES (0)")
	mustExec(t, db, "INSERT INTO c VALUES (1), (3)")
	// EXISTS(b ⋈< c restricted to c.z = a.x): true iff c contains a.x
	// (since b.y=0 < any c.z here). Expect {1, 3}.
	res := mustExec(t, db, `SELECT x FROM a WHERE EXISTS
		(SELECT 1 FROM b, c WHERE b.y < c.z AND c.z = a.x) ORDER BY 1`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 3 {
		t.Fatalf("correlated non-equi join subquery = %v", res.Rows)
	}
}

// TestRecursionWithNonEquiJoin: a recursive branch joining the
// recursive reference with a non-equi condition (nested-loop method);
// the materialized side must see each iteration's delta, not a stale
// copy of the first.
func TestRecursionWithNonEquiJoin(t *testing.T) {
	db := starburst.Open()
	mustExec(t, db, "CREATE TABLE nums (n INT)")
	for i := 1; i <= 5; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO nums VALUES (%d)", i))
	}
	// climb(n): 1 plus every number strictly one greater than a member.
	res := mustExec(t, db, `WITH RECURSIVE climb (n) AS (
		SELECT n FROM nums WHERE n = 1
		UNION SELECT x.n FROM nums x, climb WHERE x.n > climb.n AND x.n < climb.n + 2)
		SELECT COUNT(*) FROM climb`)
	if res.Rows[0][0].Int() != 5 {
		t.Fatalf("recursive non-equi join = %v, want 5", res.Rows[0][0])
	}
}
