package exec

// White-box regression tests for the batched path's buffer hygiene:
// every reused row-pointer container (scan buffers, nextBatchFrom's
// refill buffer, filter/limit compaction, project output) must nil the
// slots beyond the batch it hands out. Before these fixes, in-place
// compaction and short refills left references to rows of earlier,
// already-invalidated batches in the trailing capacity — pinning their
// arenas and exposing stale rows to any consumer that oversliced the
// container. Batch size 2 keeps every partial-batch edge in reach.

import (
	"fmt"
	"testing"

	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/storage"
)

// rowSrc is a tuple-only Stream (no NextBatch), forcing consumers
// through nextBatchFrom's refill buffer.
type rowSrc struct {
	rows []datum.Row
	pos  int
}

func (s *rowSrc) Open(*Ctx) error { s.pos = 0; return nil }

func (s *rowSrc) Next(*Ctx) (datum.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *rowSrc) Close(*Ctx) error { return nil }

func intRows(vals ...int64) []datum.Row {
	rows := make([]datum.Row, len(vals))
	for i, v := range vals {
		rows[i] = datum.Row{datum.NewInt(v)}
	}
	return rows
}

// vGE builds the bound predicate "col0 >= n".
func vGE(n int64) expr.Expr {
	return &expr.Cmp{
		Op: expr.OpGe,
		L:  &expr.Col{Slot: 0, Name: "v", Typ: datum.TInt},
		R:  &expr.Const{Val: datum.NewInt(n)},
	}
}

// requireTailClear fails unless every slot of the container beyond the
// batch's length is nil.
func requireTailClear(t *testing.T, where string, batch []datum.Row) {
	t.Helper()
	for i, r := range batch[len(batch):cap(batch)] {
		if r != nil {
			t.Fatalf("%s: stale row %v in container slot %d (batch len %d, cap %d)",
				where, r, len(batch)+i, len(batch), cap(batch))
		}
	}
}

func batchCtx() *Ctx {
	ctx := NewCtx(nil, nil)
	ctx.SetBatchSize(2)
	return ctx
}

// TestFilterBatchClearsDroppedRows is the core regression: filterOp
// compacts survivors in place, and the slots its dropped rows occupied
// must not keep referencing them.
func TestFilterBatchClearsDroppedRows(t *testing.T) {
	ctx := batchCtx()
	f := &filterOp{
		input: &rowSrc{rows: intRows(10, 20, 30, 1, 2)},
		preds: []expr.Expr{vGE(10)},
	}
	if err := f.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Batch 1: both rows pass.
	b, more, err := f.NextBatch(ctx)
	if err != nil || !more || len(b) != 2 {
		t.Fatalf("batch 1 = %v, %v, %v", b, more, err)
	}
	requireTailClear(t, "filter batch 1", b)
	// Batch 2: [30, 1] compacts to [30]; slot 1 held the dropped row.
	b, more, err = f.NextBatch(ctx)
	if err != nil || !more || len(b) != 1 {
		t.Fatalf("batch 2 = %v, %v, %v", b, more, err)
	}
	if b[0][0].Int() != 30 {
		t.Fatalf("batch 2 rows = %v", b)
	}
	requireTailClear(t, "filter batch 2", b)
	// Final pull: [2] compacts to empty, stream ends; the container must
	// hold no references at all.
	b, more, err = f.NextBatch(ctx)
	if err != nil || more || len(b) != 0 {
		t.Fatalf("batch 3 = %v, %v, %v", b, more, err)
	}
	requireTailClear(t, "filter exhausted", b)
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestNextBatchFromClearsShortRefill covers the tuple-only refill path:
// a final partial batch must not expose the previous batch's rows in
// its trailing slots.
func TestNextBatchFromClearsShortRefill(t *testing.T) {
	ctx := batchCtx()
	src := &rowSrc{rows: intRows(1, 2, 3)}
	var buf []datum.Row
	b, more, err := nextBatchFrom(ctx, src, &buf)
	if err != nil || !more || len(b) != 2 {
		t.Fatalf("batch 1 = %v, %v, %v", b, more, err)
	}
	requireTailClear(t, "refill batch 1", b)
	// Final partial batch: one row; slot 1 held row 2 of batch 1.
	b, more, err = nextBatchFrom(ctx, src, &buf)
	if err != nil || more || len(b) != 1 {
		t.Fatalf("batch 2 = %v, %v, %v", b, more, err)
	}
	requireTailClear(t, "refill partial", b)
}

// TestScanBatchClearsStaleRows drives scanOp's BatchScanner fast path:
// in-place predicate compaction and chunk turnover must both leave the
// reused page buffer clean past the returned batch.
func TestScanBatchClearsStaleRows(t *testing.T) {
	rel, err := storage.NewHeapManager(2).Create("T", 1, &storage.IOStats{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{10, 20, 30, 1, 2, 3} {
		if _, err := rel.Insert(datum.Row{datum.NewInt(v)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := batchCtx()
	s := &scanOp{rel: rel, preds: []expr.Expr{vGE(10)}}
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		b, more, err := s.NextBatch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen += len(b)
		requireTailClear(t, fmt.Sprintf("scan after %d rows", seen), b)
		if !more {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("scan produced %d rows, want 3", seen)
	}
	// Exhaustion clears the whole buffer, not just the last tail.
	for i, r := range s.buf {
		if r != nil {
			t.Fatalf("scan buffer slot %d still holds %v after exhaustion", i, r)
		}
	}
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLimitBatchClearsOverQuotaRows: the trim drops rows that will
// never be delivered, and the producer is never pulled again, so the
// references would otherwise be pinned for the statement's lifetime.
func TestLimitBatchClearsOverQuotaRows(t *testing.T) {
	ctx := batchCtx()
	l := &limitOp{
		input: &rowSrc{rows: intRows(1, 2, 3, 4)},
		nExpr: &expr.Const{Val: datum.NewInt(3)},
	}
	if err := l.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b, more, err := l.NextBatch(ctx)
	if err != nil || !more || len(b) != 2 {
		t.Fatalf("batch 1 = %v, %v, %v", b, more, err)
	}
	// Quota has one row left; the trim cuts [3, 4] down to [3].
	b, more, err = l.NextBatch(ctx)
	if err != nil || more || len(b) != 1 {
		t.Fatalf("batch 2 = %v, %v, %v", b, more, err)
	}
	if b[0][0].Int() != 3 {
		t.Fatalf("batch 2 rows = %v", b)
	}
	requireTailClear(t, "limit trim", b)
	if err := l.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestProjectBatchClearsShortOutput: a shorter batch reuses outBuf and
// must not leave the previous batch's projected rows (and the arena
// they pin) beyond the new length.
func TestProjectBatchClearsShortOutput(t *testing.T) {
	ctx := batchCtx()
	p := &projectOp{
		input: &rowSrc{rows: intRows(1, 2, 3)},
		exprs: []expr.Expr{&expr.Col{Slot: 0, Name: "v", Typ: datum.TInt}},
	}
	if err := p.Open(ctx); err != nil {
		t.Fatal(err)
	}
	b, more, err := p.NextBatch(ctx)
	if err != nil || !more || len(b) != 2 {
		t.Fatalf("batch 1 = %v, %v, %v", b, more, err)
	}
	requireTailClear(t, "project batch 1", b)
	b, more, err = p.NextBatch(ctx)
	if err != nil || more || len(b) != 1 {
		t.Fatalf("batch 2 = %v, %v, %v", b, more, err)
	}
	requireTailClear(t, "project partial", b)
	if err := p.Close(ctx); err != nil {
		t.Fatal(err)
	}
}
