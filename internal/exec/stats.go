package exec

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/datum"
	"repro/internal/obs"
	"repro/internal/plan"
)

// This file is the QES half of the observability layer: a stats
// decorator wrapped around every operator an instrumented Builder
// builds. An uninstrumented Builder (the default) never allocates a
// decorator, so the tracing-off execution path is byte-for-byte the
// pre-observability one.

// Instrumentation collects per-operator runtime statistics for one
// execution of one plan. It is not safe for concurrent executions; an
// instrumented Builder is built per statement.
type Instrumentation struct {
	stats map[*plan.Node]*obs.OpStats
	kinds map[*plan.Node]string
}

// NewInstrumentation returns an empty collector.
func NewInstrumentation() *Instrumentation {
	return &Instrumentation{
		stats: map[*plan.Node]*obs.OpStats{},
		kinds: map[*plan.Node]string{},
	}
}

// Instrumented returns a Builder that wraps every operator it builds
// with the stats decorator recording into instr. The receiver is not
// modified, so the DB's shared Builder stays uninstrumented and
// concurrent statements are unaffected.
func (b *Builder) Instrumented(instr *Instrumentation) *Builder {
	nb := *b
	nb.instr = instr
	return &nb
}

// OpStats reports the collected statistics for a plan node (nil when
// the node was never built).
func (in *Instrumentation) OpStats(n *plan.Node) *obs.OpStats {
	if in == nil {
		return nil
	}
	return in.stats[n]
}

// Kind reports the QES operator kind built for a plan node.
func (in *Instrumentation) Kind(n *plan.Node) string {
	if in == nil {
		return ""
	}
	return in.kinds[n]
}

// wrap decorates a freshly built stream. Plan subtrees can be shared
// (the optimizer memoizes per-box plans), so a node already seen reuses
// its OpStats and the counters merge.
func (in *Instrumentation) wrap(n *plan.Node, s Stream) Stream {
	st := in.stats[n]
	if st == nil {
		st = &obs.OpStats{}
		in.stats[n] = st
		in.kinds[n] = operatorKind(s)
	}
	return &statsOp{inner: s, st: st}
}

// statsOp is the decorator: it times Open/Next/Close, counts produced
// rows through the shared Ctx.countRow accounting path, samples the
// statement memory high-water mark, and harvests subquery-cache
// statistics at Close.
type statsOp struct {
	inner Stream
	st    *obs.OpStats
}

// cacheStats is implemented by operators that evaluate subplans on
// demand (subqOp); the decorator copies the statement-cumulative
// totals at Close.
type cacheStats interface {
	CacheStats() (hits, misses int64)
}

func (s *statsOp) Open(ctx *Ctx) error {
	start := time.Now()
	err := s.inner.Open(ctx)
	// All counter updates are atomic: exchange workers run clones of a
	// plan subtree concurrently, and clones of one plan node share one
	// OpStats record (counters merge — the node's totals stay
	// cumulative and monotone across workers).
	atomic.AddInt64(&s.st.Opens, 1)
	atomic.AddInt64(&s.st.OpenNanos, time.Since(start).Nanoseconds())
	s.sampleMem(ctx)
	return err
}

func (s *statsOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	start := time.Now()
	row, ok, err := s.inner.Next(ctx)
	atomic.AddInt64(&s.st.Nexts, 1)
	atomic.AddInt64(&s.st.NextNanos, time.Since(start).Nanoseconds())
	if err != nil || !ok {
		return nil, false, err
	}
	// countRow is the same accounting path the work budget uses, so
	// the budget and the observed row count can never drift apart. A
	// tuple rejected by the budget is not counted as produced.
	if err := ctx.countRow(s.st); err != nil {
		return nil, false, err
	}
	s.sampleMem(ctx)
	return row, true, nil
}

func (s *statsOp) Close(ctx *Ctx) error {
	start := time.Now()
	err := s.inner.Close(ctx)
	atomic.AddInt64(&s.st.Closes, 1)
	atomic.AddInt64(&s.st.CloseNanos, time.Since(start).Nanoseconds())
	if cs, ok := s.inner.(cacheStats); ok {
		// Totals are statement-cumulative; storing (not adding) keeps a
		// double Close from double counting.
		hits, misses := cs.CacheStats()
		atomic.StoreInt64(&s.st.CacheHits, hits)
		atomic.StoreInt64(&s.st.CacheMisses, misses)
	}
	if wr, ok := s.inner.(workerRowsReporter); ok {
		// Statement-cumulative, stored not added (same reason as above);
		// safe unsynchronized because the exchange's Close joins its
		// workers before returning.
		s.st.WorkerRows = wr.WorkerRowCounts()
	}
	return err
}

func (s *statsOp) sampleMem(ctx *Ctx) {
	m := ctx.MemUsed()
	for {
		cur := atomic.LoadInt64(&s.st.MemHighWater)
		if m <= cur || atomic.CompareAndSwapInt64(&s.st.MemHighWater, cur, m) {
			return
		}
	}
}

// statsOf reports the stats record of a stream when it is the
// decorator; Run uses it to avoid double-charging the work budget.
func statsOf(s Stream) *obs.OpStats {
	if so, ok := s.(*statsOp); ok {
		return so.st
	}
	return nil
}

// operatorKind names the QES operator type behind a stream, for stats
// labels and panic attribution. Every type in this package implementing
// Stream must appear as a case: the starburst-lint obs-bypass check
// enforces it, so no operator — present or future — can silently escape
// the stats decorator's registration.
func operatorKind(s Stream) string {
	switch s.(type) {
	case *scanOp:
		return "scanOp"
	case *indexScanOp:
		return "indexScanOp"
	case *passThrough:
		return "passThrough"
	case *chooseOp:
		return "chooseOp"
	case *filterOp:
		return "filterOp"
	case *projectOp:
		return "projectOp"
	case *limitOp:
		return "limitOp"
	case *tempOp:
		return "tempOp"
	case *sortOp:
		return "sortOp"
	case *nlJoinOp:
		return "nlJoinOp"
	case *hashJoinOp:
		return "hashJoinOp"
	case *mergeJoinOp:
		return "mergeJoinOp"
	case *subqOp:
		return "subqOp"
	case *groupOp:
		return "groupOp"
	case *distinctOp:
		return "distinctOp"
	case *setOp:
		return "setOp"
	case *valuesOp:
		return "valuesOp"
	case *tableFnOp:
		return "tableFnOp"
	case *recUnionOp:
		return "recUnionOp"
	case *recRefOp:
		return "recRefOp"
	case *insertOp:
		return "insertOp"
	case *updateDeleteOp:
		return "updateDeleteOp"
	case *gatherOp:
		return "gatherOp"
	case *morselScanOp:
		return "morselScanOp"
	case *repartReaderOp:
		return "repartReaderOp"
	case *colScanOp:
		return "colScanOp"
	case *colFilterOp:
		return "colFilterOp"
	case *colProjectOp:
		return "colProjectOp"
	case *colGroupOp:
		return "colGroupOp"
	case *statsOp:
		return "statsOp"
	}
	return fmt.Sprintf("%T", s)
}

// MemHighWater returns the largest per-operator memory high-water mark
// observed during the instrumented execution; 0 when uninstrumented.
func (in *Instrumentation) MemHighWater() int64 {
	if in == nil {
		return 0
	}
	var hw int64
	for _, st := range in.stats {
		if st.MemHighWater > hw {
			hw = st.MemHighWater
		}
	}
	return hw
}

// SelfNanos is an operator's exclusive wall time: its cumulative time
// minus its plan children's, clamped at zero (timer granularity can
// make the difference slightly negative).
func (in *Instrumentation) SelfNanos(n *plan.Node) int64 {
	st := in.OpStats(n)
	if st == nil {
		return 0
	}
	self := st.TotalNanos()
	for _, c := range n.Inputs {
		self -= in.OpStats(c).TotalNanos()
	}
	if self < 0 {
		self = 0
	}
	return self
}

// Annotate renders one node's actual-execution suffix for the ANALYZE
// plan tree, pairing with the estimates the base renderer prints.
func (in *Instrumentation) Annotate(n *plan.Node) string {
	st := in.OpStats(n)
	if st == nil {
		return "  (not executed)"
	}
	out := fmt.Sprintf("  (actual rows=%d opens=%d time=%v self=%v mem=%dB",
		st.Rows, st.Opens,
		time.Duration(st.TotalNanos()).Round(time.Microsecond),
		time.Duration(in.SelfNanos(n)).Round(time.Microsecond),
		st.MemHighWater)
	if st.CacheHits+st.CacheMisses > 0 {
		out += fmt.Sprintf(" cache=%d/%d", st.CacheHits, st.CacheHits+st.CacheMisses)
	}
	if wr := st.WorkerRows; len(wr) > 0 {
		out += " workers=["
		for i, r := range wr {
			if i > 0 {
				out += " "
			}
			out += fmt.Sprintf("%d", r)
		}
		out += "]"
	}
	return out + ")"
}

// OpSummary is one entry of a slow-query log's operator breakdown.
type OpSummary struct {
	// Op is the plan operator (plus table for scans).
	Op string
	// SelfNanos is exclusive wall time.
	SelfNanos int64
	// Rows is the produced-row count.
	Rows int64
}

// TopBySelfTime reports the k operators of a plan that spent the most
// exclusive time, descending.
func (in *Instrumentation) TopBySelfTime(root *plan.Node, k int) []OpSummary {
	var all []OpSummary
	plan.Walk(root, func(n *plan.Node) bool {
		st := in.OpStats(n)
		if st == nil {
			return true
		}
		op := n.Op
		if n.Table != nil {
			op += "(" + n.Table.Name + ")"
		}
		all = append(all, OpSummary{Op: op, SelfNanos: in.SelfNanos(n), Rows: st.Rows})
		return true
	})
	sort.SliceStable(all, func(i, j int) bool { return all[i].SelfNanos > all[j].SelfNanos })
	if len(all) > k {
		all = all[:k]
	}
	return all
}
