// Package exec implements Starburst's Query Evaluation System (QES,
// section 7 of the paper): it interprets a query evaluation plan — an
// operator tree in the extended relational algebra — against the
// database. Operators exchange streams of tuples implemented by lazy
// evaluation, keeping intermediate results as small as one tuple; the
// algebraic interface makes adding operators easy and keeps operators
// independent of one another.
package exec

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/txn"
)

// Stream is the tuple-at-a-time iterator interface between operators.
// Open must be callable again after Close (operators are re-runnable;
// the recursive-union fixpoint and nested-loop inners rely on it).
type Stream interface {
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (datum.Row, bool, error)
	Close(ctx *Ctx) error
}

// Ctx is the per-execution context.
type Ctx struct {
	Cat *catalog.Catalog
	// Params are host-language variable bindings.
	Params map[string]datum.Value
	// corr is the current correlation vector (outer-query column
	// values) for the subplan being evaluated.
	corr datum.Row
	// rec holds the working tables of active recursive unions, keyed
	// by QGM box id.
	rec map[int]*recWorkTable
	// Affected counts rows touched by DML.
	Affected int64
	// SubqHits/SubqMisses count subquery-cache lookups statement-wide
	// (evaluate-on-demand re-use, section 7).
	SubqHits, SubqMisses int64
	// Rollbacks counts write-log rollbacks taken by failing DML.
	Rollbacks int64
	// Snap is the MVCC visibility snapshot every scan resolves row
	// versions against. The zero snapshot sees only frozen rows; the
	// engine always arms a real one.
	Snap txn.Snapshot
	// Txn is the transaction write state DML mutates through; nil for
	// read-only execution.
	Txn *catalog.TxnState

	// goCtx carries cancellation; nil means uncancellable (see Arm).
	goCtx context.Context
	// limits are the armed per-statement budgets.
	limits Limits
	// started/deadline implement the statement timeout.
	started, deadline time.Time
	// sh holds the statement-wide atomic counters (work ticks, memory,
	// early-termination flag) shared with every worker child.
	sh *shared
	// dop is the runtime degree of parallelism: exchange operators run
	// their workers concurrently only when dop > 1. A plan compiled with
	// exchanges still executes correctly (serially) at dop <= 1, which
	// is how fault injection forces parallel plans back to one thread.
	dop int
	// batchSize is the row-batch granularity of the batched fast path;
	// 0 means the default, <=1 disables batched draining.
	batchSize int
	// par, when set, receives parallel-execution telemetry (worker
	// lifecycle, batch sizes, backpressure) for the obs layer.
	par *ParallelObs
	// waitProf/waits receive wait-event durations from the statement's
	// blocking sites (exchange backpressure, cancellation stalls): the
	// DB-wide profile and the per-statement attribution set. Both are
	// nil-safe and shared by every worker child.
	waitProf *obs.WaitProfile
	waits    *obs.WaitSet
}

// NewCtx returns an execution context.
func NewCtx(cat *catalog.Catalog, params map[string]datum.Value) *Ctx {
	return &Ctx{Cat: cat, Params: params, rec: map[int]*recWorkTable{}, sh: &shared{}}
}

// SetDOP sets the runtime degree of parallelism (see Ctx.dop).
func (c *Ctx) SetDOP(n int) { c.dop = n }

// DOP reports the runtime degree of parallelism.
func (c *Ctx) DOP() int { return c.dop }

// SetBatchSize overrides the batched path's rows-per-batch; n <= 1
// disables batched draining (every operator falls back to Next).
func (c *Ctx) SetBatchSize(n int) { c.batchSize = n }

// defaultBatchSize is the rows-per-batch of the batched fast path:
// large enough to amortize per-batch overhead, small enough to keep a
// batch within a few cache lines of row headers.
const defaultBatchSize = 64

// batchLen is the effective batch size; 0 when batching is disabled.
func (c *Ctx) batchLen() int {
	switch {
	case c.batchSize == 0:
		return defaultBatchSize
	case c.batchSize <= 1:
		return 0
	}
	return c.batchSize
}

// SetParallelObs installs the parallel-execution telemetry hooks.
func (c *Ctx) SetParallelObs(p *ParallelObs) { c.par = p }

// SetWaits installs the wait-event accumulators: the DB-wide profile
// and the per-statement set. Either may be nil.
func (c *Ctx) SetWaits(p *obs.WaitProfile, s *obs.WaitSet) {
	c.waitProf = p
	c.waits = s
}

// recordWait charges one wait that began at start to both accumulators.
func (c *Ctx) recordWait(e obs.WaitEvent, start time.Time) {
	if c.waitProf == nil && c.waits == nil {
		return
	}
	d := time.Since(start).Nanoseconds()
	c.waitProf.Record(e, d)
	c.waits.Record(e, d)
}

// child derives a worker context for one exchange worker: it shares
// the catalog, parameters, cancellation, limits and — critically — the
// shared atomic counter record, so all workers draw down one
// statement-wide budget. Recursive work tables are per-worker (the
// optimizer never parallelizes recursive subtrees, so the fresh map is
// only defensive); correlation is inherited read-only.
func (c *Ctx) child() *Ctx {
	nc := *c
	nc.rec = map[int]*recWorkTable{}
	return &nc
}

// exprCtx adapts the execution context for expression evaluation; the
// Ctx itself rides along so Subplan closures (deferred subqueries) can
// recover it.
func (c *Ctx) exprCtx() *expr.Context {
	return &expr.Context{Params: c.Params, Corr: c.corr, Exec: c}
}

type recWorkTable struct {
	delta []datum.Row
	total []datum.Row
	// useTotal switches RECREF reads from the delta (semi-naive, linear
	// recursion) to the whole accumulated table (non-linear recursion).
	useTotal bool
}

// ---------------------------------------------------------------------
// Expression binding

// bindEnv maps QGM columns to slots: local (the operator's input row)
// and correlated (the enclosing correlation vector).
type bindEnv struct {
	local map[plan.ColRef]int
	corr  map[plan.ColRef]int
}

func envFromCols(cols []plan.ColRef, corr map[plan.ColRef]int) *bindEnv {
	e := &bindEnv{local: map[plan.ColRef]int{}, corr: corr}
	for i, c := range cols {
		e.local[c] = i
	}
	return e
}

// bind resolves every column reference in an expression to a local or
// correlation slot.
func (env *bindEnv) bind(e expr.Expr) (expr.Expr, error) {
	if e == nil {
		return nil, nil
	}
	var bindErr error
	out := expr.Transform(e, func(x expr.Expr) expr.Expr {
		c, ok := x.(*expr.Col)
		if !ok {
			return x
		}
		ref := plan.ColRef{QID: c.QID, Ord: c.Ord}
		if s, ok := env.local[ref]; ok {
			nc := *c
			nc.Slot, nc.Corr = s, false
			return &nc
		}
		if env.corr != nil {
			if s, ok := env.corr[ref]; ok {
				nc := *c
				nc.Slot, nc.Corr = s, true
				return &nc
			}
		}
		if bindErr == nil {
			bindErr = fmt.Errorf("exec: cannot bind column %s (q%d.#%d)", c.Name, c.QID, c.Ord)
		}
		return x
	})
	return out, bindErr
}

func (env *bindEnv) bindAll(es []expr.Expr) ([]expr.Expr, error) {
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		b, err := env.bind(e)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// evalPreds evaluates a conjunct list as a WHERE clause (UNKNOWN is
// false).
func evalPreds(ctx *Ctx, preds []expr.Expr, row datum.Row) (bool, error) {
	ec := ctx.exprCtx()
	for _, p := range preds {
		v, err := p.Eval(ec, row)
		if err != nil {
			return false, err
		}
		if !datum.TristateOf(v).IsTrue() {
			return false, nil
		}
	}
	return true, nil
}

// ---------------------------------------------------------------------
// Builder (plan refinement): transforms the optimizer's plan tree into
// an executable operator tree with all expressions slot-bound.

// Builder builds operator trees; DBCs may register executors for new
// LOLEPOPs ("adding new operators to the QES has been trivial").
type Builder struct {
	cat *catalog.Catalog
	// custom maps DBC operator names to their build functions.
	custom map[string]BuildFunc
	// instr, when set, wraps every built operator with the stats
	// decorator (see Instrumented); nil on the DB's shared builder.
	instr *Instrumentation
	// morsel, when set, rebinds one SCAN plan node (by identity) to a
	// morsel-claiming scan over a shared page dispenser. buildGather
	// sets it on per-worker builder copies; the DB's shared builder
	// never carries one.
	morsel *morselBinding
	// repart, when set, rebinds REPART plan nodes to a reader over one
	// partition of a shared repartition pool (also per-worker state).
	repart *repartBinding
	// vec enables columnar operator dispatch (see Vectorized); kernels
	// are compiled per node and row fallback is per operator.
	vec bool
}

// BuildFunc builds a Stream for a custom plan operator; inputs are the
// already-built child streams.
type BuildFunc func(b *Builder, n *plan.Node, inputs []Stream, corr map[plan.ColRef]int) (Stream, error)

// NewBuilder returns a builder over the catalog.
func NewBuilder(cat *catalog.Catalog) *Builder {
	return &Builder{cat: cat, custom: map[string]BuildFunc{}}
}

// RegisterOperator installs a custom LOLEPOP executor.
func (b *Builder) RegisterOperator(op string, f BuildFunc) {
	b.custom[op] = f
}

// Build refines a plan node into an executable stream. corr maps the
// correlation columns available to this subtree. When the builder is
// instrumented, every node's stream — children included, since they are
// built through this method too — is wrapped with the stats decorator.
func (b *Builder) Build(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	s, err := b.buildNode(n, corr)
	if err != nil || b.instr == nil {
		return s, err
	}
	return b.instr.wrap(n, s), nil
}

func (b *Builder) buildNode(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	switch n.Op {
	case plan.OpScan:
		if b.morsel != nil && b.morsel.node == n {
			return b.buildMorselScan(n, corr)
		}
		if b.vectorize() {
			if s, ok, err := b.tryColScan(n, corr); err != nil {
				return nil, err
			} else if ok {
				return s, nil
			}
		}
		return b.buildScan(n, corr)
	case plan.OpGather:
		return b.buildGather(n, corr)
	case plan.OpRepart:
		return b.buildRepart(n, corr)
	case plan.OpIndex:
		return b.buildIndexScan(n, corr)
	case plan.OpAccess:
		return b.buildAccess(n, corr)
	case plan.OpChoose:
		return b.buildChoose(n, corr)
	case plan.OpFilter:
		return b.buildFilter(n, corr)
	case plan.OpProject:
		return b.buildProject(n, corr)
	case plan.OpSort:
		return b.buildSort(n, corr)
	case plan.OpNLJoin:
		return b.buildNLJoin(n, corr)
	case plan.OpHSJoin:
		return b.buildHashJoin(n, corr)
	case plan.OpSMJoin:
		return b.buildMergeJoin(n, corr)
	case plan.OpSubq:
		return b.buildSubq(n, corr)
	case plan.OpGroup:
		return b.buildGroup(n, corr)
	case plan.OpDistinct:
		return b.buildDistinct(n, corr)
	case plan.OpUnion, plan.OpInter, plan.OpExcept:
		return b.buildSetOp(n, corr)
	case plan.OpValues:
		return b.buildValues(n, corr)
	case plan.OpTableFn:
		return b.buildTableFn(n, corr)
	case plan.OpRecUnion:
		return b.buildRecUnion(n, corr)
	case plan.OpRecRef:
		return &recRefOp{boxID: n.RecBoxID}, nil
	case plan.OpLimit:
		return b.buildLimit(n, corr)
	case plan.OpTemp:
		in, err := b.Build(n.Inputs[0], corr)
		if err != nil {
			return nil, err
		}
		return &tempOp{input: in}, nil
	case plan.OpInsert:
		return b.buildInsert(n, corr)
	case plan.OpUpdate, plan.OpDelete:
		return b.buildUpdateDelete(n, corr)
	}
	if f, ok := b.custom[n.Op]; ok {
		var ins []Stream
		for _, c := range n.Inputs {
			cs, err := b.Build(c, corr)
			if err != nil {
				return nil, err
			}
			ins = append(ins, cs)
		}
		return f(b, n, ins, corr)
	}
	return nil, fmt.Errorf("exec: unknown plan operator %s", n.Op)
}

// Run drains a stream into a materialized result. On any failure —
// including a failing Close — it returns a nil result, never partial
// rows beside a non-nil error; Close always runs, and its error joins
// the Next error rather than being discarded.
func Run(ctx *Ctx, s Stream) (rows []datum.Row, err error) {
	if err := s.Open(ctx); err != nil {
		// Close even after a failed Open: a multi-input operator may have
		// opened some children before the failure, and every Close is
		// safe on a never-opened stream.
		return nil, errors.Join(err, s.Close(ctx))
	}
	defer func() {
		cerr := s.Close(ctx)
		if err = errors.Join(err, cerr); err != nil {
			rows = nil
		}
	}()
	// When the drained stream is the stats decorator, its Next already
	// charged the work budget through Ctx.countRow (the single row-
	// accounting path); charging again here would double-bill the tuple.
	counted := statsOf(s) != nil
	var out []datum.Row
	// Batched fast path: a batch-capable top operator hands over whole
	// row slices, skipping one Next call (and its per-row bookkeeping)
	// per tuple. The stats decorator is never batch-capable, so the
	// instrumented path keeps exact per-Next timing.
	if bs, ok := s.(BatchStream); ok && ctx.batchLen() > 0 {
		for {
			batch, ok, err := bs.NextBatch(ctx)
			if err != nil {
				return nil, err
			}
			for _, row := range batch {
				if !counted {
					if err := ctx.countRow(nil); err != nil {
						return nil, err
					}
				}
				out = append(out, row)
			}
			if !ok {
				return out, nil
			}
		}
	}
	for {
		row, ok, err := s.Next(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if !counted {
			if err := ctx.countRow(nil); err != nil {
				return nil, err
			}
		}
		out = append(out, row)
	}
}
