// Fused filter and aggregate kernels for the columnar path. A kernel
// is compiled once at plan-refinement time from a bound predicate or
// aggregate call and then runs tight per-type loops over ColVec lanes,
// writing the batch's selection vector — no per-row interface dispatch
// and no Value boxing on the hot path.
//
// Semantics are pinned to the row-oriented evaluators: a kernel must
// accept and reject exactly the rows expr.EvalCmp would, NULL and
// type-coercion rules included, and a columnar aggregate must produce
// exactly the value the corresponding expr.AggState would. Vectors
// that fell back to boxed representation take a generic per-element
// path through those very evaluators, so the fallback is equivalent by
// construction.
package exec

import (
	"cmp"
	"fmt"

	"repro/internal/datum"
	"repro/internal/expr"
)

// colPred is one compiled predicate. filter appends the surviving live
// row indices to out (which the caller sizes to hold every live row)
// and never reorders them.
type colPred interface {
	filter(b *datum.ColBatch, out []int) ([]int, error)
}

// applyColPreds runs the predicate pipeline over b, shrinking its
// selection vector in place. scratch is the caller-owned backing array
// used the first time a selection vector materializes; batches handed
// downstream therefore alias it until the caller's next fill.
func applyColPreds(preds []colPred, b *datum.ColBatch, scratch *[]int) error {
	for _, p := range preds {
		var out []int
		var err error
		if b.Sel != nil {
			// In-place compaction: writes trail reads, indices ascend.
			out, err = p.filter(b, b.Sel[:0])
		} else {
			if cap(*scratch) < b.Len() {
				*scratch = make([]int, 0, b.Len())
			}
			out, err = p.filter(b, (*scratch)[:0])
		}
		if err != nil {
			return err
		}
		b.Sel = out
		if len(out) == 0 {
			return nil
		}
	}
	return nil
}

// compileColPreds compiles bound predicates into kernels. It reports
// ok=false when any predicate has a shape the columnar path cannot
// evaluate (arithmetic, function calls, subplans, correlated columns);
// the caller then falls back to row execution for the whole operator so
// predicate order and short-circuit semantics are preserved.
func compileColPreds(preds []expr.Expr) ([]colPred, bool) {
	if len(preds) == 0 {
		return nil, true
	}
	out := make([]colPred, 0, len(preds))
	for _, p := range preds {
		switch e := p.(type) {
		case *expr.Cmp:
			lc, lok := asBoundCol(e.L)
			rc, rok := asBoundCol(e.R)
			lk, lconst := e.L.(*expr.Const)
			rk, rconst := e.R.(*expr.Const)
			switch {
			case lok && rok:
				out = append(out, &cmpColColPred{op: e.Op, l: lc.Slot, r: rc.Slot})
			case lok && rconst:
				if rk.Val.IsNull() {
					// cmp with NULL is UNKNOWN for every row; evalPreds
					// rejects UNKNOWN, so the pipeline ends here.
					out = append(out, alwaysFalsePred{})
					continue
				}
				out = append(out, &cmpColConstPred{op: e.Op, slot: lc.Slot, c: rk.Val})
			case lconst && rok:
				if lk.Val.IsNull() {
					out = append(out, alwaysFalsePred{})
					continue
				}
				out = append(out, &cmpColConstPred{op: e.Op, slot: rc.Slot, c: lk.Val, constLeft: true})
			default:
				return nil, false
			}
		case *expr.IsNull:
			c, ok := asBoundCol(e.E)
			if !ok {
				return nil, false
			}
			out = append(out, &isNullPred{slot: c.Slot, negated: e.Negated})
		default:
			return nil, false
		}
	}
	return out, true
}

// asBoundCol matches a slot-bound, non-correlated column reference.
func asBoundCol(e expr.Expr) (*expr.Col, bool) {
	c, ok := e.(*expr.Col)
	if !ok || c.Corr || c.Slot < 0 {
		return nil, false
	}
	return c, true
}

// flipOp mirrors a comparison across the = sign: a op b == b flip(op) a.
func flipOp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	}
	return op
}

// cmpMask encodes which three-way comparison results (0 lt, 1 eq, 2 gt)
// satisfy op, so kernels test `mask>>res&1` instead of re-switching on
// the operator per element.
func cmpMask(op expr.CmpOp) uint {
	switch op {
	case expr.OpEq:
		return 0b010
	case expr.OpNe:
		return 0b101
	case expr.OpLt:
		return 0b001
	case expr.OpLe:
		return 0b011
	case expr.OpGt:
		return 0b100
	}
	return 0b110 // OpGe
}

func cmp3[T cmp.Ordered](a, b T) uint {
	switch {
	case a < b:
		return 0
	case a > b:
		return 2
	}
	return 1
}

// alwaysFalsePred rejects every row (comparison against a NULL literal).
type alwaysFalsePred struct{}

func (alwaysFalsePred) filter(b *datum.ColBatch, out []int) ([]int, error) {
	return out, nil
}

// isNullPred implements IS [NOT] NULL over a column.
type isNullPred struct {
	slot    int
	negated bool
}

func (p *isNullPred) filter(b *datum.ColBatch, out []int) ([]int, error) {
	v := &b.Vecs[p.slot]
	n, sel := b.Len(), b.Sel
	if v.Boxed != nil {
		if sel == nil {
			for i := 0; i < n; i++ {
				if v.Boxed[i].IsNull() != p.negated {
					out = append(out, i)
				}
			}
		} else {
			for _, i := range sel {
				if v.Boxed[i].IsNull() != p.negated {
					out = append(out, i)
				}
			}
		}
		return out, nil
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if v.Nulls.Get(i) != p.negated {
				out = append(out, i)
			}
		}
	} else {
		for _, i := range sel {
			if v.Nulls.Get(i) != p.negated {
				out = append(out, i)
			}
		}
	}
	return out, nil
}

// cmpColConstPred compares one column against a non-NULL constant.
// constLeft records the original orientation (const op col) so the
// generic fallback reproduces EvalCmp's exact error text.
type cmpColConstPred struct {
	op        expr.CmpOp
	slot      int
	c         datum.Value
	constLeft bool
}

func (p *cmpColConstPred) filter(b *datum.ColBatch, out []int) ([]int, error) {
	v := &b.Vecs[p.slot]
	n, sel := b.Len(), b.Sel
	op := p.op
	if p.constLeft {
		op = flipOp(op)
	}
	if v.Boxed == nil {
		ct := p.c.Type()
		switch {
		case v.Typ == datum.TInt && ct == datum.TInt:
			return filterCmpKernel(op, v.Ints, p.c.Int(), v.Nulls, n, sel, out), nil
		case v.Typ == datum.TInt && ct == datum.TFloat:
			return filterIntFloatKernel(op, v.Ints, p.c.Float(), v.Nulls, n, sel, out), nil
		case v.Typ == datum.TFloat && (ct == datum.TInt || ct == datum.TFloat):
			return filterCmpKernel(op, v.Floats, p.c.Float(), v.Nulls, n, sel, out), nil
		case v.Typ == datum.TString && ct == datum.TString:
			return filterCmpKernel(op, v.Strs, p.c.Str(), v.Nulls, n, sel, out), nil
		case v.Typ == datum.TBool && ct == datum.TBool:
			return filterBoolKernel(op, v.Bools, p.c.Bool(), v.Nulls, n, sel, out), nil
		}
	}
	// Boxed vector or a lane/constant type pairing with no dedicated
	// kernel: evaluate per element through EvalCmp in the original
	// operand order so errors match the row path byte for byte.
	return filterGenericCmp(b, v, out, func(x datum.Value) (datum.Value, error) {
		if p.constLeft {
			return expr.EvalCmp(p.op, p.c, x)
		}
		return expr.EvalCmp(p.op, x, p.c)
	})
}

// cmpColColPred compares two columns of the same batch.
type cmpColColPred struct {
	op   expr.CmpOp
	l, r int
}

func (p *cmpColColPred) filter(b *datum.ColBatch, out []int) ([]int, error) {
	vl, vr := &b.Vecs[p.l], &b.Vecs[p.r]
	n, sel := b.Len(), b.Sel
	if vl.Boxed == nil && vr.Boxed == nil {
		switch {
		case vl.Typ == datum.TInt && vr.Typ == datum.TInt:
			return filterColsKernel(p.op, vl.Ints, vr.Ints, vl.Nulls, vr.Nulls, n, sel, out), nil
		case vl.Typ == datum.TFloat && vr.Typ == datum.TFloat:
			return filterColsKernel(p.op, vl.Floats, vr.Floats, vl.Nulls, vr.Nulls, n, sel, out), nil
		case vl.Typ == datum.TInt && vr.Typ == datum.TFloat:
			return filterIntFloatColsKernel(p.op, vl.Ints, vr.Floats, false, vl.Nulls, vr.Nulls, n, sel, out), nil
		case vl.Typ == datum.TFloat && vr.Typ == datum.TInt:
			return filterIntFloatColsKernel(p.op, vr.Ints, vl.Floats, true, vr.Nulls, vl.Nulls, n, sel, out), nil
		case vl.Typ == datum.TString && vr.Typ == datum.TString:
			return filterColsKernel(p.op, vl.Strs, vr.Strs, vl.Nulls, vr.Nulls, n, sel, out), nil
		case vl.Typ == datum.TBool && vr.Typ == datum.TBool:
			return filterBoolsKernel(p.op, vl.Bools, vr.Bools, vl.Nulls, vr.Nulls, n, sel, out), nil
		}
	}
	return filterGenericCols(b, vl, vr, p.op, out)
}

// filterGenericCols is the boxed col-vs-col fallback.
func filterGenericCols(b *datum.ColBatch, vl, vr *datum.ColVec, op expr.CmpOp, out []int) ([]int, error) {
	n, sel := b.Len(), b.Sel
	keep := func(i int) (bool, error) {
		res, err := expr.EvalCmp(op, vl.ValueAt(i), vr.ValueAt(i))
		if err != nil {
			return false, err
		}
		return datum.TristateOf(res).IsTrue(), nil
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			ok, err := keep(i)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, i)
			}
		}
		return out, nil
	}
	for _, i := range sel {
		ok, err := keep(i)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

// filterGenericCmp evaluates eval per live element of v and keeps rows
// where the result is TRUE; the boxed col-vs-constant fallback.
func filterGenericCmp(b *datum.ColBatch, v *datum.ColVec, out []int, eval func(datum.Value) (datum.Value, error)) ([]int, error) {
	n, sel := b.Len(), b.Sel
	keep := func(i int) (bool, error) {
		res, err := eval(v.ValueAt(i))
		if err != nil {
			return false, err
		}
		return datum.TristateOf(res).IsTrue(), nil
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			ok, err := keep(i)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, i)
			}
		}
		return out, nil
	}
	for _, i := range sel {
		ok, err := keep(i)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

// filterCmpKernel is the common col-vs-constant loop, instantiated per
// lane type. NULL elements never satisfy a comparison.
func filterCmpKernel[T cmp.Ordered](op expr.CmpOp, vals []T, c T, nulls datum.NullBitmap, n int, sel, out []int) []int {
	mask := cmpMask(op)
	if sel == nil {
		for i := 0; i < n; i++ {
			if !nulls.Get(i) && mask>>cmp3(vals[i], c)&1 == 1 {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if !nulls.Get(i) && mask>>cmp3(vals[i], c)&1 == 1 {
			out = append(out, i)
		}
	}
	return out
}

// filterIntFloatKernel compares an INT lane against a FLOAT constant
// using Compare's mixed-numeric rule (both sides as float64).
func filterIntFloatKernel(op expr.CmpOp, vals []int64, c float64, nulls datum.NullBitmap, n int, sel, out []int) []int {
	mask := cmpMask(op)
	if sel == nil {
		for i := 0; i < n; i++ {
			if !nulls.Get(i) && mask>>cmp3(float64(vals[i]), c)&1 == 1 {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if !nulls.Get(i) && mask>>cmp3(float64(vals[i]), c)&1 == 1 {
			out = append(out, i)
		}
	}
	return out
}

func filterBoolKernel(op expr.CmpOp, vals []bool, c bool, nulls datum.NullBitmap, n int, sel, out []int) []int {
	mask := cmpMask(op)
	cu := boolRank(c)
	if sel == nil {
		for i := 0; i < n; i++ {
			if !nulls.Get(i) && mask>>cmp3(boolRank(vals[i]), cu)&1 == 1 {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if !nulls.Get(i) && mask>>cmp3(boolRank(vals[i]), cu)&1 == 1 {
			out = append(out, i)
		}
	}
	return out
}

// boolRank orders booleans the way Compare does: false < true.
func boolRank(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// filterColsKernel is the col-vs-col loop for same-typed lanes.
func filterColsKernel[T cmp.Ordered](op expr.CmpOp, la, lb []T, na, nb datum.NullBitmap, n int, sel, out []int) []int {
	mask := cmpMask(op)
	if sel == nil {
		for i := 0; i < n; i++ {
			if !na.Get(i) && !nb.Get(i) && mask>>cmp3(la[i], lb[i])&1 == 1 {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if !na.Get(i) && !nb.Get(i) && mask>>cmp3(la[i], lb[i])&1 == 1 {
			out = append(out, i)
		}
	}
	return out
}

// filterIntFloatColsKernel compares an INT lane with a FLOAT lane; swap
// marks the FLOAT lane as the left operand of the original comparison.
func filterIntFloatColsKernel(op expr.CmpOp, ints []int64, fls []float64, swap bool, ni, nf datum.NullBitmap, n int, sel, out []int) []int {
	mask := cmpMask(op)
	if swap {
		op = flipOp(op)
		mask = cmpMask(op)
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			if !ni.Get(i) && !nf.Get(i) && mask>>cmp3(float64(ints[i]), fls[i])&1 == 1 {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if !ni.Get(i) && !nf.Get(i) && mask>>cmp3(float64(ints[i]), fls[i])&1 == 1 {
			out = append(out, i)
		}
	}
	return out
}

func filterBoolsKernel(op expr.CmpOp, la, lb []bool, na, nb datum.NullBitmap, n int, sel, out []int) []int {
	mask := cmpMask(op)
	if sel == nil {
		for i := 0; i < n; i++ {
			if !na.Get(i) && !nb.Get(i) && mask>>cmp3(boolRank(la[i]), boolRank(lb[i]))&1 == 1 {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if !na.Get(i) && !nb.Get(i) && mask>>cmp3(boolRank(la[i]), boolRank(lb[i]))&1 == 1 {
			out = append(out, i)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Columnar aggregate accumulators.

// colAgg kinds, mirroring the built-in aggregate registrations.
const (
	aggCount = iota
	aggSum
	aggAvg
	aggMin
	aggMax
)

// colAgg is one aggregate's per-group state across all groups, stored
// as parallel arrays indexed by group id. The typed update kernels
// reproduce countState/sumState/avgState exactly (NULL skipping and
// SUM's int→float promotion included); MIN/MAX and boxed vectors go
// through the per-element addValue path, which is a transliteration of
// the corresponding AggState.Add methods.
type colAgg struct {
	kind int
	slot int
	seen []bool
	isF  []bool
	ints []int64
	fls  []float64
	cnt  []int64
	best []datum.Value
}

// newColAgg compiles one aggregate call; ok=false means the call has no
// columnar implementation (custom aggregates, DISTINCT).
func newColAgg(name string, slot int) (*colAgg, bool) {
	kind := 0
	switch name {
	case "COUNT":
		kind = aggCount
	case "SUM":
		kind = aggSum
	case "AVG":
		kind = aggAvg
	case "MIN":
		kind = aggMin
	case "MAX":
		kind = aggMax
	default:
		return nil, false
	}
	return &colAgg{kind: kind, slot: slot}, true
}

func (a *colAgg) reset() {
	a.seen = a.seen[:0]
	a.isF = a.isF[:0]
	a.ints = a.ints[:0]
	a.fls = a.fls[:0]
	a.cnt = a.cnt[:0]
	clear(a.best)
	a.best = a.best[:0]
}

// grow ensures state exists for n groups.
func (a *colAgg) grow(n int) {
	switch a.kind {
	case aggCount:
		for len(a.cnt) < n {
			a.cnt = append(a.cnt, 0)
		}
	case aggSum:
		for len(a.ints) < n {
			a.ints = append(a.ints, 0)
			a.fls = append(a.fls, 0)
			a.seen = append(a.seen, false)
			a.isF = append(a.isF, false)
		}
	case aggAvg:
		for len(a.fls) < n {
			a.fls = append(a.fls, 0)
			a.cnt = append(a.cnt, 0)
		}
	default:
		for len(a.best) < n {
			a.best = append(a.best, datum.Null)
			a.seen = append(a.seen, false)
		}
	}
}

// updateBatch folds every live row of b into the group named by the
// parallel gis slice (one group id per live row, in live order).
func (a *colAgg) updateBatch(b *datum.ColBatch, gis []int) error {
	v := &b.Vecs[a.slot]
	n, sel := b.Len(), b.Sel
	if v.Boxed == nil {
		switch {
		case a.kind == aggCount:
			a.countKernel(v.Nulls, n, sel, gis)
			return nil
		case a.kind == aggSum && v.Typ == datum.TInt:
			a.sumIntKernel(v.Ints, v.Nulls, n, sel, gis)
			return nil
		case a.kind == aggSum && v.Typ == datum.TFloat:
			a.sumFloatKernel(v.Floats, v.Nulls, n, sel, gis)
			return nil
		case a.kind == aggAvg && v.Typ == datum.TInt:
			a.avgIntKernel(v.Ints, v.Nulls, n, sel, gis)
			return nil
		case a.kind == aggAvg && v.Typ == datum.TFloat:
			a.avgFloatKernel(v.Floats, v.Nulls, n, sel, gis)
			return nil
		}
	}
	// Generic path: MIN/MAX, boxed vectors, unexpected lane/kind pairs.
	j := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if err := a.addValue(gis[j], v.ValueAt(i)); err != nil {
				return err
			}
			j++
		}
		return nil
	}
	for _, i := range sel {
		if err := a.addValue(gis[j], v.ValueAt(i)); err != nil {
			return err
		}
		j++
	}
	return nil
}

func (a *colAgg) countKernel(nulls datum.NullBitmap, n int, sel, gis []int) {
	j := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if !nulls.Get(i) {
				a.cnt[gis[j]]++
			}
			j++
		}
		return
	}
	for _, i := range sel {
		if !nulls.Get(i) {
			a.cnt[gis[j]]++
		}
		j++
	}
}

func (a *colAgg) sumIntKernel(vals []int64, nulls datum.NullBitmap, n int, sel, gis []int) {
	j := 0
	add := func(i, gi int) {
		if !nulls.Get(i) {
			a.seen[gi] = true
			if a.isF[gi] {
				a.fls[gi] += float64(vals[i])
			} else {
				a.ints[gi] += vals[i]
			}
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			add(i, gis[j])
			j++
		}
		return
	}
	for _, i := range sel {
		add(i, gis[j])
		j++
	}
}

func (a *colAgg) sumFloatKernel(vals []float64, nulls datum.NullBitmap, n int, sel, gis []int) {
	j := 0
	add := func(i, gi int) {
		if !nulls.Get(i) {
			a.seen[gi] = true
			if !a.isF[gi] {
				a.isF[gi] = true
				a.fls[gi] = float64(a.ints[gi])
			}
			a.fls[gi] += vals[i]
		}
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			add(i, gis[j])
			j++
		}
		return
	}
	for _, i := range sel {
		add(i, gis[j])
		j++
	}
}

func (a *colAgg) avgIntKernel(vals []int64, nulls datum.NullBitmap, n int, sel, gis []int) {
	j := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if !nulls.Get(i) {
				gi := gis[j]
				a.fls[gi] += float64(vals[i])
				a.cnt[gi]++
			}
			j++
		}
		return
	}
	for _, i := range sel {
		if !nulls.Get(i) {
			gi := gis[j]
			a.fls[gi] += float64(vals[i])
			a.cnt[gi]++
		}
		j++
	}
}

func (a *colAgg) avgFloatKernel(vals []float64, nulls datum.NullBitmap, n int, sel, gis []int) {
	j := 0
	if sel == nil {
		for i := 0; i < n; i++ {
			if !nulls.Get(i) {
				gi := gis[j]
				a.fls[gi] += vals[i]
				a.cnt[gi]++
			}
			j++
		}
		return
	}
	for _, i := range sel {
		if !nulls.Get(i) {
			gi := gis[j]
			a.fls[gi] += vals[i]
			a.cnt[gi]++
		}
		j++
	}
}

// addValue folds one boxed value, replicating the AggState.Add methods.
func (a *colAgg) addValue(gi int, v datum.Value) error {
	switch a.kind {
	case aggCount:
		if !v.IsNull() {
			a.cnt[gi]++
		}
	case aggSum:
		if v.IsNull() {
			return nil
		}
		a.seen[gi] = true
		if v.Type() == datum.TFloat || a.isF[gi] {
			if !a.isF[gi] {
				a.isF[gi] = true
				a.fls[gi] = float64(a.ints[gi])
			}
			a.fls[gi] += v.Float()
		} else {
			a.ints[gi] += v.Int()
		}
	case aggAvg:
		if v.IsNull() {
			return nil
		}
		a.fls[gi] += v.Float()
		a.cnt[gi]++
	default: // aggMin, aggMax
		if v.IsNull() {
			return nil
		}
		if !a.seen[gi] {
			a.seen[gi] = true
			a.best[gi] = v
			return nil
		}
		c, ok := datum.Compare(v, a.best[gi])
		if !ok {
			return fmt.Errorf("expr: MIN/MAX over incomparable values")
		}
		if a.kind == aggMin && c < 0 || a.kind == aggMax && c > 0 {
			a.best[gi] = v
		}
	}
	return nil
}

// result boxes the final value for group gi, mirroring AggState.Result.
func (a *colAgg) result(gi int) datum.Value {
	switch a.kind {
	case aggCount:
		return datum.NewInt(a.cnt[gi])
	case aggSum:
		if !a.seen[gi] {
			return datum.Null
		}
		if a.isF[gi] {
			return datum.NewFloat(a.fls[gi])
		}
		return datum.NewInt(a.ints[gi])
	case aggAvg:
		if a.cnt[gi] == 0 {
			return datum.Null
		}
		return datum.NewFloat(a.fls[gi] / float64(a.cnt[gi]))
	}
	if !a.seen[gi] {
		return datum.Null
	}
	return a.best[gi]
}
