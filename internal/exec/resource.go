package exec

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/datum"
	"repro/internal/obs"
)

// This file bounds query execution: cancellation, a statement deadline,
// and per-statement resource budgets. Operators call Ctx.tick on tuple
// boundaries — amortized, so the hot path pays one counter increment
// per tuple and a real check every tickInterval tuples — and charge
// materialized state (sort runs, hash tables, temps, group state,
// recursive work tables) against the memory budget via Reserve.
//
// The counters live in a shared record referenced by every Ctx of the
// statement (the parent and the per-worker children an exchange
// operator spawns) and are atomic, so parallel workers draw down one
// statement-wide budget without racing.

// Limits are per-statement execution budgets; zero values are
// unlimited.
type Limits struct {
	// MaxRows bounds the number of tuple-processing steps the statement
	// may take: every tuple crossing a leaf or materialization boundary
	// counts one step. It is a work budget, not a result-size limit — a
	// cross join producing one output row still pays for every pair it
	// considers. Enforcement is amortized: the statement may overshoot
	// by up to tickInterval steps before the error surfaces.
	MaxRows int64
	// MaxMem bounds the estimated bytes of state materialized at any one
	// time by sorts, hash tables, temps, grouping and set operations,
	// table-function results and recursive work tables.
	MaxMem int64
	// Timeout bounds the statement's wall-clock execution time.
	Timeout time.Duration
}

// ResourceError reports an exhausted execution budget.
type ResourceError struct {
	// Budget names what ran out: "rows", "mem" or "time".
	Budget string
	// Limit is the configured budget; Used what the statement reached.
	Limit, Used int64
}

func (e *ResourceError) Error() string {
	switch e.Budget {
	case "time":
		return fmt.Sprintf("exec: statement timeout: %v elapsed (limit %v)",
			time.Duration(e.Used), time.Duration(e.Limit))
	case "mem":
		return fmt.Sprintf("exec: memory budget exhausted: %d bytes materialized (limit %d)", e.Used, e.Limit)
	}
	return fmt.Sprintf("exec: row budget exhausted: %d tuples processed (limit %d)", e.Used, e.Limit)
}

// tickInterval is how many tuple boundaries pass between full
// cancellation/deadline checks; a power of two keeps the amortized
// test a mask.
const tickInterval = 256

// shared is the statement-wide counter record. Every Ctx of one
// statement — the root and the children handed to exchange workers —
// points at the same instance, so the row/work budget, the memory
// budget, and the early-termination flag are statement-global and safe
// under concurrent access.
type shared struct {
	// ticks counts tuple boundaries crossed (the row/work budget).
	ticks atomic.Int64
	// memUsed is the estimated bytes of materialized operator state.
	memUsed atomic.Int64
	// done is the "no more rows needed" signal: LIMIT sets it once its
	// quota is filled so parallel scan workers stop draining their
	// morsels. It is advisory — serial operators simply never look.
	done atomic.Bool
}

// Arm installs the cancellation context and starts the statement clock;
// the deadline derives from Limits.Timeout. Call once before Open.
func (c *Ctx) Arm(goCtx context.Context, limits Limits) {
	c.goCtx = goCtx
	c.limits = limits
	if limits.Timeout > 0 {
		c.started = time.Now()
		c.deadline = c.started.Add(limits.Timeout)
	}
}

// Limits reports the armed budgets.
func (c *Ctx) Limits() Limits { return c.limits }

// tick counts one tuple boundary. The hot path is one atomic increment
// and a mask test (it must stay small enough to inline); every
// tickInterval calls the slow path enforces the row budget, the
// deadline and cancellation, so budgets are enforced to within
// tickInterval tuples statement-wide, no matter how many workers share
// the counter.
func (c *Ctx) tick() error {
	t := c.sh.ticks.Add(1)
	if t&(tickInterval-1) != 0 {
		return nil
	}
	return c.tickSlow(t)
}

// countRow accounts one produced tuple crossing an observed boundary.
// It is the single row-accounting path shared by the work budget and
// the observability layer: the tuple pays one budget tick and, when the
// producing operator is instrumented, one increment on its row counter
// — so MaxRows accounting and EXPLAIN ANALYZE row counts can never
// disagree about what counts as a row. A budget-rejected tuple is not
// recorded as produced. The stats increment is atomic because exchange
// workers share one OpStats per plan node.
func (c *Ctx) countRow(st *obs.OpStats) error {
	if err := c.tick(); err != nil {
		return err
	}
	if st != nil {
		atomic.AddInt64(&st.Rows, 1)
	}
	return nil
}

// tickRows counts n tuple boundaries in one atomic add — the columnar
// path's batch-granular twin of tick. The slow path runs whenever the
// batch crossed a tickInterval boundary, so budgets and cancellation
// are enforced with the same amortized granularity as the row path no
// matter how rows are chunked into batches.
func (c *Ctx) tickRows(n int) error {
	if n <= 0 {
		return nil
	}
	t := c.sh.ticks.Add(int64(n))
	if t&^(tickInterval-1) == (t-int64(n))&^(tickInterval-1) {
		return nil
	}
	return c.tickSlow(t)
}

func (c *Ctx) tickSlow(ticks int64) error {
	if c.limits.MaxRows > 0 && ticks > c.limits.MaxRows {
		return &ResourceError{Budget: "rows", Limit: c.limits.MaxRows, Used: ticks}
	}
	return c.checkCancel()
}

// checkCancel is the unamortized cancellation/deadline check.
func (c *Ctx) checkCancel() error {
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		return &ResourceError{Budget: "time",
			Limit: int64(c.limits.Timeout), Used: int64(time.Since(c.started))}
	}
	if c.goCtx != nil {
		if err := c.goCtx.Err(); err != nil {
			if context.Cause(c.goCtx) == context.DeadlineExceeded && !c.deadline.IsZero() {
				return &ResourceError{Budget: "time",
					Limit: int64(c.limits.Timeout), Used: int64(time.Since(c.started))}
			}
			return err
		}
	}
	return nil
}

// signalDone raises the statement-wide "no more rows needed" flag.
// LIMIT calls it when its quota fills; exchange workers poll
// doneSignaled between batches and stop early. It is not an error:
// execution that observes the flag winds down cleanly.
func (c *Ctx) signalDone() { c.sh.done.Store(true) }

// doneSignaled reports whether some operator declared the statement's
// result complete.
func (c *Ctx) doneSignaled() bool { return c.sh.done.Load() }

// Reserve charges an operator's materialized state against the memory
// budget; Release returns it when the state is freed.
func (c *Ctx) Reserve(bytes int64) error {
	m := c.sh.memUsed.Add(bytes)
	if c.limits.MaxMem > 0 && m > c.limits.MaxMem {
		return &ResourceError{Budget: "mem", Limit: c.limits.MaxMem, Used: m}
	}
	return nil
}

// Release returns previously reserved bytes.
func (c *Ctx) Release(bytes int64) {
	if c.sh.memUsed.Add(-bytes) < 0 {
		// Unbalanced release; clamp so later Reserves are not undersold.
		// A concurrent Reserve may legitimately push the value positive
		// between the check and the store, so only swap from negative.
		for {
			cur := c.sh.memUsed.Load()
			if cur >= 0 || c.sh.memUsed.CompareAndSwap(cur, 0) {
				return
			}
		}
	}
}

// MemUsed reports the bytes currently charged to the statement.
func (c *Ctx) MemUsed() int64 { return c.sh.memUsed.Load() }

// memCharge tracks one operator's reservation so Open/Close pairs stay
// balanced even when Open re-materializes.
type memCharge struct {
	bytes int64
}

// charge reserves the estimated size of rows, replacing any previous
// reservation by this operator.
func (m *memCharge) charge(ctx *Ctx, rows []datum.Row) error {
	m.release(ctx)
	var b int64
	for _, r := range rows {
		b += datum.RowBytes(r)
	}
	m.bytes = b
	return ctx.Reserve(b)
}

// add reserves incrementally (recursive work tables grow row by row).
func (m *memCharge) add(ctx *Ctx, rows ...datum.Row) error {
	var b int64
	for _, r := range rows {
		b += datum.RowBytes(r)
	}
	m.bytes += b
	return ctx.Reserve(b)
}

// release returns the whole reservation.
func (m *memCharge) release(ctx *Ctx) {
	if m.bytes != 0 {
		ctx.Release(m.bytes)
		m.bytes = 0
	}
}
