package exec

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/plan"
)

// Spans renders one instrumented execution as an obs.Span tree mirroring
// the plan: one "operator" span per plan node (duration = cumulative
// wall time, children included, the nesting flamegraphs expect), with
// the operator's open/next-loop/close call split as "call" child spans
// followed by the input operators' spans. Nodes that were never built
// (e.g. the unchosen arm of a CHOOSE) appear with zero duration and a
// not_executed attribute.
func (in *Instrumentation) Spans(root *plan.Node) *obs.Span {
	if in == nil || root == nil {
		return nil
	}
	return in.spanOf(root)
}

func (in *Instrumentation) spanOf(n *plan.Node) *obs.Span {
	name := n.Op
	if n.Table != nil {
		name += "(" + n.Table.Name + ")"
	}
	s := &obs.Span{Name: name, Kind: "operator"}
	if st := in.OpStats(n); st != nil {
		s.DurNanos = st.TotalNanos()
		s.Attrs = map[string]string{
			"rows":    strconv.FormatInt(st.Rows, 10),
			"self_ns": strconv.FormatInt(in.SelfNanos(n), 10),
		}
		if k := in.Kind(n); k != "" {
			s.Attrs["operator"] = k
		}
		if st.MemHighWater > 0 {
			s.Attrs["mem_high_water"] = strconv.FormatInt(st.MemHighWater, 10)
		}
		if st.CacheHits+st.CacheMisses > 0 {
			s.Attrs["cache_hits"] = strconv.FormatInt(st.CacheHits, 10)
			s.Attrs["cache_misses"] = strconv.FormatInt(st.CacheMisses, 10)
		}
		if len(st.WorkerRows) > 0 {
			workers := ""
			for i, r := range st.WorkerRows {
				if i > 0 {
					workers += ","
				}
				workers += strconv.FormatInt(r, 10)
			}
			s.Attrs["worker_rows"] = workers
		}
		s.Children = append(s.Children,
			&obs.Span{Name: "open", Kind: "call", DurNanos: st.OpenNanos,
				Attrs: map[string]string{"calls": strconv.FormatInt(st.Opens, 10)}},
			&obs.Span{Name: "next", Kind: "call", DurNanos: st.NextNanos,
				Attrs: map[string]string{"calls": strconv.FormatInt(st.Nexts, 10)}},
			&obs.Span{Name: "close", Kind: "call", DurNanos: st.CloseNanos,
				Attrs: map[string]string{"calls": strconv.FormatInt(st.Closes, 10)}},
		)
	} else {
		s.Attrs = map[string]string{"not_executed": "true"}
	}
	for _, c := range n.Inputs {
		s.Children = append(s.Children, in.spanOf(c))
	}
	return s
}
