package exec

import (
	"errors"
	"fmt"

	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/txn"
)

// subqCache implements the "evaluate-on-demand" mechanism of section 7:
// subqueries are evaluated only when needed, and re-evaluation is
// avoided when the correlation values have not changed. The cache keys
// materialized inner results by correlation-vector value.
type subqCache struct {
	entries map[string][]datum.Row
	// Hits/Misses are exposed for the evaluate-on-demand experiment.
	Hits, Misses int64
	cap          int
}

func newSubqCache() *subqCache {
	return &subqCache{entries: map[string][]datum.Row{}, cap: 4096}
}

func (c *subqCache) get(key string) ([]datum.Row, bool) {
	r, ok := c.entries[key]
	if ok {
		c.Hits++
	} else {
		c.Misses++
	}
	return r, ok
}

func (c *subqCache) put(key string, rows []datum.Row) {
	if len(c.entries) >= c.cap {
		// Simple reset; correlation values usually cluster, so a full
		// reset is rare and keeps the structure trivial.
		c.entries = map[string][]datum.Row{}
	}
	if rows == nil {
		rows = []datum.Row{}
	}
	c.entries[key] = rows
}

// runSubplan evaluates an inner plan under a correlation vector,
// caching by correlation value.
type subplanRunner struct {
	inner Stream
	cache *subqCache
}

func (r *subplanRunner) rows(ctx *Ctx, corr datum.Row) ([]datum.Row, error) {
	key := datum.RowKey(corr)
	if rows, ok := r.cache.get(key); ok {
		ctx.SubqHits++
		return rows, nil
	}
	ctx.SubqMisses++
	saved := ctx.corr
	ctx.corr = corr
	rows, err := Run(ctx, r.inner)
	ctx.corr = saved
	if err != nil {
		return nil, err
	}
	r.cache.put(key, rows)
	return rows, nil
}

// ---------------------------------------------------------------------
// SUBQ: applies a subquery quantifier to each outer tuple. The join
// kind is a parameter (exists / op-all / scalar-subquery / custom set
// predicates), separated from the (nested-loop) control structure.

type subqOp struct {
	input    Stream
	runner   *subplanRunner
	kind     string
	negated  bool
	setPred  string
	preds    []expr.Expr // evaluated over concat(outer, inner element)
	corrRefs []expr.Expr // evaluated over the outer row
	innerW   int
	builder  *Builder
	setReg   setPredLookup
	// pending buffers multi-row emissions (lateral kind).
	pending []datum.Row
	// prevHits/prevMisses carry cache totals across re-opens (each Open
	// starts a fresh cache), so CacheStats is statement-cumulative.
	prevHits, prevMisses int64
}

type setPredLookup interface {
	SetPredicate(name string) *expr.SetPredicateFunc
}

func (b *Builder) buildSubq(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	in, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	// The inner plan sees a fresh correlation environment: its vector
	// is built per outer row from CorrCols.
	innerCorr := map[plan.ColRef]int{}
	for i, cr := range n.CorrCols {
		innerCorr[cr] = i
	}
	inner, err := b.Build(n.Inputs[1], innerCorr)
	if err != nil {
		return nil, err
	}
	// CorrCols are resolved against the outer row (or the enclosing
	// correlation).
	outerEnv := envFromCols(n.Inputs[0].Cols, corr)
	corrRefs := make([]expr.Expr, len(n.CorrCols))
	for i, cr := range n.CorrCols {
		ref, err := outerEnv.bind(expr.NewCol(cr.QID, cr.Ord, fmt.Sprintf("corr q%d.#%d", cr.QID, cr.Ord), 0))
		if err != nil {
			return nil, err
		}
		corrRefs[i] = ref
	}
	// Linking predicates see outer slots then inner slots.
	predCols := append(append([]plan.ColRef(nil), n.Inputs[0].Cols...), n.Inputs[1].Cols...)
	// Relabel inner slots as the quantifier's columns.
	for i := range n.Inputs[1].Cols {
		predCols[len(n.Inputs[0].Cols)+i] = plan.ColRef{QID: n.QID, Ord: i}
	}
	predEnv := envFromCols(predCols, corr)
	preds, err := predEnv.bindAll(n.Preds)
	if err != nil {
		return nil, err
	}
	return &subqOp{
		input:    in,
		runner:   &subplanRunner{inner: inner, cache: newSubqCache()},
		kind:     n.JoinKind,
		negated:  n.Negated,
		setPred:  n.SetPred,
		preds:    preds,
		corrRefs: corrRefs,
		innerW:   len(n.Inputs[1].Cols),
		builder:  b,
		setReg:   b.cat.Funcs,
	}, nil
}

func (s *subqOp) Open(ctx *Ctx) error {
	if c := s.runner.cache; c != nil {
		s.prevHits += c.Hits
		s.prevMisses += c.Misses
	}
	s.runner.cache = newSubqCache()
	s.pending = nil
	return s.input.Open(ctx)
}

// CacheStats reports statement-cumulative subquery-cache totals; the
// stats decorator harvests them at Close.
func (s *subqOp) CacheStats() (hits, misses int64) {
	return s.prevHits + s.runner.cache.Hits, s.prevMisses + s.runner.cache.Misses
}

func (s *subqOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	ec := ctx.exprCtx()
	for {
		if len(s.pending) > 0 {
			out := s.pending[0]
			s.pending = s.pending[1:]
			return out, true, nil
		}
		row, ok, err := s.input.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		// Build the correlation vector for this outer tuple.
		corr := make(datum.Row, len(s.corrRefs))
		for i, r := range s.corrRefs {
			v, err := r.Eval(ec, row)
			if err != nil {
				return nil, false, err
			}
			corr[i] = v
		}
		inner, err := s.runner.rows(ctx, corr)
		if err != nil {
			return nil, false, err
		}
		if s.kind == plan.KindLateral {
			// Correlated derived table: emit the concatenation of the
			// outer tuple with every qualifying inner tuple.
			for _, ir := range inner {
				out := datum.Concat(row, ir)
				match, err := evalPreds(ctx, s.preds, out)
				if err != nil {
					return nil, false, err
				}
				if match {
					s.pending = append(s.pending, out)
				}
			}
			continue
		}
		if s.kind == plan.KindScalarSub {
			switch len(inner) {
			case 0:
				nulls := make(datum.Row, s.innerW)
				for i := range nulls {
					nulls[i] = datum.Null
				}
				return datum.Concat(row, nulls), true, nil
			case 1:
				return datum.Concat(row, inner[0]), true, nil
			default:
				return nil, false, fmt.Errorf("exec: scalar subquery returned %d rows", len(inner))
			}
		}
		// Set-predicate fold (exists/op-all/custom): the quantifier's
		// set predicate function folds the linking predicate's truth
		// value over the subquery elements.
		spName := s.setPred
		if spName == "" {
			spName = "ANY"
		}
		sp := s.setReg.SetPredicate(spName)
		if sp == nil {
			return nil, false, fmt.Errorf("exec: unknown set predicate %s", spName)
		}
		st := sp.NewState()
		for _, ir := range inner {
			// The fold walks a pre-materialized slice; without its own
			// tick a huge cached subquery would be uncancellable.
			if err := ctx.tick(); err != nil {
				return nil, false, err
			}
			both := datum.Concat(row, ir)
			t := datum.True
			for _, p := range s.preds {
				v, err := p.Eval(ec, both)
				if err != nil {
					return nil, false, err
				}
				t = t.And(datum.TristateOf(v))
				if t == datum.False {
					break
				}
			}
			st.Add(t)
			if st.Decided() {
				break
			}
		}
		res := st.Result()
		if s.negated {
			res = res.Not()
		}
		if res.IsTrue() {
			return row, true, nil
		}
	}
}

func (s *subqOp) Close(ctx *Ctx) error { return s.input.Close(ctx) }

// ---------------------------------------------------------------------
// Deferred subplans (OR-of-subquery predicates): refineSubplans installs
// Run closures on expr.Subplan nodes, completing the paper's OR-operator
// machinery — each disjunct's subquery is evaluated on demand with
// caching, so a tuple rejected by the cheap disjunct is "handed over"
// to the subquery disjunct for further consideration.
func (b *Builder) refineSubplans(exprs []expr.Expr, inputCols []plan.ColRef, corr map[plan.ColRef]int) ([]expr.Expr, error) {
	env := envFromCols(inputCols, corr)
	out := make([]expr.Expr, len(exprs))
	for i, e := range exprs {
		var firstErr error
		out[i] = expr.Transform(e, func(x expr.Expr) expr.Expr {
			sp, ok := x.(*expr.Subplan)
			if !ok {
				return x
			}
			info, ok := sp.Aux.(*plan.SubplanInfo)
			if !ok {
				if firstErr == nil {
					firstErr = fmt.Errorf("exec: subplan %s was not compiled", sp.Label)
				}
				return x
			}
			closure, err := b.subplanClosure(info, env, corr)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return x
			}
			return &expr.Subplan{Label: sp.Label, Typ: sp.Typ, Run: closure}
		})
		if firstErr != nil {
			return nil, firstErr
		}
	}
	return out, nil
}

func (b *Builder) subplanClosure(info *plan.SubplanInfo, env *bindEnv, corr map[plan.ColRef]int) (func(*expr.Context, datum.Row) (datum.Value, error), error) {
	innerCorr := map[plan.ColRef]int{}
	for i, cr := range info.CorrCols {
		innerCorr[cr] = i
	}
	inner, err := b.Build(info.Plan, innerCorr)
	if err != nil {
		return nil, err
	}
	corrRefs := make([]expr.Expr, len(info.CorrCols))
	for i, cr := range info.CorrCols {
		ref, err := env.bind(expr.NewCol(cr.QID, cr.Ord, "corr", 0))
		if err != nil {
			return nil, err
		}
		corrRefs[i] = ref
	}
	var lhs expr.Expr
	if info.Lhs != nil {
		lhs, err = env.bind(info.Lhs)
		if err != nil {
			return nil, err
		}
	}
	runner := &subplanRunner{inner: inner, cache: newSubqCache()}
	mode, negated := info.Mode, info.Negated
	return func(callerEC *expr.Context, outer datum.Row) (datum.Value, error) {
		// Closures run inside expression evaluation; the executor's
		// context rides along in expr.Context.Exec.
		ctx, _ := callerEC.Exec.(*Ctx)
		if ctx == nil {
			return datum.Null, fmt.Errorf("exec: subplan evaluated outside an execution context")
		}
		ec := callerEC
		cv := make(datum.Row, len(corrRefs))
		for i, r := range corrRefs {
			v, err := r.Eval(ec, outer)
			if err != nil {
				return datum.Null, err
			}
			cv[i] = v
		}
		rows, err := runner.rows(ctx, cv)
		if err != nil {
			return datum.Null, err
		}
		switch mode {
		case "SCALAR":
			switch len(rows) {
			case 0:
				return datum.Null, nil
			case 1:
				return rows[0][0], nil
			default:
				return datum.Null, fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
			}
		case "EXISTS":
			res := len(rows) > 0
			if negated {
				res = !res
			}
			return datum.NewBool(res), nil
		case "IN":
			lv, err := lhs.Eval(ec, outer)
			if err != nil {
				return datum.Null, err
			}
			res := datum.False
			for _, r := range rows {
				eq, err := expr.EvalCmp(expr.OpEq, lv, r[0])
				if err != nil {
					return datum.Null, err
				}
				res = res.Or(datum.TristateOf(eq))
				if res == datum.True {
					break
				}
			}
			if negated {
				res = res.Not()
			}
			return res.Datum(), nil
		}
		return datum.Null, fmt.Errorf("exec: unknown subplan mode %s", mode)
	}, nil
}

// ---------------------------------------------------------------------
// Recursion: RECUNION computes the fixpoint of its recursive branches,
// RECREF reads the working table.

type recUnionOp struct {
	seed, rec Stream
	boxID     int
	linear    bool // exactly one RECREF → semi-naive (delta) evaluation

	out []datum.Row
	pos int
	mem memCharge
}

func (b *Builder) buildRecUnion(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	seed, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	rec, err := b.Build(n.Inputs[1], corr)
	if err != nil {
		return nil, err
	}
	// Count recursive references to decide delta vs total evaluation.
	refs := 0
	plan.Walk(n.Inputs[1], func(x *plan.Node) bool {
		if x.Op == plan.OpRecRef && x.RecBoxID == n.RecBoxID {
			refs++
		}
		return true
	})
	return &recUnionOp{seed: seed, rec: rec, boxID: n.RecBoxID, linear: refs == 1}, nil
}

func (r *recUnionOp) Open(ctx *Ctx) error {
	const maxIterations = 1_000_000
	seen := map[string]bool{}
	var total []datum.Row
	add := func(rows []datum.Row) []datum.Row {
		var fresh []datum.Row
		for _, row := range rows {
			k := datum.RowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
			total = append(total, row)
			fresh = append(fresh, row)
		}
		return fresh
	}
	seedRows, err := Run(ctx, r.seed)
	if err != nil {
		return err
	}
	delta := add(seedRows)
	if err := r.mem.add(ctx, delta...); err != nil {
		return err
	}
	wt := &recWorkTable{useTotal: !r.linear}
	prev := ctx.rec[r.boxID]
	ctx.rec[r.boxID] = wt
	defer func() { ctx.rec[r.boxID] = prev }()

	for iter := 0; len(delta) > 0; iter++ {
		if iter > maxIterations {
			return fmt.Errorf("exec: recursive query exceeded %d iterations", maxIterations)
		}
		wt.delta = delta
		wt.total = total
		rows, err := Run(ctx, r.rec)
		if err != nil {
			return err
		}
		delta = add(rows)
		if err := r.mem.add(ctx, delta...); err != nil {
			return err
		}
	}
	r.out, r.pos = total, 0
	return nil
}

func (r *recUnionOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if r.pos >= len(r.out) {
		return nil, false, nil
	}
	row := r.out[r.pos]
	r.pos++
	return row, true, nil
}

func (r *recUnionOp) Close(ctx *Ctx) error {
	r.out = nil
	r.mem.release(ctx)
	return nil
}

type recRefOp struct {
	boxID int
	rows  []datum.Row
	pos   int
}

func (r *recRefOp) Open(ctx *Ctx) error {
	wt := ctx.rec[r.boxID]
	if wt == nil {
		return fmt.Errorf("exec: recursive reference outside its fixpoint (box %d)", r.boxID)
	}
	if wt.useTotal {
		r.rows = wt.total
	} else {
		r.rows = wt.delta
	}
	r.pos = 0
	return nil
}

func (r *recRefOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if r.pos >= len(r.rows) {
		return nil, false, nil
	}
	row := r.rows[r.pos]
	r.pos++
	return row, true, nil
}

func (r *recRefOp) Close(ctx *Ctx) error { return nil }

// ---------------------------------------------------------------------
// DML executors. Updates and deletes run in two phases (identify, then
// apply) to avoid the Halloween problem of re-visiting freshly updated
// records.

// rollback compensates a failing DML statement back to its entry
// savepoint and counts the rollback (an empty span is not counted:
// nothing was undone). The rest of the transaction's write log is left
// intact — only this statement's writes unwind.
func rollback(ctx *Ctx, mark int) error {
	if ctx.Txn.Writes() > mark {
		ctx.Rollbacks++
	}
	return ctx.Txn.RollbackTo(ctx.Cat, mark)
}

type insertOp struct {
	src  Stream
	node *plan.Node
	done bool
}

func (b *Builder) buildInsert(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	src, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	return &insertOp{src: src, node: n}, nil
}

func (i *insertOp) Open(ctx *Ctx) error {
	i.done = false
	return nil
}

func (i *insertOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if i.done {
		return nil, false, nil
	}
	i.done = true
	rows, err := Run(ctx, i.src)
	if err != nil {
		return nil, false, err
	}
	t := i.node.Table
	if ctx.Txn == nil {
		return nil, false, fmt.Errorf("exec: INSERT outside a transaction")
	}
	// The statement is atomic: every mutation is write-logged, and any
	// error rolls the statement back to its savepoint (heap, version
	// map and indexes).
	mark := ctx.Txn.Mark()
	var affected int64
	for _, src := range rows {
		if err := ctx.tick(); err != nil {
			return nil, false, errors.Join(err, rollback(ctx, mark))
		}
		full := make(datum.Row, len(t.Cols))
		for k := range full {
			full[k] = datum.Null
		}
		for k, ord := range i.node.TargetCols {
			full[ord] = src[k]
		}
		if _, err := ctx.Cat.InsertTx(t, full, ctx.Txn); err != nil {
			return nil, false, errors.Join(err, rollback(ctx, mark))
		}
		affected++
	}
	ctx.Affected += affected
	return nil, false, nil
}

func (i *insertOp) Close(ctx *Ctx) error { return nil }

type updateDeleteOp struct {
	node  *plan.Node
	preds []expr.Expr
	exprs []expr.Expr
	isDel bool
	done  bool
}

func (b *Builder) buildUpdateDelete(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	// Predicates and assignment expressions reference the target
	// table's quantifier columns.
	cols := make([]plan.ColRef, len(n.Table.Cols))
	for i := range n.Table.Cols {
		cols[i] = plan.ColRef{QID: n.QID, Ord: i}
	}
	env := envFromCols(cols, corr)
	preds, err := env.bindAll(n.Preds)
	if err != nil {
		return nil, err
	}
	preds, err = b.refineSubplans(preds, cols, corr)
	if err != nil {
		return nil, err
	}
	exprs, err := env.bindAll(n.Exprs)
	if err != nil {
		return nil, err
	}
	exprs, err = b.refineSubplans(exprs, cols, corr)
	if err != nil {
		return nil, err
	}
	return &updateDeleteOp{node: n, preds: preds, exprs: exprs, isDel: n.Op == plan.OpDelete}, nil
}

func (u *updateDeleteOp) Open(ctx *Ctx) error {
	u.done = false
	return nil
}

func (u *updateDeleteOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if u.done {
		return nil, false, nil
	}
	u.done = true
	t := u.node.Table
	if ctx.Txn == nil {
		return nil, false, fmt.Errorf("exec: %s outside a transaction", map[bool]string{true: "DELETE", false: "UPDATE"}[u.isDel])
	}
	type pending struct {
		rid    storage.RID
		newRow datum.Row
	}
	var work []pending
	it := t.Rel.Scan()
	ec := ctx.exprCtx()
	for {
		row, rid, ok := it.Next()
		if !ok {
			if err := storage.IterErr(it); err != nil {
				it.Close()
				return nil, false, err
			}
			break
		}
		if err := ctx.tick(); err != nil {
			it.Close()
			return nil, false, err
		}
		row, live := txn.Resolve(t.MVCC, rid, row, ctx.Snap)
		if !live {
			continue
		}
		match, err := evalPreds(ctx, u.preds, row)
		if err != nil {
			it.Close()
			return nil, false, err
		}
		if !match {
			continue
		}
		if u.isDel {
			work = append(work, pending{rid: rid})
			continue
		}
		newRow := row.Clone()
		for k, ord := range u.node.TargetCols {
			v, err := u.exprs[k].Eval(ec, row)
			if err != nil {
				it.Close()
				return nil, false, err
			}
			cv, err := datum.Coerce(v, t.Cols[ord].Type)
			if err != nil {
				it.Close()
				return nil, false, err
			}
			newRow[ord] = cv
		}
		work = append(work, pending{rid: rid, newRow: newRow})
	}
	it.Close()
	// Apply phase, statement-atomic: any error rolls back every mutation
	// already applied, including version and index maintenance.
	mark := ctx.Txn.Mark()
	var affected int64
	for _, w := range work {
		var err error
		if err = ctx.tick(); err == nil {
			if u.isDel {
				err = ctx.Cat.DeleteTx(t, w.rid, ctx.Txn)
			} else {
				err = ctx.Cat.UpdateTx(t, w.rid, w.newRow, ctx.Txn)
			}
		}
		if err != nil {
			return nil, false, errors.Join(err, rollback(ctx, mark))
		}
		affected++
	}
	ctx.Affected += affected
	return nil, false, nil
}

func (u *updateDeleteOp) Close(ctx *Ctx) error { return nil }
