package exec

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/txn"
)

// indexKeyOf projects a row onto an index's key columns.
func indexKeyOf(row datum.Row, cols []int) datum.Row {
	k := make(datum.Row, len(cols))
	for i, c := range cols {
		k[i] = row[c]
	}
	return k
}

// frozenFill runs one batch fill under the table's version read lock
// when every physical row is frozen, so the arena fast paths stay
// MVCC-sound: no writer can register an unfrozen version between the
// count check and the rows leaving the iterator. It reports ok=false —
// without filling — when the table has unfrozen versions; the caller
// falls back to tuple-at-a-time resolution.
func frozenFill(tv *txn.TableVersions, fill func() int) (int, bool) {
	if tv == nil {
		return fill(), true
	}
	tv.ReadLock()
	defer tv.ReadUnlock()
	if tv.Count() != 0 {
		return 0, false
	}
	return fill(), true
}

// ---------------------------------------------------------------------
// SCAN

type scanOp struct {
	rel   storage.Relation
	tv    *txn.TableVersions
	preds []expr.Expr
	it    storage.RowIterator
	// buf is the reused row-pointer container of the batched path.
	buf []datum.Row
}

func (b *Builder) buildScan(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	env := envFromCols(n.Cols, corr)
	preds, err := env.bindAll(n.Preds)
	if err != nil {
		return nil, err
	}
	return &scanOp{rel: n.Table.Rel, tv: n.Table.MVCC, preds: preds}, nil
}

func (s *scanOp) Open(ctx *Ctx) error {
	s.it = s.rel.Scan()
	return nil
}

func (s *scanOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	for {
		row, rid, ok := s.it.Next()
		if !ok {
			// Iterators cannot fail from Next; fallible stores report a
			// deferred error at exhaustion instead.
			return nil, false, storage.IterErr(s.it)
		}
		if err := ctx.tick(); err != nil {
			return nil, false, err
		}
		row, live := txn.Resolve(s.tv, rid, row, ctx.Snap)
		if !live {
			continue
		}
		match, err := evalPreds(ctx, s.preds, row)
		if err != nil {
			return nil, false, err
		}
		if match {
			return row, true, nil
		}
	}
}

func (s *scanOp) Close(ctx *Ctx) error {
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	return nil
}

// ---------------------------------------------------------------------
// ISCAN: index range/window access with RID fetch

type indexScanOp struct {
	rel     storage.Relation
	tv      *txn.TableVersions
	at      storage.Attachment
	keyCols []int
	lo, hi  []expr.Expr
	preds   []expr.Expr
	it      storage.EntryIterator
}

func (b *Builder) buildIndexScan(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	env := envFromCols(n.Cols, corr)
	preds, err := env.bindAll(n.Preds)
	if err != nil {
		return nil, err
	}
	// Bound expressions may reference only constants, parameters and
	// correlation columns; bind against an empty local schema.
	boundEnv := envFromCols(nil, corr)
	lo, err := boundEnv.bindAll(n.LoVals)
	if err != nil {
		return nil, err
	}
	hi, err := boundEnv.bindAll(n.HiVals)
	if err != nil {
		return nil, err
	}
	return &indexScanOp{
		rel: n.Table.Rel, tv: n.Table.MVCC,
		at: n.Index.At, keyCols: n.Index.KeyCols,
		lo: lo, hi: hi, preds: preds,
	}, nil
}

func (s *indexScanOp) Open(ctx *Ctx) error {
	evalKey := func(es []expr.Expr) (storage.Bound, error) {
		if len(es) == 0 {
			return storage.Unbounded, nil
		}
		key := make(datum.Row, len(es))
		allNull := true
		for i, e := range es {
			v, err := e.Eval(ctx.exprCtx(), nil)
			if err != nil {
				return storage.Bound{}, err
			}
			key[i] = v
			if !v.IsNull() {
				allNull = false
			}
		}
		if allNull {
			return storage.Unbounded, nil
		}
		return storage.Include(key), nil
	}
	lo, err := evalKey(s.lo)
	if err != nil {
		return err
	}
	hi, err := evalKey(s.hi)
	if err != nil {
		return err
	}
	s.it = s.at.Search(lo, hi)
	return nil
}

func (s *indexScanOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	for {
		e, ok := s.it.Next()
		if !ok {
			return nil, false, storage.IterErr(s.it)
		}
		if err := ctx.tick(); err != nil {
			return nil, false, err
		}
		row, ok := s.rel.Fetch(e.RID)
		if !ok {
			continue // entry for a deleted record
		}
		if s.tv != nil {
			if v := s.tv.Lookup(e.RID); v != nil {
				vis, live := v.Visible(ctx.Snap, row)
				if !live {
					continue
				}
				// A row in flux may be linked under several keys (its
				// current one plus stale old keys); only the entry
				// matching the visible image's key yields the row, so
				// each visible row surfaces exactly once.
				if storage.CompareKeys(indexKeyOf(vis, s.keyCols), e.Key) != 0 {
					continue
				}
				row = vis
			}
		}
		match, err := evalPreds(ctx, s.preds, row)
		if err != nil {
			return nil, false, err
		}
		if match {
			return row, true, nil
		}
	}
}

func (s *indexScanOp) Close(ctx *Ctx) error {
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	return nil
}

// ---------------------------------------------------------------------
// ACCESS (identity relabel), FILTER, PROJECT, LIMIT, TEMP

type passThrough struct {
	input Stream
	// buf is the reused batch container when the input is tuple-only.
	buf []datum.Row
}

func (b *Builder) buildAccess(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	in, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	return &passThrough{input: in}, nil
}

func (p *passThrough) Open(ctx *Ctx) error { return p.input.Open(ctx) }
func (p *passThrough) Next(ctx *Ctx) (datum.Row, bool, error) {
	return p.input.Next(ctx)
}
func (p *passThrough) Close(ctx *Ctx) error { return p.input.Close(ctx) }

type filterOp struct {
	input Stream
	preds []expr.Expr
	// inBuf is the reused batch container when the input is tuple-only.
	inBuf []datum.Row
}

func (b *Builder) buildFilter(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	in, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	env := envFromCols(n.Inputs[0].Cols, corr)
	preds, err := env.bindAll(n.Preds)
	if err != nil {
		return nil, err
	}
	preds, err = b.refineSubplans(preds, n.Inputs[0].Cols, corr)
	if err != nil {
		return nil, err
	}
	if b.vectorize() {
		if cin, ok := in.(ColBatchStream); ok {
			if kernels, ok := compileColPreds(preds); ok {
				return &colFilterOp{input: cin, preds: kernels}, nil
			}
		}
	}
	return &filterOp{input: in, preds: preds}, nil
}

func (f *filterOp) Open(ctx *Ctx) error { return f.input.Open(ctx) }

func (f *filterOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	for {
		row, ok, err := f.input.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		match, err := evalPreds(ctx, f.preds, row)
		if err != nil {
			return nil, false, err
		}
		if match {
			return row, true, nil
		}
	}
}

func (f *filterOp) Close(ctx *Ctx) error { return f.input.Close(ctx) }

type projectOp struct {
	input Stream
	exprs []expr.Expr
	// inBuf/outBuf are the reused batch containers of the batched path.
	inBuf  []datum.Row
	outBuf []datum.Row
}

func (b *Builder) buildProject(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	in, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	env := envFromCols(n.Inputs[0].Cols, corr)
	exprs, err := env.bindAll(n.Exprs)
	if err != nil {
		return nil, err
	}
	exprs, err = b.refineSubplans(exprs, n.Inputs[0].Cols, corr)
	if err != nil {
		return nil, err
	}
	if b.vectorize() {
		if p, ok := tryColProject(in, exprs, n.Types); ok {
			return p, nil
		}
	}
	return &projectOp{input: in, exprs: exprs}, nil
}

func (p *projectOp) Open(ctx *Ctx) error { return p.input.Open(ctx) }

func (p *projectOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	row, ok, err := p.input.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(datum.Row, len(p.exprs))
	ec := ctx.exprCtx()
	for i, e := range p.exprs {
		v, err := e.Eval(ec, row)
		if err != nil {
			return nil, false, err
		}
		out[i] = v
	}
	return out, true, nil
}

func (p *projectOp) Close(ctx *Ctx) error { return p.input.Close(ctx) }

type limitOp struct {
	input Stream
	nExpr expr.Expr
	left  int64
	// inBuf is the reused batch container when the input is tuple-only.
	inBuf []datum.Row
}

func (b *Builder) buildLimit(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	in, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	env := envFromCols(nil, corr)
	ne, err := env.bind(n.LimitExpr)
	if err != nil {
		return nil, err
	}
	return &limitOp{input: in, nExpr: ne}, nil
}

func (l *limitOp) Open(ctx *Ctx) error {
	v, err := l.nExpr.Eval(ctx.exprCtx(), nil)
	if err != nil {
		return err
	}
	if v.Type() != datum.TInt {
		return fmt.Errorf("exec: LIMIT must be an integer")
	}
	l.left = v.Int()
	return l.input.Open(ctx)
}

func (l *limitOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if l.left <= 0 {
		return nil, false, nil
	}
	row, ok, err := l.input.Next(ctx)
	if err != nil || !ok {
		return nil, false, err
	}
	l.left--
	if l.left <= 0 {
		// Quota filled: tell the rest of the statement no more rows are
		// needed, so parallel scan workers stop draining their morsels.
		ctx.signalDone()
	}
	return row, true, nil
}

func (l *limitOp) Close(ctx *Ctx) error { return l.input.Close(ctx) }

// tempOp materializes its input at Open. It re-materializes on every
// Open: a cached copy would go stale whenever the subtree depends on
// per-execution state — correlation values of an enclosing subquery, or
// the delta of a recursive fixpoint iteration.
type tempOp struct {
	input Stream
	rows  []datum.Row
	pos   int
	mem   memCharge
}

func (t *tempOp) Open(ctx *Ctx) error {
	t.pos = 0
	rows, err := Run(ctx, t.input)
	if err != nil {
		return err
	}
	if rows == nil {
		rows = []datum.Row{}
	}
	t.rows = rows
	return t.mem.charge(ctx, rows)
}

func (t *tempOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if t.pos >= len(t.rows) {
		return nil, false, nil
	}
	r := t.rows[t.pos]
	t.pos++
	return r, true, nil
}

func (t *tempOp) Close(ctx *Ctx) error {
	t.mem.release(ctx)
	return nil
}

// ---------------------------------------------------------------------
// SORT

type sortOp struct {
	input Stream
	keys  []plan.SortKey
	rows  []datum.Row
	pos   int
	mem   memCharge
}

func (b *Builder) buildSort(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	in, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	return &sortOp{input: in, keys: n.SortKeys}, nil
}

func (s *sortOp) Open(ctx *Ctx) error {
	rows, err := Run(ctx, s.input)
	if err != nil {
		return err
	}
	if err := s.mem.charge(ctx, rows); err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return sortRowLess(s.keys, rows[i], rows[j])
	})
	s.rows, s.pos = rows, 0
	return nil
}

// sortRowLess is the total order shared by SORT and the GATHER sorted
// merge: the declared keys first, then every remaining slot as a
// tiebreak. The tiebreak makes the order a function of row content
// alone, so a DOP=4 merge of per-worker sorted runs reproduces exactly
// the DOP=1 ordering even among equal-key rows.
func sortRowLess(keys []plan.SortKey, a, b datum.Row) bool {
	for _, k := range keys {
		c := datum.SortCompare(a[k.Slot], b[k.Slot])
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	for i := range a {
		if i >= len(b) {
			break
		}
		if c := datum.SortCompare(a[i], b[i]); c != 0 {
			return c < 0
		}
	}
	return false
}

func (s *sortOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sortOp) Close(ctx *Ctx) error {
	s.rows = nil
	s.mem.release(ctx)
	return nil
}

// ---------------------------------------------------------------------
// Joins. The join method (nested-loop, hash, merge) is the control
// structure; the join kind (regular, leftouter, ...) is the function
// performed, passed as a parameter — section 7's separation.

type nlJoinOp struct {
	left, right Stream
	kind        string
	pred        expr.Expr
	rightWidth  int

	inner    []datum.Row
	leftRow  datum.Row
	ri       int
	matched  bool
	emitNull bool
	mem      memCharge
}

func (b *Builder) buildNLJoin(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	l, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	r, err := b.Build(n.Inputs[1], corr)
	if err != nil {
		return nil, err
	}
	env := envFromCols(n.Cols, corr)
	pred, err := env.bind(n.JoinPred)
	if err != nil {
		return nil, err
	}
	return &nlJoinOp{
		left: l, right: &tempOp{input: r}, kind: n.JoinKind,
		pred: pred, rightWidth: len(n.Inputs[1].Cols),
	}, nil
}

func (j *nlJoinOp) Open(ctx *Ctx) error {
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	rows, err := Run(ctx, j.right)
	if err != nil {
		return err
	}
	j.inner = rows
	j.leftRow = nil
	j.ri = 0
	return j.mem.charge(ctx, rows)
}

func (j *nlJoinOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	ec := ctx.exprCtx()
	for {
		if j.leftRow == nil {
			row, ok, err := j.left.Next(ctx)
			if err != nil || !ok {
				return nil, false, err
			}
			j.leftRow = row
			j.ri = 0
			j.matched = false
		}
		for j.ri < len(j.inner) {
			r := j.inner[j.ri]
			j.ri++
			// Every considered pair is a work unit: a cross join must be
			// cancellable even when the predicate rejects everything.
			if err := ctx.tick(); err != nil {
				return nil, false, err
			}
			out := datum.Concat(j.leftRow, r)
			if j.pred != nil {
				v, err := j.pred.Eval(ec, out)
				if err != nil {
					return nil, false, err
				}
				if !datum.TristateOf(v).IsTrue() {
					continue
				}
			}
			j.matched = true
			return out, true, nil
		}
		// Exhausted inner for this left row.
		if j.kind == plan.KindLeftOuter && !j.matched {
			nulls := make(datum.Row, j.rightWidth)
			for i := range nulls {
				nulls[i] = datum.Null
			}
			out := datum.Concat(j.leftRow, nulls)
			j.leftRow = nil
			return out, true, nil
		}
		j.leftRow = nil
	}
}

func (j *nlJoinOp) Close(ctx *Ctx) error {
	j.inner = nil
	j.mem.release(ctx)
	return errors.Join(j.left.Close(ctx), j.right.Close(ctx))
}

type hashJoinOp struct {
	left, right  Stream
	kind         string
	lKeys, rKeys []int
	pred         expr.Expr
	rightWidth   int

	// filter, when set, is the pushed-down join filter hosted by a
	// columnar scan in the probe (left) subtree; Open populates it from
	// the build table's key hashes.
	filter *joinFilter

	table   map[uint64][]datum.Row
	leftRow datum.Row
	bucket  []datum.Row
	bi      int
	matched bool
	mem     memCharge
}

func (b *Builder) buildHashJoin(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	l, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	r, err := b.Build(n.Inputs[1], corr)
	if err != nil {
		return nil, err
	}
	env := envFromCols(n.Cols, corr)
	pred, err := env.bind(n.JoinPred)
	if err != nil {
		return nil, err
	}
	j := &hashJoinOp{
		left: l, right: r, kind: n.JoinKind,
		lKeys: n.EquiLeft, rKeys: n.EquiRight,
		pred: pred, rightWidth: len(n.Inputs[1].Cols),
	}
	// Push a join filter into a columnar scan feeding the probe side:
	// inner joins only (an outer join must surface unmatched probe
	// rows, so the scan may not drop them).
	if b.vectorize() && (n.JoinKind == "" || n.JoinKind == plan.KindRegular) && len(n.EquiLeft) > 0 {
		if cs, keys := pushJoinFilter(l, n.EquiLeft); cs != nil {
			j.filter = &joinFilter{}
			cs.jf, cs.jfKeys = j.filter, keys
		}
	}
	return j, nil
}

func (j *hashJoinOp) Open(ctx *Ctx) error {
	if j.filter != nil {
		// Deactivate before the probe side opens so a re-opened join
		// never filters against the previous build's bits.
		j.filter.ready.Store(false)
	}
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	rows, err := Run(ctx, j.right)
	if err != nil {
		return err
	}
	if err := j.mem.charge(ctx, rows); err != nil {
		return err
	}
	j.table = map[uint64][]datum.Row{}
	for _, r := range rows {
		// NULL keys never match under = ; skip build rows with NULLs.
		hasNull := false
		for _, k := range j.rKeys {
			if r[k].IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			continue
		}
		h := datum.HashRow(r, j.rKeys)
		j.table[h] = append(j.table[h], r)
	}
	if j.filter != nil {
		j.filter.populate(j.table)
	}
	j.leftRow = nil
	return nil
}

func (j *hashJoinOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	ec := ctx.exprCtx()
	for {
		if j.leftRow == nil {
			row, ok, err := j.left.Next(ctx)
			if err != nil || !ok {
				return nil, false, err
			}
			j.leftRow = row
			j.matched = false
			hasNull := false
			for _, k := range j.lKeys {
				if row[k].IsNull() {
					hasNull = true
					break
				}
			}
			if hasNull {
				j.bucket = nil
			} else {
				j.bucket = j.table[datum.HashRow(row, j.lKeys)]
			}
			j.bi = 0
		}
		for j.bi < len(j.bucket) {
			r := j.bucket[j.bi]
			j.bi++
			eq := true
			for i := range j.lKeys {
				if !datum.Equal(j.leftRow[j.lKeys[i]], r[j.rKeys[i]]) {
					eq = false
					break
				}
			}
			if !eq {
				continue
			}
			out := datum.Concat(j.leftRow, r)
			if j.pred != nil {
				v, err := j.pred.Eval(ec, out)
				if err != nil {
					return nil, false, err
				}
				if !datum.TristateOf(v).IsTrue() {
					continue
				}
			}
			j.matched = true
			return out, true, nil
		}
		if j.kind == plan.KindLeftOuter && !j.matched {
			nulls := make(datum.Row, j.rightWidth)
			for i := range nulls {
				nulls[i] = datum.Null
			}
			out := datum.Concat(j.leftRow, nulls)
			j.leftRow = nil
			return out, true, nil
		}
		j.leftRow = nil
	}
}

func (j *hashJoinOp) Close(ctx *Ctx) error {
	j.table = nil
	j.mem.release(ctx)
	return errors.Join(j.left.Close(ctx), j.right.Close(ctx))
}

type mergeJoinOp struct {
	left, right  Stream
	lKeys, rKeys []int
	pred         expr.Expr

	lRows, rRows []datum.Row
	li, rj       int
	group        []datum.Row // right rows matching current left key
	gi           int
	lRow         datum.Row
	mem          memCharge
}

func (b *Builder) buildMergeJoin(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	l, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	r, err := b.Build(n.Inputs[1], corr)
	if err != nil {
		return nil, err
	}
	env := envFromCols(n.Cols, corr)
	pred, err := env.bind(n.JoinPred)
	if err != nil {
		return nil, err
	}
	return &mergeJoinOp{left: l, right: r, lKeys: n.EquiLeft, rKeys: n.EquiRight, pred: pred}, nil
}

func (j *mergeJoinOp) Open(ctx *Ctx) error {
	var err error
	j.lRows, err = Run(ctx, j.left)
	if err != nil {
		return err
	}
	j.rRows, err = Run(ctx, j.right)
	if err != nil {
		return err
	}
	j.li, j.rj, j.group, j.gi, j.lRow = 0, 0, nil, 0, nil
	if err := j.mem.charge(ctx, j.lRows); err != nil {
		return err
	}
	return j.mem.add(ctx, j.rRows...)
}

func (j *mergeJoinOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	ec := ctx.exprCtx()
	for {
		if j.lRow != nil && j.gi < len(j.group) {
			r := j.group[j.gi]
			j.gi++
			out := datum.Concat(j.lRow, r)
			if j.pred != nil {
				v, err := j.pred.Eval(ec, out)
				if err != nil {
					return nil, false, err
				}
				if !datum.TristateOf(v).IsTrue() {
					continue
				}
			}
			return out, true, nil
		}
		// Advance left; rebuild group when the key changes.
		if j.li >= len(j.lRows) {
			return nil, false, nil
		}
		prev := j.lRow
		j.lRow = j.lRows[j.li]
		j.li++
		// NULL join keys never match.
		hasNull := false
		for _, k := range j.lKeys {
			if j.lRow[k].IsNull() {
				hasNull = true
				break
			}
		}
		if hasNull {
			j.group, j.gi = nil, 0
			j.lRow = nil
			continue
		}
		if prev != nil && sameLeftKey(prev, j.lRow, j.lKeys) {
			// Same key as previous left row: reuse the group.
			j.gi = 0
			continue
		}
		// Advance right pointer to the first row >= left key.
		for j.rj < len(j.rRows) && j.keyCmpRight(j.rRows[j.rj]) < 0 {
			j.rj++
		}
		j.group = nil
		for k := j.rj; k < len(j.rRows) && j.keyCmpRight(j.rRows[k]) == 0; k++ {
			j.group = append(j.group, j.rRows[k])
		}
		j.gi = 0
	}
}

// keyCmpRight compares right row keys against the current left row key:
// negative when right < left.
func (j *mergeJoinOp) keyCmpRight(r datum.Row) int {
	for i := range j.lKeys {
		if c := datum.SortCompare(r[j.rKeys[i]], j.lRow[j.lKeys[i]]); c != 0 {
			return c
		}
	}
	return 0
}

// sameLeftKey reports whether two left rows share their join key.
func sameLeftKey(a, b datum.Row, keys []int) bool {
	for _, k := range keys {
		if datum.SortCompare(a[k], b[k]) != 0 {
			return false
		}
	}
	return true
}

func (j *mergeJoinOp) Close(ctx *Ctx) error {
	j.lRows, j.rRows, j.group = nil, nil, nil
	j.mem.release(ctx)
	return errors.Join(j.left.Close(ctx), j.right.Close(ctx))
}

// ---------------------------------------------------------------------
// GROUP, DISTINCT, set operations

type groupOp struct {
	input     Stream
	groupCols []int
	aggs      []*expr.AggCall
	argExprs  []expr.Expr

	out []datum.Row
	pos int
	mem memCharge
}

func (b *Builder) buildGroup(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	in, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	env := envFromCols(n.Inputs[0].Cols, corr)
	args := make([]expr.Expr, len(n.Aggs))
	for i, a := range n.Aggs {
		bound, err := env.bind(a.Arg)
		if err != nil {
			return nil, err
		}
		args[i] = bound
	}
	if b.vectorize() {
		if g, ok := tryColGroup(in, n, args); ok {
			return g, nil
		}
	}
	return &groupOp{input: in, groupCols: n.GroupCols, aggs: n.Aggs, argExprs: args}, nil
}

func (g *groupOp) Open(ctx *Ctx) (err error) {
	type groupState struct {
		key      datum.Row
		states   []expr.AggState
		distinct []map[string]bool
	}
	groups := map[string]*groupState{}
	var order []string
	newState := func(key datum.Row) *groupState {
		gs := &groupState{key: key, states: make([]expr.AggState, len(g.aggs)),
			distinct: make([]map[string]bool, len(g.aggs))}
		for i, a := range g.aggs {
			gs.states[i] = a.Fn.NewState()
			if a.Distinct {
				gs.distinct[i] = map[string]bool{}
			}
		}
		return gs
	}
	if err := g.input.Open(ctx); err != nil {
		// Close even after a failed Open: the input subtree may have
		// opened children (and their storage iterators) before failing,
		// and groupOp.Close does not cascade — the input's lifetime ends
		// inside this Open on every path.
		return errors.Join(err, g.input.Close(ctx))
	}
	defer func() { err = errors.Join(err, g.input.Close(ctx)) }()
	ec := ctx.exprCtx()
	for {
		row, ok, err := g.input.Next(ctx)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := ctx.tick(); err != nil {
			return err
		}
		key := make(datum.Row, len(g.groupCols))
		for i, c := range g.groupCols {
			key[i] = row[c]
		}
		k := datum.RowKey(key)
		gs := groups[k]
		if gs == nil {
			gs = newState(key)
			groups[k] = gs
			order = append(order, k)
		}
		for i := range g.aggs {
			v, err := g.argExprs[i].Eval(ec, row)
			if err != nil {
				return err
			}
			if gs.distinct[i] != nil {
				dk := datum.RowKey(datum.Row{v})
				if gs.distinct[i][dk] {
					continue
				}
				gs.distinct[i][dk] = true
			}
			if err := gs.states[i].Add(v); err != nil {
				return err
			}
		}
	}
	// Scalar aggregation produces one row even for empty input.
	if len(groups) == 0 && len(g.groupCols) == 0 {
		gs := newState(nil)
		groups[""] = gs
		order = append(order, "")
	}
	g.out = nil
	for _, k := range order {
		gs := groups[k]
		row := make(datum.Row, 0, len(g.groupCols)+len(g.aggs))
		row = append(row, gs.key...)
		for i := range g.aggs {
			row = append(row, gs.states[i].Result())
		}
		g.out = append(g.out, row)
	}
	g.pos = 0
	return g.mem.charge(ctx, g.out)
}

func (g *groupOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if g.pos >= len(g.out) {
		return nil, false, nil
	}
	r := g.out[g.pos]
	g.pos++
	return r, true, nil
}

func (g *groupOp) Close(ctx *Ctx) error {
	g.out = nil
	g.mem.release(ctx)
	return nil
}

type distinctOp struct {
	input Stream
	seen  map[string]bool
}

func (b *Builder) buildDistinct(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	in, err := b.Build(n.Inputs[0], corr)
	if err != nil {
		return nil, err
	}
	return &distinctOp{input: in}, nil
}

func (d *distinctOp) Open(ctx *Ctx) error {
	d.seen = map[string]bool{}
	return d.input.Open(ctx)
}

func (d *distinctOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	for {
		row, ok, err := d.input.Next(ctx)
		if err != nil || !ok {
			return nil, false, err
		}
		k := datum.RowKey(row)
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return row, true, nil
	}
}

func (d *distinctOp) Close(ctx *Ctx) error {
	d.seen = nil
	return d.input.Close(ctx)
}

// setOp implements UNION / INTERSECT / EXCEPT with ALL (bag) and
// DISTINCT (set) semantics.
type setOp struct {
	op     string
	all    bool
	inputs []Stream
	out    []datum.Row
	pos    int
	mem    memCharge
}

func (b *Builder) buildSetOp(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	var ins []Stream
	for _, c := range n.Inputs {
		s, err := b.Build(c, corr)
		if err != nil {
			return nil, err
		}
		ins = append(ins, s)
	}
	return &setOp{op: n.Op, all: n.All, inputs: ins}, nil
}

func (s *setOp) Open(ctx *Ctx) error {
	collect := func(st Stream) ([]datum.Row, error) { return Run(ctx, st) }
	switch s.op {
	case plan.OpUnion:
		var rows []datum.Row
		for _, in := range s.inputs {
			r, err := collect(in)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		if !s.all {
			rows = dedup(rows)
		}
		s.out = rows
	case plan.OpInter, plan.OpExcept:
		left, err := collect(s.inputs[0])
		if err != nil {
			return err
		}
		counts := map[string]int{}
		for i := 1; i < len(s.inputs); i++ {
			r, err := collect(s.inputs[i])
			if err != nil {
				return err
			}
			for _, row := range r {
				counts[datum.RowKey(row)]++
			}
		}
		var rows []datum.Row
		if s.op == plan.OpInter {
			for _, row := range left {
				k := datum.RowKey(row)
				if counts[k] > 0 {
					if s.all {
						counts[k]--
					}
					rows = append(rows, row)
				}
			}
		} else {
			for _, row := range left {
				k := datum.RowKey(row)
				if counts[k] > 0 {
					if s.all {
						counts[k]--
						continue
					}
					continue
				}
				rows = append(rows, row)
			}
		}
		if !s.all {
			rows = dedup(rows)
		}
		s.out = rows
	}
	s.pos = 0
	return s.mem.charge(ctx, s.out)
}

func dedup(rows []datum.Row) []datum.Row {
	seen := map[string]bool{}
	var out []datum.Row
	for _, r := range rows {
		k := datum.RowKey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func (s *setOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if s.pos >= len(s.out) {
		return nil, false, nil
	}
	r := s.out[s.pos]
	s.pos++
	return r, true, nil
}

func (s *setOp) Close(ctx *Ctx) error {
	s.out = nil
	s.mem.release(ctx)
	return nil
}

// ---------------------------------------------------------------------
// VALUES, TABLEFN

type valuesOp struct {
	rows [][]expr.Expr
	pos  int
}

func (b *Builder) buildValues(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	env := envFromCols(nil, corr)
	rows := make([][]expr.Expr, len(n.Rows))
	for i, r := range n.Rows {
		br, err := env.bindAll(r)
		if err != nil {
			return nil, err
		}
		rows[i] = br
	}
	return &valuesOp{rows: rows}, nil
}

func (v *valuesOp) Open(ctx *Ctx) error {
	v.pos = 0
	return nil
}

func (v *valuesOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if v.pos >= len(v.rows) {
		return nil, false, nil
	}
	es := v.rows[v.pos]
	v.pos++
	out := make(datum.Row, len(es))
	ec := ctx.exprCtx()
	for i, e := range es {
		val, err := e.Eval(ec, nil)
		if err != nil {
			return nil, false, err
		}
		out[i] = val
	}
	return out, true, nil
}

func (v *valuesOp) Close(ctx *Ctx) error { return nil }

type tableFnOp struct {
	fn     *expr.TableFunc
	args   []expr.Expr
	inputs []Stream
	inCols [][]expr.ColumnDef

	out []datum.Row
	pos int
	mem memCharge
}

func (b *Builder) buildTableFn(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	var ins []Stream
	var inCols [][]expr.ColumnDef
	for _, c := range n.Inputs {
		s, err := b.Build(c, corr)
		if err != nil {
			return nil, err
		}
		ins = append(ins, s)
		var defs []expr.ColumnDef
		for i, cr := range c.Cols {
			defs = append(defs, expr.ColumnDef{Name: fmt.Sprintf("C%d_%d", cr.QID, i), Type: c.Types[i]})
		}
		inCols = append(inCols, defs)
	}
	env := envFromCols(nil, corr)
	args, err := env.bindAll(n.TFArgs)
	if err != nil {
		return nil, err
	}
	return &tableFnOp{fn: n.TableFn, args: args, inputs: ins, inCols: inCols}, nil
}

func (t *tableFnOp) Open(ctx *Ctx) error {
	var rels []*expr.Relation
	for i, in := range t.inputs {
		rows, err := Run(ctx, in)
		if err != nil {
			return err
		}
		rels = append(rels, &expr.Relation{Cols: t.inCols[i], Rows: rows})
	}
	var scalars []datum.Value
	ec := ctx.exprCtx()
	for _, a := range t.args {
		v, err := a.Eval(ec, nil)
		if err != nil {
			return err
		}
		scalars = append(scalars, v)
	}
	out, err := t.fn.Eval(rels, scalars)
	if err != nil {
		return err
	}
	t.out, t.pos = out.Rows, 0
	return t.mem.charge(ctx, t.out)
}

func (t *tableFnOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if t.pos >= len(t.out) {
		return nil, false, nil
	}
	r := t.out[t.pos]
	t.pos++
	return r, true, nil
}

func (t *tableFnOp) Close(ctx *Ctx) error {
	t.out = nil
	t.mem.release(ctx)
	return nil
}

// ---------------------------------------------------------------------
// CHOOSE: the runtime form of the rewrite phase's CHOOSE operation
// (section 5): alternatives guarded by predicates over host-language
// parameters; the first alternative whose guard holds at Open is
// executed, the last is the default.

type chooseOp struct {
	alts   []Stream
	conds  []expr.Expr
	active Stream
}

func (b *Builder) buildChoose(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	var alts []Stream
	for _, c := range n.Inputs {
		s, err := b.Build(c, corr)
		if err != nil {
			return nil, err
		}
		alts = append(alts, s)
	}
	env := envFromCols(nil, corr)
	conds, err := env.bindAll(n.Exprs)
	if err != nil {
		return nil, err
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return &chooseOp{alts: alts, conds: conds}, nil
}

func (c *chooseOp) Open(ctx *Ctx) error {
	c.active = c.alts[len(c.alts)-1] // default: last alternative
	ec := ctx.exprCtx()
	for i, alt := range c.alts {
		if i >= len(c.conds) || c.conds[i] == nil {
			continue
		}
		v, err := c.conds[i].Eval(ec, nil)
		if err != nil {
			return err
		}
		if datum.TristateOf(v).IsTrue() {
			c.active = alt
			break
		}
	}
	return c.active.Open(ctx)
}

func (c *chooseOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	return c.active.Next(ctx)
}

func (c *chooseOp) Close(ctx *Ctx) error {
	if c.active != nil {
		return c.active.Close(ctx)
	}
	return nil
}
