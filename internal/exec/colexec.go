// Columnar operators: the vectorized execution spine. A ColBatchStream
// produces ColBatches — typed column vectors plus a selection vector —
// so the scan→filter→project→aggregate spine runs fused per-type
// kernels instead of per-row interface dispatch.
//
// Every columnar operator also implements Stream and BatchStream by
// materializing its batches back to rows, so any row-oriented parent —
// joins, sorts, exchanges, the instrumentation wrapper, Run itself —
// composes with a columnar child unchanged. Dispatch happens at
// plan-refinement time: the builder emits a columnar operator only when
// the node's expressions compile to kernels and (for non-leaf
// operators) the child is columnar-native; otherwise it falls back to
// the row operator. Fault-wrapped, durable and virtual relations whose
// iterators lack the ColScanner capability are adapted row-by-row into
// vectors, so the fault/budget/cancel machinery exercises the columnar
// operators too.
package exec

import (
	"errors"
	"sync/atomic"

	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/txn"
)

// ColBatchStream is a batch stream that can also hand out its batches
// in columnar form. NextColBatch follows the NextBatch ownership
// contract: the producer owns the returned batch and invalidates it at
// the next call; a final partial batch may arrive with ok=false, and an
// exhausted stream returns (nil, false, nil).
type ColBatchStream interface {
	BatchStream
	NextColBatch(ctx *Ctx) (*datum.ColBatch, bool, error)
}

// defaultColBatchSize is the columnar batch capacity when the session
// does not pin one. Columnar batches amortize per-batch work across
// more rows than the row-batch default because their per-row cost is a
// lane append, not a Value-slice allocation.
const defaultColBatchSize = 1024

// colBatchLen is the fill target for columnar leaf batches.
func (c *Ctx) colBatchLen() int {
	switch {
	case c.batchSize == 0:
		return defaultColBatchSize
	case c.batchSize <= 1:
		return 1
	}
	return c.batchSize
}

// colBatchSource is the producer side of rowFeed adaptation.
type colBatchSource interface {
	NextColBatch(ctx *Ctx) (*datum.ColBatch, bool, error)
}

// rowFeed adapts a columnar producer to the Stream/BatchStream
// interfaces by materializing each batch into retainable rows. The
// rows slice is the reused batch container; trailing slots are cleared
// before refill so it never pins rows from earlier batches.
type rowFeed struct {
	rows []datum.Row
	pos  int
	done bool
}

func (f *rowFeed) reset() {
	clear(f.rows)
	f.rows = f.rows[:0]
	f.pos = 0
	f.done = false
}

func (f *rowFeed) refill(ctx *Ctx, src colBatchSource) (bool, error) {
	b, more, err := src.NextColBatch(ctx)
	if err != nil {
		return false, err
	}
	clear(f.rows)
	f.rows = f.rows[:0]
	if b != nil {
		f.rows = b.MaterializeInto(f.rows)
	}
	f.pos = 0
	return more, nil
}

func (f *rowFeed) next(ctx *Ctx, src colBatchSource) (datum.Row, bool, error) {
	for f.pos >= len(f.rows) {
		if f.done {
			return nil, false, nil
		}
		more, err := f.refill(ctx, src)
		if err != nil {
			return nil, false, err
		}
		f.done = !more
	}
	r := f.rows[f.pos]
	f.pos++
	return r, true, nil
}

func (f *rowFeed) nextBatch(ctx *Ctx, src colBatchSource) ([]datum.Row, bool, error) {
	if f.done {
		return nil, false, nil
	}
	more, err := f.refill(ctx, src)
	if err != nil {
		return nil, false, err
	}
	f.done = !more
	return f.rows, more, nil
}

// ---------------------------------------------------------------------
// Columnar SCAN

// colScanOp materializes relation pages straight into column vectors
// and evaluates pushed-down predicate kernels plus an optional join
// filter against them, emitting batches that are already filtered.
type colScanOp struct {
	rel   storage.Relation
	tv    *txn.TableVersions
	types []datum.TypeID
	preds []colPred

	// jf, when set, is a join filter pushed down from a hash join above:
	// rows whose key hash cannot be in the build side are dropped here,
	// inside the scan kernel, before they travel up the pipeline.
	jf     *joinFilter
	jfKeys []int

	it      storage.RowIterator
	batch   *datum.ColBatch
	selBuf  []int
	rowBuf  []datum.Row
	hashBuf []uint64
	nullBuf []bool
	feed    rowFeed
}

func (s *colScanOp) Open(ctx *Ctx) error {
	s.it = s.rel.Scan()
	s.feed.reset()
	return nil
}

func (s *colScanOp) NextColBatch(ctx *Ctx) (*datum.ColBatch, bool, error) {
	if s.batch == nil {
		s.batch = datum.NewColBatch(s.types)
	}
	max := ctx.colBatchLen()
	for {
		s.batch.Reset()
		k, err := s.fill(ctx, max)
		if err != nil || k == 0 {
			return nil, false, err
		}
		if err := applyColPreds(s.preds, s.batch, &s.selBuf); err != nil {
			return nil, false, err
		}
		if s.jf != nil {
			s.applyJoinFilter()
		}
		if s.batch.NumLive() > 0 {
			return s.batch, true, nil
		}
		// Entire chunk filtered out; keep pulling. tickRows above keeps
		// budget and cancellation responsive across empty chunks.
	}
}

// fill pulls up to max rows into the batch, columnar-native when the
// iterator supports it and row-by-row otherwise. It charges the rows it
// pulled to the work budget and, at exhaustion, surfaces any deferred
// iterator error (a faulted scan must not read as a clean EOF).
func (s *colScanOp) fill(ctx *Ctx, max int) (int, error) {
	if cs, ok := s.it.(storage.ColScanner); ok {
		k, frozen := frozenFill(s.tv, func() int { return cs.NextCols(s.batch, max) })
		if frozen {
			if k == 0 {
				return 0, storage.IterErr(s.it)
			}
			return k, ctx.tickRows(k)
		}
		// Unfrozen versions: fall through to the row loop, which
		// resolves visibility per row.
	} else if bs, ok := s.it.(storage.BatchScanner); ok {
		if cap(s.rowBuf) < max {
			s.rowBuf = make([]datum.Row, max)
		}
		buf := s.rowBuf[:max]
		k, frozen := frozenFill(s.tv, func() int { return bs.NextRows(buf) })
		if frozen {
			if k == 0 {
				return 0, storage.IterErr(s.it)
			}
			for _, r := range buf[:k] {
				s.batch.AppendRow(r)
			}
			clear(buf)
			return k, ctx.tickRows(k)
		}
	}
	k := 0
	for k < max {
		r, rid, ok := s.it.Next()
		if !ok {
			break
		}
		if err := ctx.tick(); err != nil {
			return k, err
		}
		r, live := txn.Resolve(s.tv, rid, r, ctx.Snap)
		if !live {
			continue
		}
		s.batch.AppendRow(r)
		k++
	}
	if k == 0 {
		return 0, storage.IterErr(s.it)
	}
	return k, nil
}

func (s *colScanOp) applyJoinFilter() {
	if !s.jf.ready.Load() {
		return
	}
	b := s.batch
	if s.nullBuf == nil {
		s.nullBuf = make([]bool, 0, defaultColBatchSize)
	}
	s.hashBuf, s.nullBuf = b.HashLive(s.jfKeys, s.hashBuf[:0], s.nullBuf[:0])
	if b.Sel == nil {
		if cap(s.selBuf) < b.Len() {
			s.selBuf = make([]int, 0, b.Len())
		}
		sel := s.selBuf[:0]
		for i := 0; i < b.Len(); i++ {
			// NULL keys never match under = ; drop them with the misses.
			if !s.nullBuf[i] && s.jf.mayContain(s.hashBuf[i]) {
				sel = append(sel, i)
			}
		}
		b.Sel = sel
		return
	}
	out := b.Sel[:0]
	for j, i := range b.Sel {
		if !s.nullBuf[j] && s.jf.mayContain(s.hashBuf[j]) {
			out = append(out, i)
		}
	}
	b.Sel = out
}

func (s *colScanOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	return s.feed.next(ctx, s)
}

func (s *colScanOp) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	return s.feed.nextBatch(ctx, s)
}

func (s *colScanOp) Close(ctx *Ctx) error {
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	return nil
}

// ---------------------------------------------------------------------
// Columnar FILTER

// colFilterOp shrinks its input's selection vector with compiled
// kernels; column data never moves.
type colFilterOp struct {
	input  ColBatchStream
	preds  []colPred
	selBuf []int
	feed   rowFeed
}

func (f *colFilterOp) Open(ctx *Ctx) error {
	f.feed.reset()
	return f.input.Open(ctx)
}

func (f *colFilterOp) NextColBatch(ctx *Ctx) (*datum.ColBatch, bool, error) {
	for {
		b, more, err := f.input.NextColBatch(ctx)
		if err != nil {
			return nil, false, err
		}
		if b == nil {
			return nil, more, nil
		}
		if err := applyColPreds(f.preds, b, &f.selBuf); err != nil {
			return nil, false, err
		}
		if b.NumLive() > 0 || !more {
			return b, more, nil
		}
	}
}

func (f *colFilterOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	return f.feed.next(ctx, f)
}

func (f *colFilterOp) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	return f.feed.nextBatch(ctx, f)
}

func (f *colFilterOp) Close(ctx *Ctx) error { return f.input.Close(ctx) }

// ---------------------------------------------------------------------
// Columnar PROJECT

// colProjectOp remaps column vectors by header copy — a projection of
// bare columns moves no data — and replicates constants into owned
// vectors.
type colProjectOp struct {
	input  ColBatchStream
	srcs   []int // input slot per output column; -1 marks a constant
	consts []datum.Value
	out    *datum.ColBatch
	feed   rowFeed
}

func (p *colProjectOp) Open(ctx *Ctx) error {
	p.feed.reset()
	return p.input.Open(ctx)
}

func (p *colProjectOp) NextColBatch(ctx *Ctx) (*datum.ColBatch, bool, error) {
	b, more, err := p.input.NextColBatch(ctx)
	if err != nil || b == nil {
		return nil, more, err
	}
	p.out.AliasFrom(b, p.srcs, p.consts)
	return p.out, more, nil
}

func (p *colProjectOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	return p.feed.next(ctx, p)
}

func (p *colProjectOp) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	return p.feed.nextBatch(ctx, p)
}

func (p *colProjectOp) Close(ctx *Ctx) error { return p.input.Close(ctx) }

// ---------------------------------------------------------------------
// Columnar hash GROUP BY

// colGroupOp is the columnar hash aggregate: one map probe per live row
// using the lane-direct grouping key (byte-identical to RowKey, so its
// groups agree with groupOp's), then per-aggregate typed update kernels
// over the batch. Like groupOp it drains its input inside Open and the
// input's lifetime ends there on every path.
type colGroupOp struct {
	input     ColBatchStream
	groupCols []int
	aggs      []*colAgg

	keyRows []datum.Row
	out     []datum.Row
	pos     int
	mem     memCharge
}

func (g *colGroupOp) Open(ctx *Ctx) (err error) {
	g.out, g.keyRows, g.pos = nil, nil, 0
	for _, a := range g.aggs {
		a.reset()
	}
	if err := g.input.Open(ctx); err != nil {
		return errors.Join(err, g.input.Close(ctx))
	}
	defer func() { err = errors.Join(err, g.input.Close(ctx)) }()
	groups := map[string]int{}
	var keyBuf []byte
	var gis []int
	for {
		b, more, err := g.input.NextColBatch(ctx)
		if err != nil {
			return err
		}
		if b != nil && b.NumLive() > 0 {
			if err := ctx.tickRows(b.NumLive()); err != nil {
				return err
			}
			gis = gis[:0]
			assign := func(i int) {
				keyBuf = b.AppendKeyCols(keyBuf[:0], g.groupCols, i)
				gi, ok := groups[string(keyBuf)]
				if !ok {
					gi = len(g.keyRows)
					groups[string(keyBuf)] = gi
					key := make(datum.Row, len(g.groupCols))
					for j, c := range g.groupCols {
						key[j] = b.Vecs[c].ValueAt(i)
					}
					g.keyRows = append(g.keyRows, key)
					for _, a := range g.aggs {
						a.grow(gi + 1)
					}
				}
				gis = append(gis, gi)
			}
			if b.Sel != nil {
				for _, i := range b.Sel {
					assign(i)
				}
			} else {
				for i := 0; i < b.Len(); i++ {
					assign(i)
				}
			}
			for _, a := range g.aggs {
				if err := a.updateBatch(b, gis); err != nil {
					return err
				}
			}
		}
		if !more {
			break
		}
	}
	// Scalar aggregation produces one row even for empty input.
	if len(g.keyRows) == 0 && len(g.groupCols) == 0 {
		g.keyRows = append(g.keyRows, nil)
		for _, a := range g.aggs {
			a.grow(1)
		}
	}
	for gi, key := range g.keyRows {
		row := make(datum.Row, 0, len(g.groupCols)+len(g.aggs))
		row = append(row, key...)
		for _, a := range g.aggs {
			row = append(row, a.result(gi))
		}
		g.out = append(g.out, row)
	}
	return g.mem.charge(ctx, g.out)
}

func (g *colGroupOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if g.pos >= len(g.out) {
		return nil, false, nil
	}
	r := g.out[g.pos]
	g.pos++
	return r, true, nil
}

func (g *colGroupOp) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	if g.pos >= len(g.out) {
		return nil, false, nil
	}
	n := ctx.batchLen()
	if n <= 0 {
		n = defaultBatchSize
	}
	end := min(g.pos+n, len(g.out))
	batch := g.out[g.pos:end]
	g.pos = end
	return batch, end < len(g.out), nil
}

func (g *colGroupOp) Close(ctx *Ctx) error {
	g.out, g.keyRows = nil, nil
	g.mem.release(ctx)
	return nil
}

// ---------------------------------------------------------------------
// Pushed-down join filter

// joinFilter generalizes bloom-join: a hash join over equi-keys builds
// a small bit filter from its build-side key hashes and the columnar
// scan feeding its probe side drops non-matching rows inside the scan
// kernel. False positives are re-checked by the join's own equality
// probe; the filter only ever drops rows whose key hash is provably
// absent from the build side, so it is invisible to results.
//
// ready flips once the build side has been consumed. A probe-side scan
// drained before that (e.g. from inside a blocking operator's Open)
// simply sees an inactive filter.
type joinFilter struct {
	ready atomic.Bool
	mask  uint64
	bits  []uint64
}

// populate sizes the filter to the build table's distinct key hashes
// (~8 bits each, power of two) and inserts them.
func (f *joinFilter) populate(table map[uint64][]datum.Row) {
	bits := 64
	for bits < len(table)*8 {
		bits <<= 1
	}
	words := bits / 64
	if cap(f.bits) >= words {
		f.bits = f.bits[:words]
		clear(f.bits)
	} else {
		f.bits = make([]uint64, words)
	}
	f.mask = uint64(bits - 1)
	for h := range table {
		f.set(h)
		f.set(jfRehash(h))
	}
	f.ready.Store(true)
}

func (f *joinFilter) set(h uint64) {
	i := h & f.mask
	f.bits[i>>6] |= 1 << (i & 63)
}

func (f *joinFilter) mayContain(h uint64) bool {
	i := h & f.mask
	if f.bits[i>>6]>>(i&63)&1 == 0 {
		return false
	}
	j := jfRehash(h) & f.mask
	return f.bits[j>>6]>>(j&63)&1 != 0
}

// jfRehash derives the second probe position: FNV-64a over the hash's
// little-endian bytes.
func jfRehash(h uint64) uint64 {
	x := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		x = (x ^ (h >> (8 * i) & 0xff)) * 1099511628211
	}
	return x
}

// pushJoinFilter walks the probe-side subtree through slot-preserving
// operators looking for a columnar scan to host the join filter,
// remapping key slots through projections. LIMIT blocks the push: a
// filter below LIMIT would change which rows fill the quota.
func pushJoinFilter(s Stream, keys []int) (*colScanOp, []int) {
	k := append([]int(nil), keys...)
	for {
		switch t := s.(type) {
		case *passThrough:
			s = t.input
		case *filterOp:
			s = t.input
		case *colFilterOp:
			s = t.input
		case *colProjectOp:
			for i, slot := range k {
				if slot >= len(t.srcs) || t.srcs[slot] < 0 {
					return nil, nil
				}
				k[i] = t.srcs[slot]
			}
			s = t.input
		case *colScanOp:
			if t.jf != nil {
				// Already hosting another join's filter; pushing two
				// would conflate their key spaces.
				return nil, nil
			}
			return t, k
		default:
			return nil, nil
		}
	}
}

// ---------------------------------------------------------------------
// Builder dispatch

// Vectorized returns a copy of the builder with columnar operator
// dispatch switched on or off. Instrumented builds stay row-oriented
// regardless: the per-node stats wrapper is a row boundary anyway, and
// EXPLAIN ANALYZE row counts are defined against row operators.
func (b *Builder) Vectorized(on bool) *Builder {
	nb := *b
	nb.vec = on
	return &nb
}

// vectorize reports whether this build may emit columnar operators.
func (b *Builder) vectorize() bool { return b.vec && b.instr == nil }

// tryColScan attempts a columnar-native scan; ok=false (with nil error)
// means the node needs the row path.
func (b *Builder) tryColScan(n *plan.Node, corr map[plan.ColRef]int) (Stream, bool, error) {
	if n.Table == nil || n.Table.Rel == nil {
		return nil, false, nil
	}
	env := envFromCols(n.Cols, corr)
	preds, err := env.bindAll(n.Preds)
	if err != nil {
		return nil, false, err
	}
	kernels, ok := compileColPreds(preds)
	if !ok {
		return nil, false, nil
	}
	return &colScanOp{
		rel:   n.Table.Rel,
		tv:    n.Table.MVCC,
		types: append([]datum.TypeID(nil), n.Types...),
		preds: kernels,
	}, true, nil
}

// tryColProject compiles a projection of bare columns and constants.
func tryColProject(in Stream, exprs []expr.Expr, types []datum.TypeID) (Stream, bool) {
	cin, ok := in.(ColBatchStream)
	if !ok {
		return nil, false
	}
	srcs := make([]int, len(exprs))
	consts := make([]datum.Value, len(exprs))
	for i, e := range exprs {
		switch t := e.(type) {
		case *expr.Col:
			if t.Corr || t.Slot < 0 {
				return nil, false
			}
			srcs[i] = t.Slot
		case *expr.Const:
			srcs[i] = -1
			consts[i] = t.Val
		default:
			return nil, false
		}
	}
	return &colProjectOp{
		input:  cin,
		srcs:   srcs,
		consts: consts,
		out:    datum.NewColBatch(types),
	}, true
}

// tryColGroup compiles a hash aggregate over built-in, non-DISTINCT
// aggregate calls with bare-column arguments.
func tryColGroup(in Stream, n *plan.Node, args []expr.Expr) (Stream, bool) {
	cin, ok := in.(ColBatchStream)
	if !ok {
		return nil, false
	}
	aggs := make([]*colAgg, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Distinct {
			return nil, false
		}
		c, ok := asBoundCol(args[i])
		if !ok {
			return nil, false
		}
		ca, ok := newColAgg(a.Name, c.Slot)
		if !ok {
			return nil, false
		}
		aggs[i] = ca
	}
	return &colGroupOp{input: cin, groupCols: n.GroupCols, aggs: aggs}, true
}
