package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/txn"
)

// This file implements intra-query parallelism: exchange operators
// (GATHER and hash REPARTition) over morsel-granular parallel table
// scans. A GATHER plan node carries one child subtree; the builder
// clones the subtree once per worker, replacing the designated scan
// leaf with a morsel-claiming scan over a shared page dispenser, and
// the gather operator runs the clones on worker goroutines that merge
// through a bounded channel. At runtime DOP <= 1 (the fault-injection
// and DML fallback) the same operator runs its workers sequentially on
// the caller's goroutine — same plan, no concurrency.

// ParallelObs carries the obs-layer hooks for parallel execution; any
// field may be nil. Methods are nil-receiver-safe so operators can call
// them unconditionally.
type ParallelObs struct {
	// ParallelStatement fires once per exchange that actually goes
	// parallel (spine insertion produces at most one per statement).
	ParallelStatement func()
	// WorkerStart/WorkerDone bracket each worker goroutine's life.
	WorkerStart, WorkerDone func()
	// Batch observes the row count of each merged exchange batch.
	Batch func(rows int)
	// Backpressure fires when a worker found the exchange channel full
	// and had to block.
	Backpressure func()
}

func (p *ParallelObs) statement() {
	if p != nil && p.ParallelStatement != nil {
		p.ParallelStatement()
	}
}

func (p *ParallelObs) workerStart() {
	if p != nil && p.WorkerStart != nil {
		p.WorkerStart()
	}
}

func (p *ParallelObs) workerDone() {
	if p != nil && p.WorkerDone != nil {
		p.WorkerDone()
	}
}

func (p *ParallelObs) batch(rows int) {
	if p != nil && p.Batch != nil {
		p.Batch(rows)
	}
}

func (p *ParallelObs) backpressure() {
	if p != nil && p.Backpressure != nil {
		p.Backpressure()
	}
}

// ---------------------------------------------------------------------
// Morsel dispenser

// morselSource hands out disjoint page ranges ("morsels") of one stored
// table to competing scan workers. Claiming is a CAS loop on the next
// unclaimed page, so work distribution is dynamic: a worker that drew
// cheap pages simply claims more.
type morselSource struct {
	rel   storage.Relation
	prs   storage.PageRangeScanner
	chunk int64
	next  atomic.Int64
}

// newMorselSource returns a dispenser over rel, or nil when rel cannot
// scan page ranges (a fault-wrapped or extension relation): the caller
// then falls back to one serial worker.
func newMorselSource(rel storage.Relation, dop int) *morselSource {
	prs, ok := rel.(storage.PageRangeScanner)
	if !ok {
		return nil
	}
	pages := rel.PageCount()
	// Aim for several morsels per worker so dynamic claiming can
	// rebalance, but never less than one page per morsel.
	chunk := pages / int64(dop*4)
	if chunk < 1 {
		chunk = 1
	}
	return &morselSource{rel: rel, prs: prs, chunk: chunk}
}

func (m *morselSource) reset() { m.next.Store(0) }

func (m *morselSource) claim() (lo, hi int64, ok bool) {
	pages := m.rel.PageCount()
	for {
		lo = m.next.Load()
		if lo >= pages {
			return 0, 0, false
		}
		hi = lo + m.chunk
		if hi > pages {
			hi = pages
		}
		if m.next.CompareAndSwap(lo, hi) {
			return lo, hi, true
		}
	}
}

// morselBinding tells a worker's builder copy which SCAN plan node to
// build as a morsel-claiming scan.
type morselBinding struct {
	node *plan.Node
	src  *morselSource
}

// morselScanOp is scanOp's parallel twin: instead of one full-table
// iterator it repeatedly claims a page-range morsel from the shared
// dispenser and scans it, until the dispenser runs dry or the
// statement signals early termination.
type morselScanOp struct {
	src   *morselSource
	tv    *txn.TableVersions
	preds []expr.Expr
	it    storage.RowIterator
	buf   []datum.Row
}

func (b *Builder) buildMorselScan(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	env := envFromCols(n.Cols, corr)
	preds, err := env.bindAll(n.Preds)
	if err != nil {
		return nil, err
	}
	return &morselScanOp{src: b.morsel.src, tv: n.Table.MVCC, preds: preds}, nil
}

func (s *morselScanOp) Open(ctx *Ctx) error {
	s.it = nil
	return nil
}

func (s *morselScanOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	for {
		if s.it == nil {
			if ctx.doneSignaled() {
				return nil, false, nil
			}
			lo, hi, ok := s.src.claim()
			if !ok {
				return nil, false, nil
			}
			s.it = s.src.prs.ScanPages(lo, hi)
		}
		row, rid, ok := s.it.Next()
		if !ok {
			err := storage.IterErr(s.it)
			s.it.Close()
			s.it = nil
			if err != nil {
				return nil, false, err
			}
			continue
		}
		if err := ctx.tick(); err != nil {
			return nil, false, err
		}
		row, live := txn.Resolve(s.tv, rid, row, ctx.Snap)
		if !live {
			continue
		}
		match, err := evalPreds(ctx, s.preds, row)
		if err != nil {
			return nil, false, err
		}
		if match {
			return row, true, nil
		}
	}
}

// NextBatch implements BatchStream over morsels, using the storage
// layer's arena batch reads when available.
func (s *morselScanOp) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	n := ctx.batchLen()
	if n <= 0 {
		n = defaultBatchSize
	}
	if cap(s.buf) < n {
		s.buf = make([]datum.Row, n)
	}
	buf := s.buf[:n]
	for {
		if s.it == nil {
			if ctx.doneSignaled() {
				return nil, false, nil
			}
			lo, hi, ok := s.src.claim()
			if !ok {
				return nil, false, nil
			}
			s.it = s.src.prs.ScanPages(lo, hi)
		}
		bsc, fast := s.it.(storage.BatchScanner)
		if !fast {
			// Fall back to the tuple loop for this morsel's iterator.
			out := buf[:0]
			for len(out) < n {
				row, ok, err := s.Next(ctx)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					return out, false, nil
				}
				out = append(out, row)
			}
			return out, true, nil
		}
		k, frozen := frozenFill(s.tv, func() int { return bsc.NextRows(buf) })
		if !frozen {
			// Unfrozen versions: resolve tuple-at-a-time (s.Next applies
			// visibility per row).
			out := buf[:0]
			for len(out) < n {
				row, ok, err := s.Next(ctx)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					return out, false, nil
				}
				out = append(out, row)
			}
			return out, true, nil
		}
		if k == 0 {
			err := storage.IterErr(s.it)
			s.it.Close()
			s.it = nil
			if err != nil {
				return nil, false, err
			}
			continue
		}
		out := buf[:0]
		for _, row := range buf[:k] {
			if err := ctx.tick(); err != nil {
				return nil, false, err
			}
			match, err := evalPreds(ctx, s.preds, row)
			if err != nil {
				return nil, false, err
			}
			if match {
				out = append(out, row)
			}
		}
		if len(out) > 0 {
			return out, true, nil
		}
	}
}

func (s *morselScanOp) Close(ctx *Ctx) error {
	if s.it != nil {
		s.it.Close()
		s.it = nil
	}
	return nil
}

// ---------------------------------------------------------------------
// Hash repartitioning

// repartBinding tells a worker's builder copy which partition of the
// shared pool its REPART nodes read.
type repartBinding struct {
	pool *repartPool
	part int
}

// repartPool redistributes the rows of one producer subtree across
// partitions by key hash: DOP producer clones (sharing a morsel
// dispenser at their scan leaf) each route every row they produce to
// hash(key)%parts, and the worker owning partition i consumes exactly
// the rows whose keys landed there — so grouping or deduplicating each
// partition independently is globally correct.
type repartPool struct {
	producers []Stream
	keys      []int
	parts     int

	mu      sync.Mutex
	started bool
	par     bool
	// chans carries row batches per partition in parallel mode.
	chans []chan []datum.Row
	// bufs holds the fully materialized partitions in serial mode.
	bufs [][]datum.Row
	done chan struct{}
	wg   sync.WaitGroup
	err  error
	mem  memCharge
}

func newRepartPool(producers []Stream, keys []int, parts int) *repartPool {
	return &repartPool{producers: producers, keys: keys, parts: parts}
}

// start launches (or, serially, runs) the producers. It is called by
// every partition reader's Open; the first call of a generation does
// the work.
func (p *repartPool) start(ctx *Ctx, par bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return nil
	}
	p.started = true
	p.par = par
	p.err = nil
	if !par {
		// Serial generation: materialize every partition now, on the
		// caller's goroutine. The memory is charged like any other
		// materializing operator's.
		p.bufs = make([][]datum.Row, p.parts)
		for _, ps := range p.producers {
			rows, err := Run(ctx, ps)
			if err != nil {
				return err
			}
			for _, row := range rows {
				i := int(datum.HashRow(row, p.keys) % uint64(p.parts))
				p.bufs[i] = append(p.bufs[i], row)
			}
			if err := p.mem.add(ctx, rows...); err != nil {
				return err
			}
		}
		return nil
	}
	p.done = make(chan struct{})
	p.chans = make([]chan []datum.Row, p.parts)
	for i := range p.chans {
		p.chans[i] = make(chan []datum.Row, len(p.producers))
	}
	p.wg.Add(len(p.producers))
	for _, ps := range p.producers {
		go func(ps Stream) {
			defer p.wg.Done()
			pctx := ctx.child()
			pctx.par.workerStart()
			defer pctx.par.workerDone()
			if err := p.produce(pctx, ps); err != nil {
				p.mu.Lock()
				if p.err == nil {
					p.err = err
				}
				p.mu.Unlock()
				// Stop sibling producers and scan workers promptly.
				ctx.signalDone()
			}
		}(ps)
	}
	// Close the partitions once every producer is finished.
	//lint:ignore goroutine-hygiene joined transitively: it exits as soon as wg.Wait returns, and readers observe completion through the closed channels
	go func() {
		p.wg.Wait()
		for _, ch := range p.chans {
			close(ch)
		}
	}()
	return nil
}

// produce drains one producer clone, routing rows into per-partition
// outboxes flushed at batch granularity.
// starburst:waits EXCHANGE
func (p *repartPool) produce(ctx *Ctx, ps Stream) (err error) {
	if err := ps.Open(ctx); err != nil {
		return errors.Join(err, ps.Close(ctx))
	}
	defer func() { err = errors.Join(err, ps.Close(ctx)) }()
	n := ctx.batchLen()
	if n <= 0 {
		n = defaultBatchSize
	}
	out := make([][]datum.Row, p.parts)
	flush := func(i int) bool {
		if len(out[i]) == 0 {
			return true
		}
		b := out[i]
		out[i] = nil
		select {
		case p.chans[i] <- b:
			return true
		default:
			ctx.par.backpressure()
		}
		start := time.Now()
		select {
		case p.chans[i] <- b:
			ctx.recordWait(obs.WaitExchange, start)
			return true
		case <-p.done:
			ctx.recordWait(obs.WaitExchange, start)
			return false
		}
	}
	var buf []datum.Row
	for {
		if ctx.doneSignaled() {
			// Early termination (LIMIT satisfied or sibling failure):
			// stop producing; readers see their channels close.
			return nil
		}
		batch, more, berr := nextBatchFrom(ctx, ps, &buf)
		if berr != nil {
			return berr
		}
		for _, row := range batch {
			i := int(datum.HashRow(row, p.keys) % uint64(p.parts))
			out[i] = append(out[i], row)
			if len(out[i]) >= n && !flush(i) {
				return nil
			}
		}
		if !more {
			for i := range out {
				if !flush(i) {
					return nil
				}
			}
			return nil
		}
	}
}

// stop tears down a generation: unblocks and waits out producers, then
// resets so the next Open can start fresh (exchange subtrees must stay
// re-runnable like every other operator).
// starburst:waits CANCEL_STALL
func (p *repartPool) stop(ctx *Ctx) error {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return nil
	}
	p.started = false
	par := p.par
	done := p.done
	chans := p.chans
	p.mu.Unlock()
	if par {
		if done != nil {
			close(done)
		}
		stalled := ctx.doneSignaled()
		start := time.Now()
		p.wg.Wait()
		for _, ch := range chans {
			for range ch {
			}
		}
		if stalled {
			// The statement was cancelled (or terminated early) and had to
			// wait here for its producers to notice and drain.
			ctx.recordWait(obs.WaitCancelStall, start)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.chans, p.bufs, p.done = nil, nil, nil
	p.mem.release(ctx)
	err := p.err
	p.err = nil
	return err
}

// failure reports a producer error observed so far.
func (p *repartPool) failure() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// repartReaderOp is the consuming half of REPART: the worker-side
// stream over one partition.
type repartReaderOp struct {
	pool *repartPool
	part int

	pending []datum.Row
	pi      int
	pos     int
}

func (b *Builder) buildRepart(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	if b.repart == nil {
		// Built outside a gather (shared plan subtree or hand-made
		// plan): hash partitioning into one stream is the identity, so
		// degrade to a pass-through over the producer subtree.
		in, err := b.Build(n.Inputs[0], corr)
		if err != nil {
			return nil, err
		}
		return &passThrough{input: in}, nil
	}
	return &repartReaderOp{pool: b.repart.pool, part: b.repart.part}, nil
}

func (r *repartReaderOp) Open(ctx *Ctx) error {
	r.pending, r.pi, r.pos = nil, 0, 0
	// First reader of the generation starts the pool; the rest join.
	return r.pool.start(ctx, ctx.DOP() > 1)
}

func (r *repartReaderOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if r.pool.par {
		for {
			if r.pi < len(r.pending) {
				row := r.pending[r.pi]
				r.pi++
				return row, true, nil
			}
			batch, ok := <-r.pool.chans[r.part]
			if !ok {
				if err := r.pool.failure(); err != nil {
					return nil, false, err
				}
				return nil, false, nil
			}
			r.pending, r.pi = batch, 0
		}
	}
	buf := r.pool.bufs[r.part]
	if r.pos >= len(buf) {
		return nil, false, nil
	}
	row := buf[r.pos]
	r.pos++
	return row, true, nil
}

func (r *repartReaderOp) Close(ctx *Ctx) error {
	r.pending = nil
	r.pool.mu.Lock()
	active := r.pool.started && r.pool.par && r.pool.chans != nil
	var ch chan []datum.Row
	if active {
		ch = r.pool.chans[r.part]
	}
	r.pool.mu.Unlock()
	if ch != nil {
		// This reader may be closing early (its worker failed or LIMIT
		// was satisfied) while producers still hold batches for its
		// partition; drain in the background so no producer blocks
		// forever on a full channel nobody reads — that would deadlock
		// the exchange's worker join. The goroutine exits when the
		// producers finish (the pool's closer closes the channel).
		//lint:ignore goroutine-hygiene bounded drain: exits when the producers close the channel; joining it here would block on the very producers it exists to unblock
		go func() {
			for range ch {
			}
		}()
	}
	return nil
}

// ---------------------------------------------------------------------
// GATHER

// workerRowsReporter is implemented by exchange operators that can
// break their row count down by worker; the stats decorator harvests it
// at Close for EXPLAIN ANALYZE.
type workerRowsReporter interface {
	WorkerRowCounts() []int64
}

// gatherOp merges the outputs of its worker subtree clones. Unordered
// gather forwards batches through one bounded channel as workers
// produce them; ordered gather (merge keys set) lets each worker finish
// its sorted run and then merges the runs with the same total-order
// comparator SORT uses, reproducing the serial ordering exactly.
type gatherOp struct {
	workers []Stream
	src     *morselSource
	pool    *repartPool
	merge   []plan.SortKey

	// Runtime state, reset every Open.
	parallel   bool
	cur        int
	curOpen    bool
	batches    chan []datum.Row
	done       chan struct{}
	wg         sync.WaitGroup
	workerRows []int64
	failedMu   sync.Mutex
	failed     error
	delivered  bool
	pending    []datum.Row
	pi         int
	outBuf     []datum.Row
	// Ordered mode: one finished sorted run per worker plus a cursor.
	runs    [][]datum.Row
	runPos  []int
	openErr []error
}

func (g *gatherOp) Open(ctx *Ctx) error {
	g.cur, g.curOpen, g.pending, g.pi = 0, false, nil, 0
	g.runs, g.runPos = nil, nil
	g.failed, g.delivered = nil, false
	g.workerRows = make([]int64, len(g.workers))
	if g.src != nil {
		g.src.reset()
	}
	g.parallel = ctx.DOP() > 1 && len(g.workers) > 1
	if g.pool != nil {
		// Serial generations materialize partitions up front; parallel
		// generations start producer goroutines on first reader Open
		// (inside the workers). Starting here keeps the serial error
		// path synchronous.
		if !g.parallel {
			if err := g.pool.start(ctx, false); err != nil {
				return err
			}
		}
	}
	if !g.parallel {
		return nil // inline mode: workers stream sequentially from Next
	}
	ctx.par.statement()
	g.done = make(chan struct{})
	g.batches = make(chan []datum.Row, len(g.workers))
	if g.merge != nil {
		// Allocated before the workers spawn: they append into their
		// private runs[i] slot concurrently.
		g.runs = make([][]datum.Row, len(g.workers))
		g.runPos = make([]int, len(g.workers))
	}
	g.wg.Add(len(g.workers))
	for i, w := range g.workers {
		go func(i int, w Stream) {
			defer g.wg.Done()
			wctx := ctx.child()
			wctx.par.workerStart()
			defer wctx.par.workerDone()
			if err := g.runWorker(wctx, i, w); err != nil {
				g.failedMu.Lock()
				if g.failed == nil {
					g.failed = err
				}
				g.failedMu.Unlock()
				// Ask siblings (and any repart producers) to wind down.
				wctx.signalDone()
			}
		}(i, w)
	}
	if g.merge == nil {
		//lint:ignore goroutine-hygiene joined transitively: it exits as soon as wg.Wait returns, and the consumer observes completion through the closed batches channel
		go func() {
			g.wg.Wait()
			close(g.batches)
		}()
		return nil
	}
	// Ordered gather is a barrier: every worker finishes its sorted run
	// before merging starts.
	g.wg.Wait()
	close(g.batches) // unused in ordered mode; close for symmetry
	g.failedMu.Lock()
	err := g.failed
	g.delivered = err != nil
	g.failedMu.Unlock()
	return err
}

// runWorker opens one worker clone, drains it batchwise into the merge
// channel (unordered) or its private run (ordered), and closes it.
// starburst:waits EXCHANGE
func (g *gatherOp) runWorker(ctx *Ctx, i int, w Stream) (err error) {
	if err := w.Open(ctx); err != nil {
		return errors.Join(err, w.Close(ctx))
	}
	defer func() { err = errors.Join(err, w.Close(ctx)) }()
	var buf []datum.Row
	for {
		batch, more, berr := nextBatchFrom(ctx, w, &buf)
		if berr != nil {
			return berr
		}
		if len(batch) > 0 {
			atomic.AddInt64(&g.workerRows[i], int64(len(batch)))
			ctx.par.batch(len(batch))
			if g.merge != nil {
				for _, row := range batch {
					g.runs[i] = append(g.runs[i], row)
				}
			} else {
				// The channel takes ownership, so hand over a fresh
				// container (rows themselves are retainable by contract).
				out := make([]datum.Row, len(batch))
				copy(out, batch)
				select {
				case g.batches <- out:
				default:
					ctx.par.backpressure()
					start := time.Now()
					select {
					case g.batches <- out:
						ctx.recordWait(obs.WaitExchange, start)
					case <-g.done:
						ctx.recordWait(obs.WaitExchange, start)
						return nil
					}
				}
			}
		}
		if !more {
			return nil
		}
		if ctx.doneSignaled() && g.merge == nil {
			// No more rows needed (LIMIT satisfied or a sibling failed);
			// stop draining. Ordered workers finish their run: the merge
			// needs complete runs to stay deterministic.
			return nil
		}
	}
}

func (g *gatherOp) Next(ctx *Ctx) (datum.Row, bool, error) {
	if !g.parallel {
		return g.nextInline(ctx)
	}
	if g.merge != nil {
		return g.nextMerge()
	}
	for {
		if g.pi < len(g.pending) {
			row := g.pending[g.pi]
			g.pi++
			return row, true, nil
		}
		batch, ok := <-g.batches
		if !ok {
			g.failedMu.Lock()
			err := g.failed
			if err != nil {
				if g.delivered {
					err = nil // already surfaced once
				}
				g.delivered = true
			}
			g.failedMu.Unlock()
			return nil, false, err
		}
		g.pending, g.pi = batch, 0
	}
}

// NextBatch lets unordered parallel gather hand merged batches onward
// without re-tupling them; inline and ordered modes batch up their
// tuple stream.
func (g *gatherOp) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	if !g.parallel || g.merge != nil {
		n := ctx.batchLen()
		if n <= 0 {
			n = defaultBatchSize
		}
		if cap(g.outBuf) < n {
			g.outBuf = make([]datum.Row, 0, n)
		}
		out := g.outBuf[:0]
		for len(out) < n {
			row, ok, err := g.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return out, false, nil
			}
			out = append(out, row)
		}
		return out, true, nil
	}
	if g.pi < len(g.pending) {
		rest := g.pending[g.pi:]
		g.pi = len(g.pending)
		return rest, true, nil
	}
	batch, ok := <-g.batches
	if !ok {
		g.failedMu.Lock()
		err := g.failed
		if err != nil {
			if g.delivered {
				err = nil
			}
			g.delivered = true
		}
		g.failedMu.Unlock()
		return nil, false, err
	}
	return batch, true, nil
}

// nextInline streams the workers one after another on the caller's
// goroutine: with a morsel dispenser the first worker claims every
// morsel and the rest come up empty, so the result is exactly the
// serial execution of the plan.
func (g *gatherOp) nextInline(ctx *Ctx) (datum.Row, bool, error) {
	for g.cur < len(g.workers) {
		w := g.workers[g.cur]
		if !g.curOpen {
			if err := w.Open(ctx); err != nil {
				return nil, false, err
			}
			g.curOpen = true
		}
		row, ok, err := w.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if ok {
			atomic.AddInt64(&g.workerRows[g.cur], 1)
			return row, true, nil
		}
		// The finished worker stays open until gather's Close (closing
		// here and again at Close would double-close it); cur records
		// how many leading workers Close must release.
		g.cur++
		g.curOpen = false
	}
	return nil, false, nil
}

// nextMerge performs the k-way sorted merge over finished runs using
// the same total-order comparator SORT uses.
func (g *gatherOp) nextMerge() (datum.Row, bool, error) {
	best := -1
	for i := range g.runs {
		if g.runPos[i] >= len(g.runs[i]) {
			continue
		}
		if best < 0 || sortRowLess(g.merge, g.runs[i][g.runPos[i]], g.runs[best][g.runPos[best]]) {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	row := g.runs[best][g.runPos[best]]
	g.runPos[best]++
	return row, true, nil
}

// Close joins the worker goroutines and drains the merge channel.
// starburst:waits CANCEL_STALL
func (g *gatherOp) Close(ctx *Ctx) (err error) {
	if g.parallel {
		if g.done != nil {
			close(g.done)
			g.done = nil
		}
		stalled := ctx.doneSignaled()
		start := time.Now()
		g.wg.Wait()
		if g.batches != nil {
			for range g.batches {
			}
			g.batches = nil
		}
		if stalled {
			ctx.recordWait(obs.WaitCancelStall, start)
		}
		g.failedMu.Lock()
		if g.failed != nil && !g.delivered {
			err = g.failed
			g.delivered = true
		}
		g.failedMu.Unlock()
	} else {
		// Inline mode opened workers on this goroutine; close the ones
		// that were opened (Close on a never-opened stream is safe, but
		// the open ones must be closed exactly once each).
		n := g.cur
		if g.curOpen {
			n++
		}
		for i := 0; i < n && i < len(g.workers); i++ {
			err = errors.Join(err, g.workers[i].Close(ctx))
		}
		g.cur, g.curOpen = 0, false
	}
	if g.pool != nil {
		err = errors.Join(err, g.pool.stop(ctx))
	}
	g.pending, g.runs, g.runPos = nil, nil, nil
	g.parallel = false
	return err
}

// WorkerRowCounts implements workerRowsReporter.
func (g *gatherOp) WorkerRowCounts() []int64 {
	out := make([]int64, len(g.workerRows))
	for i := range g.workerRows {
		out[i] = atomic.LoadInt64(&g.workerRows[i])
	}
	return out
}

// ---------------------------------------------------------------------
// Building exchanges

// morselLeafOf walks the probe-side spine of a subtree to the SCAN
// whose table the morsel dispenser will split: single-input operators
// descend through their input, joins through their LEFT (probe/outer)
// input — the build side is replicated per worker, which is correct
// for every join kind including outer joins.
func morselLeafOf(n *plan.Node) *plan.Node {
	for n != nil {
		switch n.Op {
		case plan.OpScan:
			return n
		case plan.OpFilter, plan.OpProject, plan.OpAccess, plan.OpSort, plan.OpTemp,
			plan.OpNLJoin, plan.OpHSJoin, plan.OpSMJoin:
			if len(n.Inputs) == 0 {
				return nil
			}
			n = n.Inputs[0]
		default:
			return nil
		}
	}
	return nil
}

// repartOf finds a REPART node on the single-input spine of the
// gather's child subtree.
func repartOf(n *plan.Node) *plan.Node {
	for n != nil {
		if n.Op == plan.OpRepart {
			return n
		}
		if len(n.Inputs) != 1 {
			return nil
		}
		n = n.Inputs[0]
	}
	return nil
}

// buildGather builds the exchange: per-worker clones of the child
// subtree wired to a shared morsel dispenser (and, for repartitioned
// plans, a shared repartition pool).
func (b *Builder) buildGather(n *plan.Node, corr map[plan.ColRef]int) (Stream, error) {
	if len(n.Inputs) != 1 {
		return nil, fmt.Errorf("exec: GATHER needs exactly one input, has %d", len(n.Inputs))
	}
	child := n.Inputs[0]
	dop := n.DOP
	if dop < 1 {
		dop = 1
	}
	rep := repartOf(child)
	var scanRoot *plan.Node // subtree whose scan leaf gets morselized
	if rep != nil {
		scanRoot = rep.Inputs[0]
	} else {
		scanRoot = child
	}
	leaf := morselLeafOf(scanRoot)
	var src *morselSource
	if leaf != nil && leaf.Table != nil {
		src = newMorselSource(leaf.Table.Rel, dop)
	}
	if src == nil {
		// The leaf cannot be split (extension or fault-wrapped storage):
		// degrade to one worker, which gatherOp always runs inline.
		dop = 1
	}

	var pool *repartPool
	if rep != nil {
		producers := make([]Stream, 0, dop)
		for i := 0; i < dop; i++ {
			pb := *b
			pb.repart = nil
			if src != nil {
				pb.morsel = &morselBinding{node: leaf, src: src}
			}
			ps, err := pb.Build(rep.Inputs[0], corr)
			if err != nil {
				return nil, err
			}
			producers = append(producers, ps)
			if src == nil {
				break // unsplittable: a single producer sees every row
			}
		}
		pool = newRepartPool(producers, rep.GroupCols, dop)
	}

	workers := make([]Stream, 0, dop)
	for i := 0; i < dop; i++ {
		wb := *b
		if pool != nil {
			wb.repart = &repartBinding{pool: pool, part: i}
			wb.morsel = nil
		} else if src != nil {
			wb.morsel = &morselBinding{node: leaf, src: src}
		}
		ws, err := wb.Build(child, corr)
		if err != nil {
			return nil, err
		}
		workers = append(workers, ws)
		if pool == nil && src == nil {
			break
		}
	}

	var merge []plan.SortKey
	if len(n.SortKeys) > 0 {
		merge = n.SortKeys
	}
	return &gatherOp{workers: workers, src: src, pool: pool, merge: merge}, nil
}
