package exec

import (
	"repro/internal/datum"
	"repro/internal/storage"
)

// This file is the batched fast path: an optional extension of Stream
// that moves rows in slices instead of one at a time, cutting per-tuple
// call and allocation overhead on the scan→filter→project spine while
// leaving every tuple-at-a-time operator composable and unchanged.
//
// Ownership contract: the slice returned by NextBatch is the
// producer's container — it is invalidated by the producer's next
// NextBatch (or Close) and must not be retained or mutated. The rows
// inside it ARE caller-retainable: producers hand out freshly
// materialized rows (cloned from storage or built in a per-batch
// arena), never buffers they will overwrite.

// BatchStream is the optional batched extension of Stream. A final
// partial batch may be returned together with ok=false; ok=true means
// more batches may follow (an empty ok=true batch is legal and simply
// means "keep pulling").
type BatchStream interface {
	Stream
	NextBatch(ctx *Ctx) ([]datum.Row, bool, error)
}

// clearTail nils the unused capacity of a reused row-pointer buffer.
// Compaction and short refills leave earlier batches' row references
// sitting beyond len(s); those stale rows (and the arenas they slice
// into) stay reachable until the slot happens to be overwritten, and a
// consumer that oversliced the container would read rows from a batch
// that no longer exists.
func clearTail(s []datum.Row) {
	clear(s[len(s):cap(s)])
}

// nextBatchFrom pulls one batch from s: natively when s is
// batch-capable, otherwise by looping Next into *buf (allocated on
// first use and reused across calls). The returned slice follows the
// BatchStream ownership contract either way.
func nextBatchFrom(ctx *Ctx, s Stream, buf *[]datum.Row) ([]datum.Row, bool, error) {
	if bs, ok := s.(BatchStream); ok {
		return bs.NextBatch(ctx)
	}
	n := ctx.batchLen()
	if n <= 0 {
		n = defaultBatchSize
	}
	if cap(*buf) < n {
		*buf = make([]datum.Row, 0, n)
	}
	out := (*buf)[:0]
	for len(out) < n {
		row, ok, err := s.Next(ctx)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			clearTail(out)
			return out, false, nil
		}
		out = append(out, row)
	}
	clearTail(out)
	return out, true, nil
}

// ---------------------------------------------------------------------
// Batch-native operators

// NextBatch implements BatchStream for table scans. When the storage
// iterator is batch-capable the rows of a batch are materialized in one
// arena (one allocation) instead of one clone per row.
func (s *scanOp) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	n := ctx.batchLen()
	if n <= 0 {
		n = defaultBatchSize
	}
	if cap(s.buf) < n {
		s.buf = make([]datum.Row, n)
	}
	bsc, fast := s.it.(storage.BatchScanner)
	if !fast {
		// Tuple-at-a-time store: reuse the row-pointer buffer but pull
		// through Next (which ticks, resolves visibility and filters).
		out := s.buf[:0]
		for len(out) < n {
			row, ok, err := s.Next(ctx)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				clearTail(out)
				return out, false, nil
			}
			out = append(out, row)
		}
		clearTail(out)
		return out, true, nil
	}
	buf := s.buf[:n]
	for {
		k, frozen := frozenFill(s.tv, func() int { return bsc.NextRows(buf) })
		if !frozen {
			// Unfrozen versions present: the arena fast path cannot
			// apply per-row visibility; resolve tuple-at-a-time.
			out := s.buf[:0]
			for len(out) < n {
				row, ok, err := s.Next(ctx)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					clearTail(out)
					return out, false, nil
				}
				out = append(out, row)
			}
			clearTail(out)
			return out, true, nil
		}
		if k == 0 {
			clear(buf)
			return nil, false, storage.IterErr(s.it)
		}
		// Filter in place: out shares buf's backing array, writing only
		// slots already consumed.
		out := buf[:0]
		for _, row := range buf[:k] {
			if err := ctx.tick(); err != nil {
				return nil, false, err
			}
			match, err := evalPreds(ctx, s.preds, row)
			if err != nil {
				return nil, false, err
			}
			if match {
				out = append(out, row)
			}
		}
		// Dropped rows' references survive the in-place compaction; nil
		// them so the buffer holds exactly the batch being handed out.
		clearTail(out)
		if len(out) > 0 {
			return out, true, nil
		}
		// Every row of this chunk was filtered out; pull the next chunk
		// rather than bubbling an empty batch up the tree.
	}
}

// NextBatch implements BatchStream: predicates are applied to a whole
// input batch, compacting survivors in place in the producer's
// container (legal: our next pull invalidates it anyway, and we only
// ever hand rows onward, never write them).
func (f *filterOp) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	for {
		batch, more, err := nextBatchFrom(ctx, f.input, &f.inBuf)
		if err != nil {
			return nil, false, err
		}
		out := batch[:0]
		for _, row := range batch {
			match, err := evalPreds(ctx, f.preds, row)
			if err != nil {
				return nil, false, err
			}
			if match {
				out = append(out, row)
			}
		}
		// Compaction leaves the dropped rows' references in the trailing
		// slots; nil them so a shorter follow-up batch cannot expose (or
		// pin) rows from an earlier, already-invalidated one.
		clear(batch[len(out):])
		if len(out) > 0 || !more {
			return out, more, nil
		}
	}
}

// NextBatch implements BatchStream: output rows of one batch share a
// single value arena, so projection costs two allocations per batch
// (arena + nothing else, the row-header container is reused) instead of
// one allocation per row.
func (p *projectOp) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	batch, more, err := nextBatchFrom(ctx, p.input, &p.inBuf)
	if err != nil {
		return nil, false, err
	}
	if len(batch) == 0 {
		clearTail(p.outBuf[:0])
		return nil, more, nil
	}
	w := len(p.exprs)
	if cap(p.outBuf) < len(batch) {
		p.outBuf = make([]datum.Row, 0, cap(p.inBuf)+len(batch))
	}
	out := p.outBuf[:0]
	// Fresh arena per batch: the rows handed out slice into it and stay
	// valid for the consumer to retain.
	arena := make([]datum.Value, len(batch)*w)
	ec := ctx.exprCtx()
	for bi, row := range batch {
		dst := arena[bi*w : (bi+1)*w : (bi+1)*w]
		for i, e := range p.exprs {
			v, err := e.Eval(ec, row)
			if err != nil {
				return nil, false, err
			}
			dst[i] = v
		}
		out = append(out, datum.Row(dst))
	}
	clearTail(out)
	return out, more, nil
}

// NextBatch forwards batches through the identity relabel.
func (p *passThrough) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	return nextBatchFrom(ctx, p.input, &p.buf)
}

// NextBatch implements BatchStream for LIMIT: it trims the batch to the
// remaining quota and, once the quota fills, raises the statement-wide
// early-termination signal so parallel scan workers stop draining their
// morsels instead of producing rows nobody will read.
func (l *limitOp) NextBatch(ctx *Ctx) ([]datum.Row, bool, error) {
	if l.left <= 0 {
		return nil, false, nil
	}
	batch, more, err := nextBatchFrom(ctx, l.input, &l.inBuf)
	if err != nil {
		return nil, false, err
	}
	if int64(len(batch)) >= l.left {
		over := batch[l.left:]
		batch = batch[:l.left]
		// Rows beyond the quota will never be delivered and the producer
		// will never be pulled again; drop the references now.
		clear(over)
		l.left = 0
		ctx.signalDone()
		return batch, false, nil
	}
	l.left -= int64(len(batch))
	return batch, more, nil
}
