// Package txn implements the transaction layer under the MVCC
// redesign: transaction identity, per-transaction snapshots against a
// commit-timestamp watermark, and the serialized commit protocol that
// publishes a transaction's versions atomically. Row-version state
// itself lives in versions.go; the catalog layers version maintenance
// and rollback on top of both.
//
// Concurrency model. Statements no longer serialize behind a DB-wide
// RWMutex: any number of transactions read and write concurrently,
// each against the snapshot it captured at Begin. Only two points
// serialize: commits (commitMu, so commit timestamps form a total
// order and the watermark advances one committed transaction at a
// time) and the active-set bookkeeping (mu, a map insert/remove per
// transaction). Visibility needs nothing beyond the watermark: because
// commits are serial and a transaction's versions are stamped with
// their commit timestamp before the watermark reaches it, "created at
// or below my snapshot's watermark" is exactly "committed before I
// began".
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrWriteConflict is wrapped by every first-writer-wins conflict: the
// row a statement tried to write was written by another transaction
// that is still in flight or that committed after this transaction's
// snapshot. The losing transaction must roll back and retry.
var ErrWriteConflict = errors.New("txn: write-write conflict")

// ConflictError reports which table the losing write touched.
type ConflictError struct {
	Table string
	// Other is the competing transaction's ID when it was still in
	// flight, 0 when it had already committed past our snapshot.
	Other int64
}

func (e *ConflictError) Error() string {
	if e.Other != 0 {
		return fmt.Sprintf("txn: write-write conflict on %s with in-flight transaction %d", e.Table, e.Other)
	}
	return fmt.Sprintf("txn: write-write conflict on %s: row version committed after this transaction's snapshot", e.Table)
}

func (e *ConflictError) Unwrap() error { return ErrWriteConflict }

// Snapshot is one transaction's stable view of the database: every
// version committed at or before TS is visible, plus the transaction's
// own uncommitted writes (Own).
type Snapshot struct {
	// TS is the commit-timestamp watermark captured at Begin (or at
	// statement start under read-committed isolation).
	TS int64
	// Own is the owning transaction's ID; 0 for a detached snapshot.
	Own int64
}

// State is a transaction's lifecycle state, surfaced by SYS.TRANSACTIONS.
type State int32

// Transaction states.
const (
	StateActive State = iota
	StateCommitted
	StateAborted
)

func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Txn is one transaction: an identity, a snapshot, and the set of row
// versions it created or tombstoned (stamped with the commit timestamp
// at Commit). A Txn's statements run one at a time — the write-side
// fields are not synchronized across concurrent statements of the same
// transaction.
type Txn struct {
	// ID is the transaction identifier stamped into row versions this
	// transaction writes.
	ID int64
	// Snap is the visibility snapshot statements of this transaction
	// read through.
	Snap Snapshot
	// Started is the Begin wall-clock time (SYS.TRANSACTIONS age).
	Started time.Time
	// Implicit marks the auto-commit transaction wrapped around a
	// single statement, as opposed to an explicit BEGIN.
	Implicit bool

	state   atomic.Int32
	touched []*RowVersion
	stmts   atomic.Int64
}

// State reports the transaction's lifecycle state.
func (t *Txn) State() State { return State(t.state.Load()) }

// Stmts reports how many statements the transaction has run.
func (t *Txn) Stmts() int64 { return t.stmts.Load() }

// NoteStmt counts one statement against the transaction.
func (t *Txn) NoteStmt() { t.stmts.Add(1) }

// Track records a row version this transaction wrote, so Commit can
// stamp it. Called from the single statement goroutine only.
func (t *Txn) Track(v *RowVersion) { t.touched = append(t.touched, v) }

// Manager allocates transactions, owns the commit-timestamp watermark,
// and serializes commits. One Manager exists per DB.
type Manager struct {
	nextID    atomic.Int64
	watermark atomic.Int64

	// commitMu serializes the commit protocol: timestamp allocation,
	// durable commit record, version stamping and watermark publish
	// happen under it, so the watermark only ever exposes fully
	// stamped transactions.
	commitMu sync.Mutex

	mu     sync.Mutex
	active map[int64]*Txn
}

// NewManager returns a Manager with an empty history.
func NewManager() *Manager {
	return &Manager{active: map[int64]*Txn{}}
}

// Watermark reports the newest committed timestamp.
func (m *Manager) Watermark() int64 { return m.watermark.Load() }

// Begin opens a transaction with a fresh snapshot at the current
// watermark and registers it in the active set (which pins the GC
// horizon at or below its snapshot). It must never run under the
// commit mutex: the watermark only exposes fully stamped transactions
// once commitMu is released, so a snapshot captured mid-commit could
// order against a half-published commit (lint rule 4 enforces this).
//
// starburst:snapshot-capture mgr.commitMu
func (m *Manager) Begin(implicit bool) *Txn {
	t := &Txn{
		ID:       m.nextID.Add(1),
		Started:  time.Now(),
		Implicit: implicit,
	}
	m.mu.Lock()
	// The snapshot is captured inside mu so Horizon, which also holds
	// mu, can never observe an active transaction whose snapshot is
	// older than a horizon it already reported.
	t.Snap = Snapshot{TS: m.watermark.Load(), Own: t.ID}
	m.active[t.ID] = t
	m.mu.Unlock()
	return t
}

// Refresh re-captures the transaction's snapshot at the current
// watermark: the read-committed statement boundary. Like Begin, it is
// a snapshot-capture point and must not run under the commit mutex.
//
// starburst:snapshot-capture mgr.commitMu
func (m *Manager) Refresh(t *Txn) {
	m.mu.Lock()
	t.Snap.TS = m.watermark.Load()
	m.mu.Unlock()
}

// Horizon is the global GC fence: the oldest snapshot any active
// transaction holds (the watermark itself when none are active). A
// version whose death committed at or below the horizon is invisible
// to every present and future snapshot and may be physically reaped;
// a version whose birth committed at or below it is visible to all and
// may be frozen.
func (m *Manager) Horizon() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.watermark.Load()
	for _, t := range m.active {
		if t.Snap.TS < h {
			h = t.Snap.TS
		}
	}
	return h
}

// Commit runs the serialized commit protocol: allocate the next commit
// timestamp, run the durable hook (WAL commit record + fsync) while
// the outcome is still invisible, stamp every touched version, then
// publish by advancing the watermark. A durable-hook error aborts the
// commit with the transaction's effects still private; the caller
// rolls back.
func (m *Manager) Commit(t *Txn, durable func(cts int64) error) (int64, error) {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	cts := m.watermark.Load() + 1
	if durable != nil {
		if err := durable(cts); err != nil {
			return 0, err
		}
	}
	for _, v := range t.touched {
		v.stamp(t.ID, cts)
	}
	// Publish. Versions are fully stamped before any snapshot can see
	// a watermark >= cts, so "CTS <= snapshot TS" is race-free.
	m.watermark.Store(cts)
	t.state.Store(int32(StateCommitted))
	m.mu.Lock()
	delete(m.active, t.ID)
	m.mu.Unlock()
	return cts, nil
}

// Finish removes an aborted transaction from the active set. The
// caller has already rolled its writes back physically.
func (m *Manager) Finish(t *Txn) {
	t.state.Store(int32(StateAborted))
	m.mu.Lock()
	delete(m.active, t.ID)
	m.mu.Unlock()
}

// Info is one active transaction's row in SYS.TRANSACTIONS.
type Info struct {
	ID       int64
	Snapshot int64
	State    State
	Implicit bool
	Started  time.Time
	Stmts    int64
}

// Active snapshots the active-transaction set, ordered by ID.
func (m *Manager) Active() []Info {
	m.mu.Lock()
	out := make([]Info, 0, len(m.active))
	for _, t := range m.active {
		out = append(out, Info{
			ID:       t.ID,
			Snapshot: t.Snap.TS,
			State:    t.State(),
			Implicit: t.Implicit,
			Started:  t.Started,
			Stmts:    t.Stmts(),
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
