// Row-version state: the side version map kept per table, and the
// visibility walk.
//
// Versioning is in-place with prior-image chains, InnoDB-style: the
// relation always stores a row's newest image, and a RowVersion entry
// in the table's side map carries who wrote that image, who (if
// anyone) deleted the row, and a chain of prior images for readers
// whose snapshots predate the newest write. A row with no entry at all
// is frozen — written by a transaction that committed at or below
// every active snapshot — and is visible to everyone without any map
// lookup. Keeping frozen rows out of the map is what makes the
// fast path fast: a scan of a table with an empty map (count == 0)
// is exactly as cheap as the pre-MVCC scan.
//
// Soundness of the count fast path. Writers increment count before the
// physical insert/update (both inside the map's write lock), and GC
// decrements it only when an entry is frozen or reaped — which the
// horizon rule permits only once the version is visible to (or dead
// for) every active snapshot. A reader that observed a row through the
// relation's own lock therefore sees count > 0 whenever the row could
// carry a non-frozen version, because the writer's increment
// happens-before the physical write the reader observed.
package txn

import (
	"sync"
	"sync/atomic"

	"repro/internal/datum"
	"repro/internal/storage"
)

// PrevImage is one prior image in a version chain. Immutable after
// publication: it is only created for images whose writer has already
// committed (or was frozen), so its stamp never changes.
type PrevImage struct {
	Row     datum.Row
	XminCTS int64 // commit timestamp of the writer; 0 = frozen
	Prev    *PrevImage
}

// StaleKey is an index entry made obsolete by a key-changing update:
// the entry stays linked so older snapshots can still reach the row by
// its old key, and GC unlinks it when the update freezes. The index is
// named, not referenced: the index set is resolved against the current
// catalog generation at unlink time (the index may have been dropped).
type StaleKey struct {
	Index string
	Key   datum.Row
}

// RowVersion is the version state of one physically-stored row.
// Fields are atomics because commit stamping and visibility checks
// race benignly: a reader either sees the pre-stamp zero (and treats
// the version as uncommitted — correct, its snapshot predates the
// commit) or the stamped timestamp.
type RowVersion struct {
	xminTxn atomic.Int64 // writer of the newest image; 0 = frozen image
	xminCTS atomic.Int64 // writer's commit TS; 0 = uncommitted
	xmaxTxn atomic.Int64 // deleter; 0 = not deleted
	xmaxCTS atomic.Int64 // deleter's commit TS; 0 = uncommitted
	prev    atomic.Pointer[PrevImage]

	// stale accumulates old-key index entries of this row, unlinked at
	// freeze/reap. Guarded by the owning TableVersions write lock.
	stale []StaleKey
}

// NewVersion returns an entry for a row whose newest image was written
// by writer (frozen when writer == 0).
func NewVersion(writer int64) *RowVersion {
	v := &RowVersion{}
	v.xminTxn.Store(writer)
	return v
}

// Xmin reports the newest image's writer and commit timestamp.
func (v *RowVersion) Xmin() (txnID, cts int64) { return v.xminTxn.Load(), v.xminCTS.Load() }

// Xmax reports the deleter and its commit timestamp.
func (v *RowVersion) Xmax() (txnID, cts int64) { return v.xmaxTxn.Load(), v.xmaxCTS.Load() }

// SetXmin records the newest image's writer (rollback and version
// maintenance; the caller holds the table's version write lock).
func (v *RowVersion) SetXmin(txnID, cts int64) {
	v.xminTxn.Store(txnID)
	v.xminCTS.Store(cts)
}

// SetXmax records (or clears, with zeros) the deleter.
func (v *RowVersion) SetXmax(txnID, cts int64) {
	v.xmaxTxn.Store(txnID)
	v.xmaxCTS.Store(cts)
}

// Prev returns the prior-image chain head.
func (v *RowVersion) Prev() *PrevImage { return v.prev.Load() }

// PushPrev chains a prior image ahead of the existing chain.
func (v *RowVersion) PushPrev(p *PrevImage) {
	p.Prev = v.prev.Load()
	v.prev.Store(p)
}

// PopPrev unchains and returns the newest prior image.
func (v *RowVersion) PopPrev() *PrevImage {
	p := v.prev.Load()
	if p != nil {
		v.prev.Store(p.Prev)
	}
	return p
}

// AddStale records an obsolete index entry for GC (caller holds the
// table's version write lock).
func (v *RowVersion) AddStale(index string, key datum.Row) {
	v.stale = append(v.stale, StaleKey{Index: index, Key: key})
}

// TakeStale removes and returns the obsolete-entry list (caller holds
// the table's version write lock).
func (v *RowVersion) TakeStale() []StaleKey {
	s := v.stale
	v.stale = nil
	return s
}

// DropStale removes recorded stale keys for one index entry (rollback
// of a key-changing update; caller holds the version write lock).
func (v *RowVersion) DropStale(index string, key datum.Row) {
	for i := len(v.stale) - 1; i >= 0; i-- {
		s := v.stale[i]
		if s.Index == index && storage.CompareKeys(s.Key, key) == 0 {
			v.stale = append(v.stale[:i], v.stale[i+1:]...)
			return
		}
	}
}

// stamp writes the commit timestamp into whichever side(s) the
// committing transaction owns. Called under the manager's commitMu.
func (v *RowVersion) stamp(txnID, cts int64) {
	if v.xminTxn.Load() == txnID && v.xminCTS.Load() == 0 {
		v.xminCTS.Store(cts)
	}
	if v.xmaxTxn.Load() == txnID && v.xmaxCTS.Load() == 0 {
		v.xmaxCTS.Store(cts)
	}
}

// visibleStamp reports whether an image stamped (writer, cts) is
// visible to snap.
func visibleStamp(writer, cts int64, snap Snapshot) bool {
	if writer == 0 {
		return true // frozen
	}
	if writer == snap.Own {
		return true // own write
	}
	return cts != 0 && cts <= snap.TS
}

// Visible resolves which image of the row, whose newest physical image
// is cur, snap sees: cur itself, a prior image from the chain, or
// nothing (row not yet born, or already dead, for this snapshot).
func (v *RowVersion) Visible(snap Snapshot, cur datum.Row) (datum.Row, bool) {
	xt, xc := v.Xmin()
	if visibleStamp(xt, xc, snap) {
		// Newest image visible; the row is gone only if its deletion is
		// also visible.
		dt, dc := v.Xmax()
		if dt != 0 && visibleStamp(dt, dc, snap) {
			return nil, false
		}
		return cur, true
	}
	// Walk back to the newest prior image the snapshot can see. A
	// deletion can only be newer than the newest image, so any visible
	// prior image is alive for this snapshot.
	for p := v.Prev(); p != nil; p = p.Prev {
		if p.XminCTS != 0 && p.XminCTS <= snap.TS || p.XminCTS == 0 {
			return p.Row, true
		}
	}
	return nil, false
}

// TableVersions is one table's side version map plus its DML/DDL
// coordination locks. It is shared by every catalog generation's clone
// of the table, so versions survive copy-on-write DDL.
type TableVersions struct {
	count atomic.Int64

	mu sync.RWMutex
	m  map[storage.RID]*RowVersion

	// ddlMu coordinates row writes with index backfill: every DML
	// mutation holds it shared for the mutation's duration, and
	// CREATE INDEX holds it exclusively across its scan-and-backfill so
	// the new attachment misses no concurrent write. Readers never
	// touch it.
	ddlMu sync.RWMutex
}

// NewTableVersions returns an empty version map.
func NewTableVersions() *TableVersions {
	return &TableVersions{m: map[storage.RID]*RowVersion{}}
}

// Count reports the number of unfrozen row versions. A zero count
// under ReadLock (or the happens-before argument at the top of this
// file, for lock-free readers) means every physical row is frozen.
func (tv *TableVersions) Count() int64 { return tv.count.Load() }

// ReadLock takes the version map shared; a batch scan holds it across
// the batch fill so no writer can slip an unfrozen row into the batch
// after Count was checked.
func (tv *TableVersions) ReadLock() { tv.mu.RLock() }

// ReadUnlock releases ReadLock.
func (tv *TableVersions) ReadUnlock() { tv.mu.RUnlock() }

// Lookup returns the version entry for rid, nil when the row is
// frozen. Callers either hold ReadLock or accept the entry state as of
// the lookup.
func (tv *TableVersions) Lookup(rid storage.RID) *RowVersion {
	if tv.count.Load() == 0 {
		return nil
	}
	tv.mu.RLock()
	v := tv.m[rid]
	tv.mu.RUnlock()
	return v
}

// LookupLocked is Lookup under a held ReadLock/WriteLock.
func (tv *TableVersions) LookupLocked(rid storage.RID) *RowVersion { return tv.m[rid] }

// WriteLock takes the version map exclusively: version registration
// and the physical row write it covers happen inside it, keeping the
// count fast path sound.
func (tv *TableVersions) WriteLock() { tv.mu.Lock() }

// WriteUnlock releases WriteLock.
func (tv *TableVersions) WriteUnlock() { tv.mu.Unlock() }

// AddCount adjusts the unfrozen-version count. Writers add before the
// physical write; GC subtracts after freezing or reaping.
func (tv *TableVersions) AddCount(d int64) { tv.count.Add(d) }

// PutLocked registers a version entry (caller holds WriteLock and has
// already accounted the count).
func (tv *TableVersions) PutLocked(rid storage.RID, v *RowVersion) { tv.m[rid] = v }

// RemoveLocked unregisters a version entry (caller holds WriteLock and
// adjusts the count itself).
func (tv *TableVersions) RemoveLocked(rid storage.RID) { delete(tv.m, rid) }

// BeginWrite/EndWrite bracket one DML mutation for index-backfill
// coordination (shared side of ddlMu).
func (tv *TableVersions) BeginWrite() { tv.ddlMu.RLock() }

// EndWrite releases BeginWrite.
func (tv *TableVersions) EndWrite() { tv.ddlMu.RUnlock() }

// QuiesceWrites blocks until no DML mutation is in flight and holds
// new ones out: the CREATE INDEX backfill bracket.
func (tv *TableVersions) QuiesceWrites() { tv.ddlMu.Lock() }

// ResumeWrites releases QuiesceWrites.
func (tv *TableVersions) ResumeWrites() { tv.ddlMu.Unlock() }

// Resolve returns the image of the row at rid visible to snap, given
// the newest physical image cur. A nil tv (system/virtual tables)
// means no versioning: cur is visible.
func Resolve(tv *TableVersions, rid storage.RID, cur datum.Row, snap Snapshot) (datum.Row, bool) {
	if tv == nil {
		return cur, true
	}
	v := tv.Lookup(rid)
	if v == nil {
		return cur, true
	}
	return v.Visible(snap, cur)
}
