package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datum"
)

func boundCol(slot int, typ datum.TypeID) *Col {
	return &Col{QID: -1, Slot: slot, Typ: typ, Name: "c"}
}

func evalOK(t *testing.T, e Expr, row datum.Row) datum.Value {
	t.Helper()
	v, err := e.Eval(nil, row)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestConstParamCol(t *testing.T) {
	if v := evalOK(t, NewConst(datum.NewInt(7)), nil); v.Int() != 7 {
		t.Error("const")
	}
	p := &Param{Name: "x", Typ: datum.TInt}
	ctx := &Context{Params: map[string]datum.Value{"x": datum.NewInt(9)}}
	if v, err := p.Eval(ctx, nil); err != nil || v.Int() != 9 {
		t.Error("param")
	}
	if _, err := p.Eval(&Context{}, nil); err == nil {
		t.Error("unbound param must error")
	}
	if _, err := p.Eval(nil, nil); err == nil {
		t.Error("nil ctx param must error")
	}
	c := boundCol(1, datum.TString)
	if v := evalOK(t, c, datum.Row{datum.NewInt(1), datum.NewString("hi")}); v.Str() != "hi" {
		t.Error("col")
	}
	if _, err := NewCol(0, 0, "x", datum.TInt).Eval(nil, datum.Row{}); err == nil {
		t.Error("unbound col must error")
	}
	if _, err := boundCol(5, datum.TInt).Eval(nil, datum.Row{datum.Null}); err == nil {
		t.Error("out-of-range slot must error")
	}
}

func TestArith(t *testing.T) {
	two, three := NewConst(datum.NewInt(2)), NewConst(datum.NewInt(3))
	cases := []struct {
		op   BinOp
		want int64
	}{{OpAdd, 5}, {OpSub, -1}, {OpMul, 6}, {OpDiv, 0}, {OpMod, 2}}
	for _, tc := range cases {
		e := &Arith{Op: tc.op, L: two, R: three}
		if v := evalOK(t, e, nil); v.Int() != tc.want {
			t.Errorf("%s: got %v want %d", e, v, tc.want)
		}
	}
	if (&Arith{Op: OpAdd, L: two, R: NewConst(datum.NewFloat(0.5))}).Type() != datum.TFloat {
		t.Error("int+float types as float")
	}
	if (&Arith{Op: OpAdd, L: two, R: three}).Type() != datum.TInt {
		t.Error("int+int types as int")
	}
	if v := evalOK(t, &Neg{E: two}, nil); v.Int() != -2 {
		t.Error("neg")
	}
}

func TestCmpThreeValued(t *testing.T) {
	one, two := NewConst(datum.NewInt(1)), NewConst(datum.NewInt(2))
	null := NewConst(datum.Null)
	if v := evalOK(t, &Cmp{Op: OpLt, L: one, R: two}, nil); !v.Bool() {
		t.Error("1 < 2")
	}
	if v := evalOK(t, &Cmp{Op: OpEq, L: one, R: null}, nil); !v.IsNull() {
		t.Error("1 = NULL is UNKNOWN")
	}
	if _, err := (&Cmp{Op: OpEq, L: one, R: NewConst(datum.NewString("x"))}).Eval(nil, nil); err == nil {
		t.Error("incomparable types must error")
	}
	for _, op := range []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive for %s", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("Flip not involutive for %s", op)
		}
	}
}

func TestCmpNegateFlipSemantics(t *testing.T) {
	f := func(a, b int8) bool {
		av, bv := datum.NewInt(int64(a)), datum.NewInt(int64(b))
		for _, op := range []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
			r1, _ := EvalCmp(op, av, bv)
			r2, _ := EvalCmp(op.Negate(), av, bv)
			if r1.Bool() == r2.Bool() {
				return false
			}
			r3, _ := EvalCmp(op.Flip(), bv, av)
			if r1.Bool() != r3.Bool() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogicShortCircuit(t *testing.T) {
	tr := NewConst(datum.NewBool(true))
	fa := NewConst(datum.NewBool(false))
	nl := NewConst(datum.Null)
	boom := &Func{Name: "BOOM", Fn: &ScalarFunc{
		Name: "BOOM", ReturnType: fixedReturn(datum.TBool),
		Eval: func([]datum.Value) (datum.Value, error) { t.Fatal("must not evaluate"); return datum.Null, nil },
	}}
	// FALSE AND boom short-circuits; TRUE OR boom short-circuits.
	if v := evalOK(t, &And{L: fa, R: boom}, nil); v.Bool() {
		t.Error("false AND x")
	}
	if v := evalOK(t, &Or{L: tr, R: boom}, nil); !v.Bool() {
		t.Error("true OR x")
	}
	if v := evalOK(t, &And{L: nl, R: fa}, nil); v.Bool() {
		t.Error("NULL AND false = false")
	}
	if v := evalOK(t, &And{L: nl, R: tr}, nil); !v.IsNull() {
		t.Error("NULL AND true = UNKNOWN")
	}
	if v := evalOK(t, &Or{L: nl, R: fa}, nil); !v.IsNull() {
		t.Error("NULL OR false = UNKNOWN")
	}
	if v := evalOK(t, &Not{E: nl}, nil); !v.IsNull() {
		t.Error("NOT NULL = UNKNOWN")
	}
	if v := evalOK(t, &Not{E: fa}, nil); !v.Bool() {
		t.Error("NOT false")
	}
}

func TestIsNull(t *testing.T) {
	if v := evalOK(t, &IsNull{E: NewConst(datum.Null)}, nil); !v.Bool() {
		t.Error("NULL IS NULL")
	}
	if v := evalOK(t, &IsNull{E: NewConst(datum.NewInt(1)), Negated: true}, nil); !v.Bool() {
		t.Error("1 IS NOT NULL")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%lo", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "%b%", true},
		{"aXbXc", "a%b%c", true},
		{"CPU", "cpu", false},
		{"mississippi", "m%iss%ppi", true},
		{"abcde", "%%%e", true},
	}
	for _, tc := range cases {
		e := &Like{E: NewConst(datum.NewString(tc.s)), Pattern: NewConst(datum.NewString(tc.p))}
		if v := evalOK(t, e, nil); v.Bool() != tc.want {
			t.Errorf("%q LIKE %q = %v, want %v", tc.s, tc.p, v.Bool(), tc.want)
		}
	}
	e := &Like{E: NewConst(datum.Null), Pattern: NewConst(datum.NewString("%"))}
	if v := evalOK(t, e, nil); !v.IsNull() {
		t.Error("NULL LIKE is UNKNOWN")
	}
	e = &Like{E: NewConst(datum.NewString("a")), Pattern: NewConst(datum.NewString("b")), Negated: true}
	if v := evalOK(t, e, nil); !v.Bool() {
		t.Error("NOT LIKE")
	}
}

func TestInList(t *testing.T) {
	in := &InList{
		E:    NewConst(datum.NewInt(2)),
		List: []Expr{NewConst(datum.NewInt(1)), NewConst(datum.NewInt(2))},
	}
	if v := evalOK(t, in, nil); !v.Bool() {
		t.Error("2 IN (1,2)")
	}
	notIn := &InList{
		E:       NewConst(datum.NewInt(3)),
		List:    []Expr{NewConst(datum.NewInt(1))},
		Negated: true,
	}
	if v := evalOK(t, notIn, nil); !v.Bool() {
		t.Error("3 NOT IN (1)")
	}
	// NULL semantics: 3 IN (1, NULL) is UNKNOWN.
	unk := &InList{
		E:    NewConst(datum.NewInt(3)),
		List: []Expr{NewConst(datum.NewInt(1)), NewConst(datum.Null)},
	}
	if v := evalOK(t, unk, nil); !v.IsNull() {
		t.Error("3 IN (1, NULL) is UNKNOWN")
	}
}

func TestCase(t *testing.T) {
	c := &Case{
		Whens: []When{
			{Cond: &Cmp{Op: OpLt, L: boundCol(0, datum.TInt), R: NewConst(datum.NewInt(10))},
				Result: NewConst(datum.NewString("small"))},
			{Cond: &Cmp{Op: OpLt, L: boundCol(0, datum.TInt), R: NewConst(datum.NewInt(100))},
				Result: NewConst(datum.NewString("medium"))},
		},
		Else: NewConst(datum.NewString("large")),
	}
	for in, want := range map[int64]string{5: "small", 50: "medium", 500: "large"} {
		if v := evalOK(t, c, datum.Row{datum.NewInt(in)}); v.Str() != want {
			t.Errorf("CASE(%d) = %v, want %s", in, v, want)
		}
	}
	noElse := &Case{Whens: []When{{Cond: NewConst(datum.NewBool(false)), Result: NewConst(datum.NewInt(1))}}}
	if v := evalOK(t, noElse, nil); !v.IsNull() {
		t.Error("CASE without ELSE yields NULL")
	}
	if c.Type() != datum.TString {
		t.Error("CASE type from first arm")
	}
}

func TestScalarFuncs(t *testing.T) {
	reg := NewRegistry()
	call := func(name string, args ...datum.Value) datum.Value {
		t.Helper()
		exprs := make([]Expr, len(args))
		for i, a := range args {
			exprs[i] = NewConst(a)
		}
		f, err := NewFunc(reg, name, exprs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return evalOK(t, f, nil)
	}
	if call("ABS", datum.NewInt(-4)).Int() != 4 {
		t.Error("ABS int")
	}
	if call("ABS", datum.NewFloat(-1.5)).Float() != 1.5 {
		t.Error("ABS float")
	}
	if call("LENGTH", datum.NewString("abc")).Int() != 3 {
		t.Error("LENGTH")
	}
	if call("UPPER", datum.NewString("cpu")).Str() != "CPU" {
		t.Error("UPPER")
	}
	if call("LOWER", datum.NewString("CPU")).Str() != "cpu" {
		t.Error("LOWER")
	}
	if call("SUBSTR", datum.NewString("starburst"), datum.NewInt(5)).Str() != "burst" {
		t.Error("SUBSTR 2-arg")
	}
	if call("SUBSTR", datum.NewString("starburst"), datum.NewInt(1), datum.NewInt(4)).Str() != "star" {
		t.Error("SUBSTR 3-arg")
	}
	if call("SUBSTR", datum.NewString("ab"), datum.NewInt(9)).Str() != "" {
		t.Error("SUBSTR out of range clamps")
	}
	if call("CONCAT", datum.NewString("a"), datum.NewString("b"), datum.NewString("c")).Str() != "abc" {
		t.Error("CONCAT")
	}
	if call("SQRT", datum.NewInt(9)).Float() != 3 {
		t.Error("SQRT")
	}
	if call("COALESCE", datum.Null, datum.NewInt(5)).Int() != 5 {
		t.Error("COALESCE")
	}
	if !call("UPPER", datum.Null).IsNull() {
		t.Error("strict NULL propagation")
	}
	// Errors.
	if _, err := NewFunc(reg, "NO_SUCH_FN", nil); err == nil {
		t.Error("unknown function")
	}
	if _, err := NewFunc(reg, "ABS", nil); err == nil {
		t.Error("arity check")
	}
	if _, err := NewFunc(reg, "ABS", []Expr{NewConst(datum.NewString("x"))}); err == nil {
		t.Error("type check")
	}
}

func TestDBCScalarFuncRegistration(t *testing.T) {
	// The paper's example: Area(Width, Length).
	reg := NewRegistry()
	err := reg.RegisterScalar(&ScalarFunc{
		Name: "AREA", MinArgs: 2, MaxArgs: 2,
		ReturnType: numericReturn,
		Eval: strict(func(a []datum.Value) (datum.Value, error) {
			return datum.Mul(a[0], a[1])
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFunc(reg, "area", []Expr{NewConst(datum.NewInt(3)), NewConst(datum.NewInt(4))})
	if err != nil {
		t.Fatal(err)
	}
	if v := evalOK(t, f, nil); v.Int() != 12 {
		t.Errorf("AREA(3,4) = %v", v)
	}
	if err := reg.RegisterScalar(&ScalarFunc{Name: ""}); err == nil {
		t.Error("invalid registration must fail")
	}
}

func TestAggregates(t *testing.T) {
	reg := NewRegistry()
	run := func(name string, vals ...datum.Value) datum.Value {
		t.Helper()
		agg := reg.Aggregate(name)
		if agg == nil {
			t.Fatalf("missing aggregate %s", name)
		}
		st := agg.NewState()
		for _, v := range vals {
			if err := st.Add(v); err != nil {
				t.Fatal(err)
			}
		}
		return st.Result()
	}
	ints := []datum.Value{datum.NewInt(1), datum.NewInt(2), datum.Null, datum.NewInt(3)}
	if run("COUNT", ints...).Int() != 3 {
		t.Error("COUNT skips NULLs")
	}
	if run("SUM", ints...).Int() != 6 {
		t.Error("SUM")
	}
	if run("AVG", ints...).Float() != 2 {
		t.Error("AVG")
	}
	if run("MIN", ints...).Int() != 1 {
		t.Error("MIN")
	}
	if run("MAX", ints...).Int() != 3 {
		t.Error("MAX")
	}
	if run("SUM", datum.NewInt(1), datum.NewFloat(0.5)).Float() != 1.5 {
		t.Error("SUM promotes to float")
	}
	if !run("SUM").IsNull() || !run("MIN").IsNull() || !run("AVG").IsNull() {
		t.Error("empty SUM/MIN/AVG are NULL")
	}
	if run("COUNT").Int() != 0 {
		t.Error("empty COUNT is 0")
	}
	if run("MIN", datum.NewString("b"), datum.NewString("a")).Str() != "a" {
		t.Error("MIN strings")
	}
}

func TestDBCAggregateStdDev(t *testing.T) {
	// The paper's example: StandardDeviation(Salary).
	reg := NewRegistry()
	type sd struct {
		n          int64
		sum, sumSq float64
	}
	err := reg.RegisterAggregate(&AggregateFunc{
		Name: "STDDEV", EmptyIsNull: true,
		ReturnType: func(datum.TypeID) (datum.TypeID, error) { return datum.TFloat, nil },
		NewState: func() AggState {
			return &funcAggState{
				add: func(st any, v datum.Value) {
					s := st.(*sd)
					if !v.IsNull() {
						s.n++
						s.sum += v.Float()
						s.sumSq += v.Float() * v.Float()
					}
				},
				result: func(st any) datum.Value {
					s := st.(*sd)
					if s.n == 0 {
						return datum.Null
					}
					mean := s.sum / float64(s.n)
					return datum.NewFloat(s.sumSq/float64(s.n) - mean*mean)
				},
				st: &sd{},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := reg.Aggregate("StdDev").NewState()
	for _, v := range []int64{2, 4, 4, 4, 5, 5, 7, 9} {
		st.Add(datum.NewInt(v))
	}
	if got := st.Result().Float(); got != 4 { // variance of the classic example
		t.Errorf("variance = %v, want 4", got)
	}
}

// funcAggState adapts closures to AggState for test-local aggregates.
type funcAggState struct {
	add    func(any, datum.Value)
	result func(any) datum.Value
	st     any
}

func (f *funcAggState) Add(v datum.Value) error { f.add(f.st, v); return nil }
func (f *funcAggState) Result() datum.Value     { return f.result(f.st) }

func TestSetPredicates(t *testing.T) {
	reg := NewRegistry()
	run := func(name string, ts ...datum.Tristate) datum.Tristate {
		t.Helper()
		sp := reg.SetPredicate(name)
		if sp == nil {
			t.Fatalf("missing set predicate %s", name)
		}
		st := sp.NewState()
		for _, v := range ts {
			st.Add(v)
		}
		return st.Result()
	}
	if run("ALL") != datum.True {
		t.Error("ALL over empty set is TRUE")
	}
	if run("ANY") != datum.False {
		t.Error("ANY over empty set is FALSE")
	}
	if run("ALL", datum.True, datum.False) != datum.False {
		t.Error("ALL with a FALSE")
	}
	if run("ALL", datum.True, datum.Unknown) != datum.Unknown {
		t.Error("ALL with UNKNOWN")
	}
	if run("ANY", datum.False, datum.True) != datum.True {
		t.Error("ANY with a TRUE")
	}
	if run("SOME", datum.False, datum.True) != datum.True {
		t.Error("SOME = ANY")
	}
	// Early termination.
	st := reg.SetPredicate("ANY").NewState()
	st.Add(datum.True)
	if !st.Decided() {
		t.Error("ANY decided after TRUE")
	}
	st = reg.SetPredicate("ALL").NewState()
	st.Add(datum.False)
	if !st.Decided() {
		t.Error("ALL decided after FALSE")
	}
}

func TestMajoritySetPredicateExtension(t *testing.T) {
	// E18: the paper's own DBC extension example — MAJORITY returns
	// true iff the predicate holds for the majority of set elements.
	reg := NewRegistry()
	type maj struct{ yes, total int }
	err := reg.RegisterSetPredicate(&SetPredicateFunc{
		Name: "MAJORITY",
		NewState: func() SetPredState {
			return &majState{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = maj{}
	st := reg.SetPredicate("MAJORITY").NewState()
	for _, v := range []datum.Tristate{datum.True, datum.True, datum.False} {
		st.Add(v)
	}
	if st.Result() != datum.True {
		t.Error("2 of 3 is a majority")
	}
	st = reg.SetPredicate("MAJORITY").NewState()
	st.Add(datum.True)
	st.Add(datum.False)
	if st.Result() != datum.False {
		t.Error("1 of 2 is not a majority")
	}
	if reg.SetPredicate("majority") == nil {
		t.Error("lookup is case-insensitive")
	}
}

// majState implements the MAJORITY example.
type majState struct{ yes, total int }

func (m *majState) Add(t datum.Tristate) {
	m.total++
	if t == datum.True {
		m.yes++
	}
}
func (m *majState) Result() datum.Tristate {
	if m.yes*2 > m.total {
		return datum.True
	}
	return datum.False
}
func (m *majState) Decided() bool { return false }

func TestTableFuncSample(t *testing.T) {
	// E19: SAMPLE(table, int) produces int rows of table.
	reg := NewRegistry()
	err := reg.RegisterTableFunc(&TableFunc{
		Name: "SAMPLE", NumTables: 1, NumScalars: 1,
		OutputCols: func(in [][]ColumnDef, _ []datum.Value) ([]ColumnDef, error) {
			return in[0], nil
		},
		Eval: func(in []*Relation, scalars []datum.Value) (*Relation, error) {
			n := int(scalars[0].Int())
			if n > len(in[0].Rows) {
				n = len(in[0].Rows)
			}
			return &Relation{Cols: in[0].Cols, Rows: in[0].Rows[:n]}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	input := &Relation{
		Cols: []ColumnDef{{Name: "X", Type: datum.TInt}},
		Rows: []datum.Row{{datum.NewInt(1)}, {datum.NewInt(2)}, {datum.NewInt(3)}},
	}
	tf := reg.Table("sample")
	out, err := tf.Eval([]*Relation{input}, []datum.Value{datum.NewInt(2)})
	if err != nil || len(out.Rows) != 2 {
		t.Fatalf("SAMPLE: %v rows=%d", err, len(out.Rows))
	}
	out, _ = tf.Eval([]*Relation{input}, []datum.Value{datum.NewInt(99)})
	if len(out.Rows) != 3 {
		t.Error("SAMPLE clamps to table size")
	}
}

func TestRegistryNames(t *testing.T) {
	reg := NewRegistry()
	names := reg.Names()
	if len(names) == 0 {
		t.Fatal("no builtins")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("names not sorted")
		}
	}
	has := func(n string) bool {
		for _, x := range names {
			if x == n {
				return true
			}
		}
		return false
	}
	for _, n := range []string{"ABS", "COUNT", "ALL", "ANY"} {
		if !has(n) {
			t.Errorf("missing builtin %s", n)
		}
	}
}

func TestWalkTransformCols(t *testing.T) {
	c1, c2 := NewCol(1, 0, "Q1.A", datum.TInt), NewCol(2, 1, "Q2.B", datum.TInt)
	e := &And{
		L: &Cmp{Op: OpEq, L: c1, R: c2},
		R: &Cmp{Op: OpGt, L: c1, R: NewConst(datum.NewInt(5))},
	}
	cols := Cols(e)
	if len(cols) != 3 {
		t.Fatalf("Cols = %d, want 3", len(cols))
	}
	qids := QIDs(e)
	if !qids[1] || !qids[2] || len(qids) != 2 {
		t.Errorf("QIDs = %v", qids)
	}
	// Count nodes via Walk.
	n := 0
	Walk(e, func(Expr) bool { n++; return true })
	if n != 7 {
		t.Errorf("Walk visited %d nodes, want 7", n)
	}
	// Early stop.
	n = 0
	Walk(e, func(Expr) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
	// Transform: replace Q2.B with a constant.
	e2 := SubstituteCols(e, func(c *Col) Expr {
		if c.QID == 2 {
			return NewConst(datum.NewInt(42))
		}
		return nil
	})
	if len(Cols(e2)) != 2 {
		t.Error("substitution did not replace column")
	}
	if strings.Contains(e2.String(), "Q2.B") {
		t.Errorf("substituted expr still mentions Q2.B: %s", e2)
	}
	// Original untouched.
	if len(Cols(e)) != 3 {
		t.Error("Transform must not mutate the original")
	}
}

func TestBind(t *testing.T) {
	c := NewCol(3, 1, "Q3.X", datum.TInt)
	e := &Cmp{Op: OpEq, L: c, R: NewConst(datum.NewInt(1))}
	bound, err := Bind(e, func(qid, ord int) int {
		if qid == 3 && ord == 1 {
			return 0
		}
		return -1
	})
	if err != nil {
		t.Fatal(err)
	}
	v := evalOK(t, bound, datum.Row{datum.NewInt(1)})
	if !v.Bool() {
		t.Error("bound expr evaluates")
	}
	if _, err := Bind(e, func(int, int) int { return -1 }); err == nil {
		t.Error("unresolvable bind must error")
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	a := NewConst(datum.NewBool(true))
	b := NewConst(datum.NewBool(false))
	c := NewConst(datum.Null)
	e := &And{L: &And{L: a, R: b}, R: c}
	if got := Conjuncts(e); len(got) != 3 {
		t.Errorf("Conjuncts = %d", len(got))
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil)")
	}
	re := AndAll([]Expr{a, b, c})
	if len(Conjuncts(re)) != 3 {
		t.Error("AndAll round trip")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil)")
	}
	o := &Or{L: a, R: &Or{L: b, R: c}}
	if got := Disjuncts(o); len(got) != 3 {
		t.Errorf("Disjuncts = %d", len(got))
	}
}

func TestSubplanExpr(t *testing.T) {
	s := &Subplan{Label: "subq", Typ: datum.TInt}
	if _, err := s.Eval(nil, nil); err == nil {
		t.Error("unrefined subplan must error")
	}
	s.Run = func(_ *Context, outer datum.Row) (datum.Value, error) {
		return datum.NewInt(outer[0].Int() * 2), nil
	}
	v, err := s.Eval(nil, datum.Row{datum.NewInt(21)})
	if err != nil || v.Int() != 42 {
		t.Errorf("subplan eval: %v %v", v, err)
	}
	pred := &Or{L: NewConst(datum.NewBool(false)), R: &Cmp{Op: OpEq, L: s, R: NewConst(datum.NewInt(42))}}
	if !HasSubplan(pred) {
		t.Error("HasSubplan must find nested subplan")
	}
	if HasSubplan(NewConst(datum.NewInt(1))) {
		t.Error("HasSubplan false positive")
	}
}

func TestEqualExprs(t *testing.T) {
	a := &Cmp{Op: OpEq, L: NewCol(1, 0, "Q1.A", datum.TInt), R: NewConst(datum.NewInt(5))}
	b := &Cmp{Op: OpEq, L: NewCol(1, 0, "Q1.A", datum.TInt), R: NewConst(datum.NewInt(5))}
	c := &Cmp{Op: OpEq, L: NewCol(1, 0, "Q1.A", datum.TInt), R: NewConst(datum.NewInt(6))}
	if !EqualExprs(a, b) || EqualExprs(a, c) || !EqualExprs(nil, nil) || EqualExprs(a, nil) {
		t.Error("EqualExprs wrong")
	}
}

func TestStringRendering(t *testing.T) {
	e := &And{
		L: &Cmp{Op: OpEq, L: NewCol(1, 0, "Q1.PARTNO", datum.TInt), R: NewCol(3, 0, "Q3.PARTNO", datum.TInt)},
		R: &Like{E: NewCol(3, 1, "Q3.TYPE", datum.TString), Pattern: NewConst(datum.NewString("CPU"))},
	}
	s := e.String()
	for _, want := range []string{"Q1.PARTNO = Q3.PARTNO", "LIKE", "'CPU'"} {
		if !strings.Contains(s, want) {
			t.Errorf("render %q missing %q", s, want)
		}
	}
}

// TestWithChildrenRoundTrip: for every node type, rebuilding with its
// own children yields an equivalent tree (the invariant Transform
// relies on).
func TestWithChildrenRoundTrip(t *testing.T) {
	c1 := NewCol(1, 0, "a", datum.TInt)
	c2 := NewCol(1, 1, "b", datum.TInt)
	one := NewConst(datum.NewInt(1))
	nodes := []Expr{
		one,
		&Param{Name: "p", Typ: datum.TInt},
		c1,
		&Arith{Op: OpAdd, L: c1, R: one},
		&Neg{E: c1},
		&Cmp{Op: OpLt, L: c1, R: c2},
		&And{L: &Cmp{Op: OpEq, L: c1, R: one}, R: &Cmp{Op: OpEq, L: c2, R: one}},
		&Or{L: &Cmp{Op: OpEq, L: c1, R: one}, R: &Cmp{Op: OpEq, L: c2, R: one}},
		&Not{E: &Cmp{Op: OpEq, L: c1, R: one}},
		&IsNull{E: c1, Negated: true},
		&Like{E: NewConst(datum.NewString("x")), Pattern: NewConst(datum.NewString("%")), Negated: true},
		&InList{E: c1, List: []Expr{one, c2}, Negated: true},
		&Case{Whens: []When{{Cond: &IsNull{E: c1}, Result: one}}, Else: c2},
		&Subplan{Label: "s", Typ: datum.TBool},
	}
	for _, n := range nodes {
		rebuilt := n.WithChildren(n.Children())
		if rebuilt.String() != n.String() {
			t.Errorf("%T: round trip %q != %q", n, rebuilt.String(), n.String())
		}
		if rebuilt.Type() != n.Type() {
			t.Errorf("%T: type changed", n)
		}
	}
	// Transform with identity must preserve rendering.
	for _, n := range nodes {
		if got := Transform(n, func(e Expr) Expr { return e }); got.String() != n.String() {
			t.Errorf("%T: identity transform changed tree", n)
		}
	}
}
