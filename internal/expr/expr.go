// Package expr implements scalar expressions and predicates for the
// Starburst reproduction, together with the four kinds of externally
// defined functions from section 2 of the paper: scalar functions,
// aggregate functions, set predicate functions (ALL/ANY/MAJORITY) and
// table functions.
//
// Expression trees are shared between the Query Graph Model (where
// column references name quantifier columns) and the Query Evaluation
// System (where a Bind pass maps references to slots in the composite
// tuple flowing through the operator stream).
package expr

import (
	"fmt"
	"strings"

	"repro/internal/datum"
)

// Expr is a scalar expression node. Implementations are immutable;
// rewrites build new trees via Transform.
type Expr interface {
	// Eval evaluates the expression against a flat row. Column
	// references must have been bound to slots first (see Bind).
	Eval(ctx *Context, row datum.Row) (datum.Value, error)
	// Type reports the statically determined result type.
	Type() datum.TypeID
	// String renders the expression for EXPLAIN and QGM dumps.
	String() string
	// Children returns the direct sub-expressions.
	Children() []Expr
	// WithChildren builds a copy with replaced sub-expressions. The
	// slice must have the same length as Children().
	WithChildren(ch []Expr) Expr
}

// Context carries per-execution state for expression evaluation, most
// importantly the evaluate-on-demand subquery handles (section 7).
type Context struct {
	// Params are host-language variables referenced by ParamExpr.
	Params map[string]datum.Value
	// Corr is the correlation vector: values of outer-query columns
	// visible to a subquery's plan, read by Col nodes bound with
	// Corr=true (evaluate-on-demand subqueries, section 7).
	Corr datum.Row
	// Exec carries the executor's context for Subplan closures (opaque
	// here to avoid an import cycle; the QES owns its concrete type).
	Exec any
}

// ---------------------------------------------------------------------
// Constants and parameters

// Const is a literal value.
type Const struct {
	Val datum.Value
}

// NewConst wraps a datum in a constant expression.
func NewConst(v datum.Value) *Const { return &Const{Val: v} }

func (c *Const) Eval(*Context, datum.Row) (datum.Value, error) { return c.Val, nil }
func (c *Const) Type() datum.TypeID                            { return c.Val.Type() }
func (c *Const) String() string                                { return c.Val.String() }
func (c *Const) Children() []Expr                              { return nil }
func (c *Const) WithChildren(ch []Expr) Expr                   { return c }

// Param is a reference to a host-language variable (":name"), resolved
// from Context.Params at runtime. Table expressions may reference host
// variables (section 2), which views cannot.
type Param struct {
	Name string
	Typ  datum.TypeID
}

func (p *Param) Eval(ctx *Context, _ datum.Row) (datum.Value, error) {
	if ctx == nil || ctx.Params == nil {
		return datum.Null, fmt.Errorf("expr: unbound parameter :%s", p.Name)
	}
	v, ok := ctx.Params[p.Name]
	if !ok {
		return datum.Null, fmt.Errorf("expr: unbound parameter :%s", p.Name)
	}
	return v, nil
}
func (p *Param) Type() datum.TypeID          { return p.Typ }
func (p *Param) String() string              { return ":" + p.Name }
func (p *Param) Children() []Expr            { return nil }
func (p *Param) WithChildren(ch []Expr) Expr { return p }

// ---------------------------------------------------------------------
// Column references

// Col references a column of a quantifier (QGM phase) or a slot of the
// composite row (execution phase, after Bind).
type Col struct {
	// QID is the unique id of the QGM quantifier this column ranges
	// over; -1 for already-slot-bound columns.
	QID int
	// Ord is the column ordinal within the quantifier's table.
	Ord int
	// Slot is the flat offset in the composite execution row; -1 until
	// bound by plan refinement.
	Slot int
	// Corr marks columns bound into the correlation vector (read from
	// Context.Corr instead of the local row).
	Corr bool
	// Name is the display name ("Q1.PARTNO").
	Name string
	Typ  datum.TypeID
}

// NewCol builds an unbound column reference.
func NewCol(qid, ord int, name string, typ datum.TypeID) *Col {
	return &Col{QID: qid, Ord: ord, Slot: -1, Name: name, Typ: typ}
}

func (c *Col) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	if c.Corr {
		if ctx == nil || c.Slot < 0 || c.Slot >= len(ctx.Corr) {
			return datum.Null, fmt.Errorf("expr: correlated column %s has no correlation value", c.Name)
		}
		return ctx.Corr[c.Slot], nil
	}
	if c.Slot < 0 {
		return datum.Null, fmt.Errorf("expr: unbound column %s (qid=%d ord=%d)", c.Name, c.QID, c.Ord)
	}
	if c.Slot >= len(row) {
		return datum.Null, fmt.Errorf("expr: column %s slot %d out of range (row width %d)", c.Name, c.Slot, len(row))
	}
	return row[c.Slot], nil
}
func (c *Col) Type() datum.TypeID { return c.Typ }
func (c *Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("q%d.#%d", c.QID, c.Ord)
}
func (c *Col) Children() []Expr            { return nil }
func (c *Col) WithChildren(ch []Expr) Expr { return c }

// ---------------------------------------------------------------------
// Arithmetic and comparison

// BinOp identifies an arithmetic operator.
type BinOp int

// Arithmetic operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op BinOp) String() string {
	return [...]string{"+", "-", "*", "/", "%"}[op]
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   BinOp
	L, R Expr
}

func (a *Arith) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	l, err := a.L.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	r, err := a.R.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	switch a.Op {
	case OpAdd:
		return datum.Add(l, r)
	case OpSub:
		return datum.Sub(l, r)
	case OpMul:
		return datum.Mul(l, r)
	case OpDiv:
		return datum.Div(l, r)
	case OpMod:
		return datum.Mod(l, r)
	}
	return datum.Null, fmt.Errorf("expr: unknown arith op %d", a.Op)
}

func (a *Arith) Type() datum.TypeID {
	lt, rt := a.L.Type(), a.R.Type()
	if lt == datum.TInt && rt == datum.TInt {
		return datum.TInt
	}
	if lt == datum.TString || rt == datum.TString {
		return datum.TString
	}
	return datum.TFloat
}
func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}
func (a *Arith) Children() []Expr { return []Expr{a.L, a.R} }
func (a *Arith) WithChildren(ch []Expr) Expr {
	return &Arith{Op: a.Op, L: ch[0], R: ch[1]}
}

// Neg is unary minus.
type Neg struct{ E Expr }

func (n *Neg) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	v, err := n.E.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	return datum.Neg(v)
}
func (n *Neg) Type() datum.TypeID          { return n.E.Type() }
func (n *Neg) String() string              { return "-" + n.E.String() }
func (n *Neg) Children() []Expr            { return []Expr{n.E} }
func (n *Neg) WithChildren(ch []Expr) Expr { return &Neg{E: ch[0]} }

// CmpOp identifies a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Negate returns the complement operator (= becomes <>, < becomes >=).
func (op CmpOp) Negate() CmpOp {
	return [...]CmpOp{OpNe, OpEq, OpGe, OpGt, OpLe, OpLt}[op]
}

// Flip returns the operator with operands swapped (< becomes >).
func (op CmpOp) Flip() CmpOp {
	return [...]CmpOp{OpEq, OpNe, OpGt, OpGe, OpLt, OpLe}[op]
}

// Cmp is a comparison predicate. Its result is a BOOL datum or NULL
// (UNKNOWN) when an operand is NULL.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (c *Cmp) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	l, err := c.L.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	r, err := c.R.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	return EvalCmp(c.Op, l, r)
}

// EvalCmp applies a comparison operator to two datums with SQL
// three-valued semantics.
func EvalCmp(op CmpOp, l, r datum.Value) (datum.Value, error) {
	cmp, ok := datum.Compare(l, r)
	if !ok {
		if l.IsNull() || r.IsNull() {
			return datum.Null, nil
		}
		return datum.Null, fmt.Errorf("expr: cannot compare %s with %s",
			datum.TypeName(l.Type()), datum.TypeName(r.Type()))
	}
	var res bool
	switch op {
	case OpEq:
		res = cmp == 0
	case OpNe:
		res = cmp != 0
	case OpLt:
		res = cmp < 0
	case OpLe:
		res = cmp <= 0
	case OpGt:
		res = cmp > 0
	case OpGe:
		res = cmp >= 0
	}
	return datum.NewBool(res), nil
}

func (c *Cmp) Type() datum.TypeID { return datum.TBool }
func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}
func (c *Cmp) Children() []Expr { return []Expr{c.L, c.R} }
func (c *Cmp) WithChildren(ch []Expr) Expr {
	return &Cmp{Op: c.Op, L: ch[0], R: ch[1]}
}

// ---------------------------------------------------------------------
// Boolean connectives

// And is conjunction under Kleene logic.
type And struct{ L, R Expr }

func (a *And) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	l, err := a.L.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	lt := datum.TristateOf(l)
	if lt == datum.False {
		return datum.NewBool(false), nil
	}
	r, err := a.R.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	return lt.And(datum.TristateOf(r)).Datum(), nil
}
func (a *And) Type() datum.TypeID          { return datum.TBool }
func (a *And) String() string              { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }
func (a *And) Children() []Expr            { return []Expr{a.L, a.R} }
func (a *And) WithChildren(ch []Expr) Expr { return &And{L: ch[0], R: ch[1]} }

// Or is disjunction under Kleene logic.
type Or struct{ L, R Expr }

func (o *Or) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	l, err := o.L.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	lt := datum.TristateOf(l)
	if lt == datum.True {
		return datum.NewBool(true), nil
	}
	r, err := o.R.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	return lt.Or(datum.TristateOf(r)).Datum(), nil
}
func (o *Or) Type() datum.TypeID          { return datum.TBool }
func (o *Or) String() string              { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }
func (o *Or) Children() []Expr            { return []Expr{o.L, o.R} }
func (o *Or) WithChildren(ch []Expr) Expr { return &Or{L: ch[0], R: ch[1]} }

// Not is negation under Kleene logic.
type Not struct{ E Expr }

func (n *Not) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	v, err := n.E.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	return datum.TristateOf(v).Not().Datum(), nil
}
func (n *Not) Type() datum.TypeID          { return datum.TBool }
func (n *Not) String() string              { return fmt.Sprintf("NOT (%s)", n.E) }
func (n *Not) Children() []Expr            { return []Expr{n.E} }
func (n *Not) WithChildren(ch []Expr) Expr { return &Not{E: ch[0]} }

// IsNull tests for SQL NULL; with Negated it is IS NOT NULL. Unlike
// comparisons it never yields UNKNOWN.
type IsNull struct {
	E       Expr
	Negated bool
}

func (i *IsNull) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	v, err := i.E.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	return datum.NewBool(v.IsNull() != i.Negated), nil
}
func (i *IsNull) Type() datum.TypeID { return datum.TBool }
func (i *IsNull) String() string {
	if i.Negated {
		return fmt.Sprintf("%s IS NOT NULL", i.E)
	}
	return fmt.Sprintf("%s IS NULL", i.E)
}
func (i *IsNull) Children() []Expr { return []Expr{i.E} }
func (i *IsNull) WithChildren(ch []Expr) Expr {
	return &IsNull{E: ch[0], Negated: i.Negated}
}

// ---------------------------------------------------------------------
// LIKE, IN-list, CASE

// Like is the SQL LIKE predicate with % and _ wildcards.
type Like struct {
	E, Pattern Expr
	Negated    bool
}

func (l *Like) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	v, err := l.E.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	p, err := l.Pattern.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	if v.IsNull() || p.IsNull() {
		return datum.Null, nil
	}
	if v.Type() != datum.TString || p.Type() != datum.TString {
		return datum.Null, fmt.Errorf("expr: LIKE requires strings")
	}
	m := likeMatch(v.Str(), p.Str())
	return datum.NewBool(m != l.Negated), nil
}

// likeMatch implements LIKE pattern matching via two-pointer
// backtracking over %.
func likeMatch(s, pat string) bool {
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

func (l *Like) Type() datum.TypeID { return datum.TBool }
func (l *Like) String() string {
	op := "LIKE"
	if l.Negated {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s %s", l.E, op, l.Pattern)
}
func (l *Like) Children() []Expr { return []Expr{l.E, l.Pattern} }
func (l *Like) WithChildren(ch []Expr) Expr {
	return &Like{E: ch[0], Pattern: ch[1], Negated: l.Negated}
}

// InList is "e IN (v1, v2, ...)" over an explicit value list. IN over a
// subquery is translated to a quantifier in QGM instead.
type InList struct {
	E       Expr
	List    []Expr
	Negated bool
}

func (in *InList) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	v, err := in.E.Eval(ctx, row)
	if err != nil {
		return datum.Null, err
	}
	res := datum.False
	for _, le := range in.List {
		lv, err := le.Eval(ctx, row)
		if err != nil {
			return datum.Null, err
		}
		eq, err := EvalCmp(OpEq, v, lv)
		if err != nil {
			return datum.Null, err
		}
		res = res.Or(datum.TristateOf(eq))
		if res == datum.True {
			break
		}
	}
	if in.Negated {
		res = res.Not()
	}
	return res.Datum(), nil
}
func (in *InList) Type() datum.TypeID { return datum.TBool }
func (in *InList) String() string {
	var parts []string
	for _, e := range in.List {
		parts = append(parts, e.String())
	}
	op := "IN"
	if in.Negated {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", in.E, op, strings.Join(parts, ", "))
}
func (in *InList) Children() []Expr {
	ch := make([]Expr, 0, len(in.List)+1)
	ch = append(ch, in.E)
	ch = append(ch, in.List...)
	return ch
}
func (in *InList) WithChildren(ch []Expr) Expr {
	return &InList{E: ch[0], List: ch[1:], Negated: in.Negated}
}

// When is one WHEN...THEN arm of a CASE expression.
type When struct {
	Cond, Result Expr
}

// Case is a searched CASE expression.
type Case struct {
	Whens []When
	Else  Expr // may be nil (NULL)
}

func (c *Case) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	for _, w := range c.Whens {
		cv, err := w.Cond.Eval(ctx, row)
		if err != nil {
			return datum.Null, err
		}
		if datum.TristateOf(cv) == datum.True {
			return w.Result.Eval(ctx, row)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(ctx, row)
	}
	return datum.Null, nil
}
func (c *Case) Type() datum.TypeID {
	if len(c.Whens) > 0 {
		return c.Whens[0].Result.Type()
	}
	if c.Else != nil {
		return c.Else.Type()
	}
	return datum.TNull
}
func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if c.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", c.Else)
	}
	b.WriteString(" END")
	return b.String()
}
func (c *Case) Children() []Expr {
	var ch []Expr
	for _, w := range c.Whens {
		ch = append(ch, w.Cond, w.Result)
	}
	if c.Else != nil {
		ch = append(ch, c.Else)
	}
	return ch
}
func (c *Case) WithChildren(ch []Expr) Expr {
	out := &Case{Whens: make([]When, len(c.Whens))}
	for i := range c.Whens {
		out.Whens[i] = When{Cond: ch[2*i], Result: ch[2*i+1]}
	}
	if c.Else != nil {
		out.Else = ch[len(ch)-1]
	}
	return out
}

// ---------------------------------------------------------------------
// Function calls and subplans

// Func is a call to a built-in or externally defined scalar function.
type Func struct {
	Name string
	Fn   *ScalarFunc
	Args []Expr
	typ  datum.TypeID
}

// NewFunc resolves and type-checks a scalar function call against a
// registry.
func NewFunc(reg *Registry, name string, args []Expr) (*Func, error) {
	fn := reg.Scalar(name)
	if fn == nil {
		return nil, fmt.Errorf("expr: unknown function %s", name)
	}
	if len(args) < fn.MinArgs || (fn.MaxArgs >= 0 && len(args) > fn.MaxArgs) {
		return nil, fmt.Errorf("expr: %s: wrong argument count %d", name, len(args))
	}
	argTypes := make([]datum.TypeID, len(args))
	for i, a := range args {
		argTypes[i] = a.Type()
	}
	rt, err := fn.ReturnType(argTypes)
	if err != nil {
		return nil, fmt.Errorf("expr: %s: %w", name, err)
	}
	return &Func{Name: name, Fn: fn, Args: args, typ: rt}, nil
}

func (f *Func) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	vals := make([]datum.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(ctx, row)
		if err != nil {
			return datum.Null, err
		}
		vals[i] = v
	}
	return f.Fn.Eval(vals)
}
func (f *Func) Type() datum.TypeID { return f.typ }
func (f *Func) String() string {
	var parts []string
	for _, a := range f.Args {
		parts = append(parts, a.String())
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}
func (f *Func) Children() []Expr { return f.Args }
func (f *Func) WithChildren(ch []Expr) Expr {
	return &Func{Name: f.Name, Fn: f.Fn, Args: ch, typ: f.typ}
}

// Subplan is a correlated scalar sub-computation left in an expression
// at execution time — used by the OR operator for OR-of-subquery
// predicates (section 7). Run is installed during plan refinement and
// implements evaluate-on-demand with correlation-value caching.
type Subplan struct {
	Label string
	Typ   datum.TypeID
	Run   func(ctx *Context, outer datum.Row) (datum.Value, error)
	// Aux carries phase-specific payload (e.g. the QGM box of the
	// deferred subquery) between translation and plan refinement.
	Aux any
}

func (s *Subplan) Eval(ctx *Context, row datum.Row) (datum.Value, error) {
	if s.Run == nil {
		return datum.Null, fmt.Errorf("expr: subplan %s not refined", s.Label)
	}
	return s.Run(ctx, row)
}
func (s *Subplan) Type() datum.TypeID          { return s.Typ }
func (s *Subplan) String() string              { return "(" + s.Label + ")" }
func (s *Subplan) Children() []Expr            { return nil }
func (s *Subplan) WithChildren(ch []Expr) Expr { return s }

// ---------------------------------------------------------------------
// Tree utilities

// Walk visits e and all descendants in preorder; it stops early when f
// returns false.
func Walk(e Expr, f func(Expr) bool) bool {
	if e == nil {
		return true
	}
	if !f(e) {
		return false
	}
	for _, c := range e.Children() {
		if !Walk(c, f) {
			return false
		}
	}
	return true
}

// Transform rebuilds the tree bottom-up, replacing each node with
// f(node-with-transformed-children).
func Transform(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	ch := e.Children()
	if len(ch) > 0 {
		nch := make([]Expr, len(ch))
		changed := false
		for i, c := range ch {
			nch[i] = Transform(c, f)
			if nch[i] != c {
				changed = true
			}
		}
		if changed {
			e = e.WithChildren(nch)
		}
	}
	return f(e)
}

// Cols returns every column reference in the tree.
func Cols(e Expr) []*Col {
	var out []*Col
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*Col); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// QIDs returns the set of quantifier ids referenced by the expression.
func QIDs(e Expr) map[int]bool {
	out := map[int]bool{}
	for _, c := range Cols(e) {
		out[c.QID] = true
	}
	return out
}

// Bind assigns execution slots to every column reference, producing a
// fresh tree. slotOf returns -1 for unknown columns, which Bind reports
// as an error.
func Bind(e Expr, slotOf func(qid, ord int) int) (Expr, error) {
	var bindErr error
	out := Transform(e, func(x Expr) Expr {
		c, ok := x.(*Col)
		if !ok {
			return x
		}
		s := slotOf(c.QID, c.Ord)
		if s < 0 {
			if bindErr == nil {
				bindErr = fmt.Errorf("expr: cannot bind column %s (qid=%d ord=%d)", c.Name, c.QID, c.Ord)
			}
			return x
		}
		return &Col{QID: -1, Ord: c.Ord, Slot: s, Name: c.Name, Typ: c.Typ}
	})
	return out, bindErr
}

// SubstituteCols replaces each column reference for which repl returns a
// non-nil expression. Used by view merging and predicate migration: a
// reference to a merged box's output column is replaced by the
// expression that computes it.
func SubstituteCols(e Expr, repl func(*Col) Expr) Expr {
	return Transform(e, func(x Expr) Expr {
		if c, ok := x.(*Col); ok {
			if r := repl(c); r != nil {
				return r
			}
		}
		return x
	})
}

// Conjuncts flattens a tree of ANDs into its conjunct list.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(*And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Expr{e}
}

// AndAll rebuilds a conjunction from a list (nil for an empty list).
func AndAll(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &And{L: out, R: e}
		}
	}
	return out
}

// Disjuncts flattens a tree of ORs into its disjunct list.
func Disjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if o, ok := e.(*Or); ok {
		return append(Disjuncts(o.L), Disjuncts(o.R)...)
	}
	return []Expr{e}
}

// EqualExprs reports structural equality of two expressions, used by
// rewrite rules to detect redundant predicates.
func EqualExprs(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.String() != b.String() {
		return false
	}
	return true
}

// HasSubplan reports whether the tree contains an unrefined or refined
// Subplan node; such predicates cannot be pushed into storage scans.
func HasSubplan(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if _, ok := x.(*Subplan); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
