package expr

import (
	"fmt"

	"repro/internal/datum"
)

// AggCall is an aggregate function application. It may appear only in
// the head of a QGM GROUP BY box; the grouping operator interprets it
// by folding Arg values of each group through the function's AggState.
// Direct evaluation is an error by construction.
type AggCall struct {
	Name string
	Fn   *AggregateFunc
	// Arg is the aggregated expression; nil for COUNT(*).
	Arg      Expr
	Star     bool
	Distinct bool
	typ      datum.TypeID
}

// NewAggCall resolves and type-checks an aggregate call.
func NewAggCall(reg *Registry, name string, arg Expr, star, distinct bool) (*AggCall, error) {
	fn := reg.Aggregate(name)
	if fn == nil {
		return nil, fmt.Errorf("expr: unknown aggregate %s", name)
	}
	if star && name != "COUNT" {
		return nil, fmt.Errorf("expr: %s(*) is not valid", name)
	}
	in := datum.TNull
	if arg != nil {
		in = arg.Type()
	}
	rt, err := fn.ReturnType(in)
	if err != nil {
		return nil, fmt.Errorf("expr: %s: %w", name, err)
	}
	return &AggCall{Name: name, Fn: fn, Arg: arg, Star: star, Distinct: distinct, typ: rt}, nil
}

// Eval reports an internal error: an AggCall surviving to expression
// evaluation means a rewrite or refinement bug.
func (a *AggCall) Eval(*Context, datum.Row) (datum.Value, error) {
	return datum.Null, fmt.Errorf("expr: aggregate %s evaluated outside a GROUP BY operation", a.Name)
}

func (a *AggCall) Type() datum.TypeID { return a.typ }

func (a *AggCall) String() string {
	if a.Star {
		return a.Name + "(*)"
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", a.Name, d, a.Arg)
}

func (a *AggCall) Children() []Expr {
	if a.Arg == nil {
		return nil
	}
	return []Expr{a.Arg}
}

func (a *AggCall) WithChildren(ch []Expr) Expr {
	out := *a
	if len(ch) > 0 {
		out.Arg = ch[0]
	}
	return &out
}

// HasAggregate reports whether the tree contains an aggregate call.
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if _, ok := x.(*AggCall); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// CollectAggregates returns every aggregate call in the tree, in
// preorder.
func CollectAggregates(e Expr) []*AggCall {
	var out []*AggCall
	Walk(e, func(x Expr) bool {
		if a, ok := x.(*AggCall); ok {
			out = append(out, a)
			return false // do not descend into the argument
		}
		return true
	})
	return out
}
