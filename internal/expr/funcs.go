package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/datum"
)

// ScalarFunc is a scalar function: it takes field values from a single
// (possibly composite) tuple and returns a single value (section 2).
// Built-ins and DBC extensions share this representation.
type ScalarFunc struct {
	Name    string
	MinArgs int
	// MaxArgs of -1 means variadic.
	MaxArgs int
	// ReturnType computes the result type from argument types,
	// rejecting invalid signatures.
	ReturnType func(args []datum.TypeID) (datum.TypeID, error)
	// Eval applies the function. NULL handling is the function's
	// responsibility; most built-ins are strict (NULL in, NULL out).
	Eval func(args []datum.Value) (datum.Value, error)
	// Pushable marks functions safe to evaluate inside a storage scan
	// (the paper: "by invoking functions in the predicate evaluator,
	// Starburst can reduce the amount of irrelevant data").
	Pushable bool
}

// AggState accumulates one group's rows for an aggregate function.
type AggState interface {
	// Add folds one input value into the state.
	Add(v datum.Value) error
	// Result produces the aggregate for the group.
	Result() datum.Value
}

// AggregateFunc is an aggregate function ranging over many tuples
// (section 2, e.g. StandardDeviation(Salary)).
type AggregateFunc struct {
	Name string
	// ReturnType computes the result type from the input type.
	ReturnType func(in datum.TypeID) (datum.TypeID, error)
	// NewState creates a fresh accumulator for a group.
	NewState func() AggState
	// EmptyIsNull reports whether the aggregate over zero rows is NULL
	// (true for SUM/AVG/MIN/MAX, false for COUNT which yields 0).
	EmptyIsNull bool
}

// SetPredState accumulates per-element predicate truth values for a set
// predicate function.
type SetPredState interface {
	// Add folds the truth value of the predicate for one set element.
	Add(t datum.Tristate)
	// Result returns the set predicate's final truth value.
	Result() datum.Tristate
	// Decided optionally allows early termination once the result can
	// no longer change (e.g. ANY after the first TRUE).
	Decided() bool
}

// SetPredicateFunc is a set predicate function (section 2): it takes a
// set of tuples and a predicate, and folds the predicate's per-element
// truth values into a single truth value. ALL and ANY are built in; the
// paper's example extension is MAJORITY.
type SetPredicateFunc struct {
	Name     string
	NewState func() SetPredState
}

// Relation is a materialized table used as table-function input/output.
type Relation struct {
	Cols []ColumnDef
	Rows []datum.Row
}

// ColumnDef names a relation column.
type ColumnDef struct {
	Name string
	Type datum.TypeID
}

// TableFunc is a table function (section 2): it takes one or more
// tables plus scalar parameters and produces a new table, e.g.
// SAMPLE(table, n). Syntactically a function call, internally a QGM
// operation of its own type.
type TableFunc struct {
	Name string
	// NumTables is the number of table arguments.
	NumTables int
	// NumScalars is the number of scalar arguments.
	NumScalars int
	// OutputCols derives the output schema from the input schemas.
	OutputCols func(inputs [][]ColumnDef, scalars []datum.Value) ([]ColumnDef, error)
	// Eval computes the output relation. Inputs are materialized.
	Eval func(inputs []*Relation, scalars []datum.Value) (*Relation, error)
}

// Registry holds all externally callable functions. A DB owns one
// registry seeded with built-ins; DBC extensions register into it.
type Registry struct {
	mu       sync.RWMutex
	scalar   map[string]*ScalarFunc
	agg      map[string]*AggregateFunc
	setPred  map[string]*SetPredicateFunc
	tableFns map[string]*TableFunc
}

// NewRegistry returns a registry seeded with the built-in functions.
func NewRegistry() *Registry {
	r := &Registry{
		scalar:   map[string]*ScalarFunc{},
		agg:      map[string]*AggregateFunc{},
		setPred:  map[string]*SetPredicateFunc{},
		tableFns: map[string]*TableFunc{},
	}
	registerBuiltins(r)
	return r
}

// RegisterScalar installs a scalar function (overwriting any previous
// function of the same name).
func (r *Registry) RegisterScalar(f *ScalarFunc) error {
	if f.Name == "" || f.Eval == nil || f.ReturnType == nil {
		return fmt.Errorf("expr: scalar function needs Name, Eval and ReturnType")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scalar[strings.ToUpper(f.Name)] = f
	return nil
}

// RegisterAggregate installs an aggregate function.
func (r *Registry) RegisterAggregate(f *AggregateFunc) error {
	if f.Name == "" || f.NewState == nil || f.ReturnType == nil {
		return fmt.Errorf("expr: aggregate function needs Name, NewState and ReturnType")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.agg[strings.ToUpper(f.Name)] = f
	return nil
}

// RegisterSetPredicate installs a set predicate function such as the
// paper's MAJORITY example.
func (r *Registry) RegisterSetPredicate(f *SetPredicateFunc) error {
	if f.Name == "" || f.NewState == nil {
		return fmt.Errorf("expr: set predicate needs Name and NewState")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.setPred[strings.ToUpper(f.Name)] = f
	return nil
}

// RegisterTableFunc installs a table function such as SAMPLE.
func (r *Registry) RegisterTableFunc(f *TableFunc) error {
	if f.Name == "" || f.Eval == nil || f.OutputCols == nil {
		return fmt.Errorf("expr: table function needs Name, Eval and OutputCols")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tableFns[strings.ToUpper(f.Name)] = f
	return nil
}

// Scalar looks up a scalar function by case-insensitive name.
func (r *Registry) Scalar(name string) *ScalarFunc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.scalar[strings.ToUpper(name)]
}

// Aggregate looks up an aggregate function.
func (r *Registry) Aggregate(name string) *AggregateFunc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.agg[strings.ToUpper(name)]
}

// SetPredicate looks up a set predicate function.
func (r *Registry) SetPredicate(name string) *SetPredicateFunc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.setPred[strings.ToUpper(name)]
}

// Table looks up a table function.
func (r *Registry) Table(name string) *TableFunc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tableFns[strings.ToUpper(name)]
}

// Names lists registered function names of every kind, sorted, for
// catalog display.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for n := range r.scalar {
		out = append(out, n)
	}
	for n := range r.agg {
		out = append(out, n)
	}
	for n := range r.setPred {
		out = append(out, n)
	}
	for n := range r.tableFns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------
// Built-in scalar functions

func numericReturn(args []datum.TypeID) (datum.TypeID, error) {
	for _, t := range args {
		if t == datum.TFloat {
			return datum.TFloat, nil
		}
		if t != datum.TInt && t != datum.TNull {
			return 0, fmt.Errorf("numeric argument required, got %s", datum.TypeName(t))
		}
	}
	return datum.TInt, nil
}

func fixedReturn(t datum.TypeID) func([]datum.TypeID) (datum.TypeID, error) {
	return func([]datum.TypeID) (datum.TypeID, error) { return t, nil }
}

// strict wraps an eval function with NULL-in/NULL-out semantics.
func strict(f func(args []datum.Value) (datum.Value, error)) func([]datum.Value) (datum.Value, error) {
	return func(args []datum.Value) (datum.Value, error) {
		for _, a := range args {
			if a.IsNull() {
				return datum.Null, nil
			}
		}
		return f(args)
	}
}

func registerBuiltins(r *Registry) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(r.RegisterScalar(&ScalarFunc{
		Name: "ABS", MinArgs: 1, MaxArgs: 1, Pushable: true,
		ReturnType: numericReturn,
		Eval: strict(func(a []datum.Value) (datum.Value, error) {
			if a[0].Type() == datum.TInt {
				v := a[0].Int()
				if v < 0 {
					v = -v
				}
				return datum.NewInt(v), nil
			}
			return datum.NewFloat(math.Abs(a[0].Float())), nil
		}),
	}))
	must(r.RegisterScalar(&ScalarFunc{
		Name: "LENGTH", MinArgs: 1, MaxArgs: 1, Pushable: true,
		ReturnType: fixedReturn(datum.TInt),
		Eval: strict(func(a []datum.Value) (datum.Value, error) {
			return datum.NewInt(int64(len(a[0].Str()))), nil
		}),
	}))
	must(r.RegisterScalar(&ScalarFunc{
		Name: "UPPER", MinArgs: 1, MaxArgs: 1, Pushable: true,
		ReturnType: fixedReturn(datum.TString),
		Eval: strict(func(a []datum.Value) (datum.Value, error) {
			return datum.NewString(strings.ToUpper(a[0].Str())), nil
		}),
	}))
	must(r.RegisterScalar(&ScalarFunc{
		Name: "LOWER", MinArgs: 1, MaxArgs: 1, Pushable: true,
		ReturnType: fixedReturn(datum.TString),
		Eval: strict(func(a []datum.Value) (datum.Value, error) {
			return datum.NewString(strings.ToLower(a[0].Str())), nil
		}),
	}))
	must(r.RegisterScalar(&ScalarFunc{
		Name: "SUBSTR", MinArgs: 2, MaxArgs: 3, Pushable: true,
		ReturnType: fixedReturn(datum.TString),
		Eval: strict(func(a []datum.Value) (datum.Value, error) {
			s := a[0].Str()
			start := int(a[1].Int()) - 1 // SQL is 1-based
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				start = len(s)
			}
			end := len(s)
			if len(a) == 3 {
				end = start + int(a[2].Int())
				if end > len(s) {
					end = len(s)
				}
				if end < start {
					end = start
				}
			}
			return datum.NewString(s[start:end]), nil
		}),
	}))
	must(r.RegisterScalar(&ScalarFunc{
		Name: "CONCAT", MinArgs: 2, MaxArgs: -1, Pushable: true,
		ReturnType: fixedReturn(datum.TString),
		Eval: strict(func(a []datum.Value) (datum.Value, error) {
			var b strings.Builder
			for _, v := range a {
				if v.Type() != datum.TString {
					b.WriteString(strings.Trim(v.String(), "'"))
				} else {
					b.WriteString(v.Str())
				}
			}
			return datum.NewString(b.String()), nil
		}),
	}))
	must(r.RegisterScalar(&ScalarFunc{
		Name: "SQRT", MinArgs: 1, MaxArgs: 1, Pushable: true,
		ReturnType: fixedReturn(datum.TFloat),
		Eval: strict(func(a []datum.Value) (datum.Value, error) {
			f := a[0].Float()
			if f < 0 {
				return datum.Null, fmt.Errorf("SQRT of negative value")
			}
			return datum.NewFloat(math.Sqrt(f)), nil
		}),
	}))
	must(r.RegisterScalar(&ScalarFunc{
		Name: "COALESCE", MinArgs: 1, MaxArgs: -1, Pushable: true,
		ReturnType: func(args []datum.TypeID) (datum.TypeID, error) {
			for _, t := range args {
				if t != datum.TNull {
					return t, nil
				}
			}
			return datum.TNull, nil
		},
		Eval: func(a []datum.Value) (datum.Value, error) {
			for _, v := range a {
				if !v.IsNull() {
					return v, nil
				}
			}
			return datum.Null, nil
		},
	}))

	// Built-in aggregates.
	must(r.RegisterAggregate(&AggregateFunc{
		Name:       "COUNT",
		ReturnType: func(datum.TypeID) (datum.TypeID, error) { return datum.TInt, nil },
		NewState:   func() AggState { return &countState{} },
	}))
	must(r.RegisterAggregate(&AggregateFunc{
		Name: "SUM", EmptyIsNull: true,
		ReturnType: aggNumericReturn,
		NewState:   func() AggState { return &sumState{} },
	}))
	must(r.RegisterAggregate(&AggregateFunc{
		Name: "AVG", EmptyIsNull: true,
		ReturnType: func(in datum.TypeID) (datum.TypeID, error) {
			if _, err := aggNumericReturn(in); err != nil {
				return 0, err
			}
			return datum.TFloat, nil
		},
		NewState: func() AggState { return &avgState{} },
	}))
	must(r.RegisterAggregate(&AggregateFunc{
		Name: "MIN", EmptyIsNull: true,
		ReturnType: func(in datum.TypeID) (datum.TypeID, error) { return in, nil },
		NewState:   func() AggState { return &minMaxState{min: true} },
	}))
	must(r.RegisterAggregate(&AggregateFunc{
		Name: "MAX", EmptyIsNull: true,
		ReturnType: func(in datum.TypeID) (datum.TypeID, error) { return in, nil },
		NewState:   func() AggState { return &minMaxState{min: false} },
	}))

	// Built-in set predicates: ALL and ANY (section 2). SOME is a
	// synonym for ANY.
	must(r.RegisterSetPredicate(&SetPredicateFunc{
		Name:     "ALL",
		NewState: func() SetPredState { return &allState{res: datum.True} },
	}))
	anyPred := &SetPredicateFunc{
		Name:     "ANY",
		NewState: func() SetPredState { return &anyState{res: datum.False} },
	}
	must(r.RegisterSetPredicate(anyPred))
	must(r.RegisterSetPredicate(&SetPredicateFunc{Name: "SOME", NewState: anyPred.NewState}))
}

func aggNumericReturn(in datum.TypeID) (datum.TypeID, error) {
	switch in {
	case datum.TInt, datum.TNull:
		return datum.TInt, nil
	case datum.TFloat:
		return datum.TFloat, nil
	}
	return 0, fmt.Errorf("numeric argument required, got %s", datum.TypeName(in))
}

type countState struct{ n int64 }

func (s *countState) Add(v datum.Value) error {
	if !v.IsNull() {
		s.n++
	}
	return nil
}
func (s *countState) Result() datum.Value { return datum.NewInt(s.n) }

type sumState struct {
	isFloat bool
	i       int64
	f       float64
	seen    bool
}

func (s *sumState) Add(v datum.Value) error {
	if v.IsNull() {
		return nil
	}
	s.seen = true
	if v.Type() == datum.TFloat || s.isFloat {
		if !s.isFloat {
			s.isFloat = true
			s.f = float64(s.i)
		}
		s.f += v.Float()
		return nil
	}
	s.i += v.Int()
	return nil
}
func (s *sumState) Result() datum.Value {
	if !s.seen {
		return datum.Null
	}
	if s.isFloat {
		return datum.NewFloat(s.f)
	}
	return datum.NewInt(s.i)
}

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) Add(v datum.Value) error {
	if v.IsNull() {
		return nil
	}
	s.sum += v.Float()
	s.n++
	return nil
}
func (s *avgState) Result() datum.Value {
	if s.n == 0 {
		return datum.Null
	}
	return datum.NewFloat(s.sum / float64(s.n))
}

type minMaxState struct {
	min  bool
	best datum.Value
	seen bool
}

func (s *minMaxState) Add(v datum.Value) error {
	if v.IsNull() {
		return nil
	}
	if !s.seen {
		s.best, s.seen = v, true
		return nil
	}
	c, ok := datum.Compare(v, s.best)
	if !ok {
		return fmt.Errorf("expr: MIN/MAX over incomparable values")
	}
	if (s.min && c < 0) || (!s.min && c > 0) {
		s.best = v
	}
	return nil
}
func (s *minMaxState) Result() datum.Value {
	if !s.seen {
		return datum.Null
	}
	return s.best
}

// allState: TRUE over the empty set; FALSE dominates; UNKNOWN otherwise.
type allState struct{ res datum.Tristate }

func (s *allState) Add(t datum.Tristate) { s.res = s.res.And(t) }
func (s *allState) Result() datum.Tristate {
	return s.res
}
func (s *allState) Decided() bool { return s.res == datum.False }

// anyState: FALSE over the empty set; TRUE dominates.
type anyState struct{ res datum.Tristate }

func (s *anyState) Add(t datum.Tristate) { s.res = s.res.Or(t) }
func (s *anyState) Result() datum.Tristate {
	return s.res
}
func (s *anyState) Decided() bool { return s.res == datum.True }
