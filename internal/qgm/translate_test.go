package qgm

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/sql"
)

// paperCatalog builds the quotations/inventory schema used throughout
// the paper's examples.
func paperCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	if _, err := c.CreateTable("QUOTATIONS", []catalog.Column{
		{Name: "PARTNO", Type: datum.TInt},
		{Name: "PRICE", Type: datum.TFloat},
		{Name: "ORDER_QTY", Type: datum.TInt},
		{Name: "SUPPNO", Type: datum.TInt},
	}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("INVENTORY", []catalog.Column{
		{Name: "PARTNO", Type: datum.TInt},
		{Name: "ONHAND_QTY", Type: datum.TInt},
		{Name: "TYPE", Type: datum.TString},
	}, ""); err != nil {
		t.Fatal(err)
	}
	return c
}

func translate(t *testing.T, c *catalog.Catalog, src string) *Graph {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := TranslateStatement(c, stmt)
	if err != nil {
		t.Fatalf("translate %q: %v", src, err)
	}
	return g
}

func translateErr(t *testing.T, c *catalog.Catalog, src string) error {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = TranslateStatement(c, stmt)
	if err == nil {
		t.Fatalf("translate %q succeeded, want error", src)
	}
	return err
}

const paperQuery = `SELECT partno, price, order_qty FROM quotations Q1
	WHERE Q1.partno IN
	  (SELECT partno FROM inventory Q3
	   WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')`

// TestFigure2aQGM reproduces Figure 2(a): two SELECT boxes; the outer
// has setformer Q1 over quotations and existential quantifier Q2 over
// the inner box; the inner has setformer Q3 over inventory with a
// correlated conjunct and a local conjunct.
func TestFigure2aQGM(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, paperQuery)

	top := g.Top
	if top.Kind != KindSelect {
		t.Fatalf("top kind = %s", top.Kind)
	}
	if got := top.HeadNames(); !equalStrings(got, []string{"PARTNO", "PRICE", "ORDER_QTY"}) {
		t.Fatalf("head = %v", got)
	}
	if len(top.Quants) != 2 {
		t.Fatalf("outer box has %d quantifiers, want 2 (Q1, Q2)", len(top.Quants))
	}
	q1 := top.Quants[0]
	if q1.Type != ForEach || q1.Input.Kind != KindBase || q1.Input.Table.Name != "QUOTATIONS" {
		t.Errorf("Q1 = %s over %s", q1.Type, q1.Input.Kind)
	}
	q2 := top.Quants[1]
	if q2.Type != QExists || q2.SetPred != "ANY" || q2.Negated {
		t.Errorf("Q2 type = %s setpred=%s negated=%v; want existential", q2.Type, q2.SetPred, q2.Negated)
	}
	inner := q2.Input
	if inner.Kind != KindSelect {
		t.Fatalf("inner kind = %s", inner.Kind)
	}
	// The IN predicate is a qualifier edge between Q1 and Q2.
	if len(top.Preds) != 1 {
		t.Fatalf("outer preds = %d, want 1", len(top.Preds))
	}
	qids := top.Preds[0].QIDs()
	if !qids[q1.QID] || !qids[q2.QID] {
		t.Errorf("IN predicate connects %v, want {%d,%d}", qids, q1.QID, q2.QID)
	}
	// Inner box: setformer Q3 over inventory, two conjuncts — one a
	// loop on Q3, one a correlation edge to Q1.
	if len(inner.Quants) != 1 {
		t.Fatalf("inner quants = %d", len(inner.Quants))
	}
	q3 := inner.Quants[0]
	if q3.Type != ForEach || q3.Input.Table.Name != "INVENTORY" {
		t.Errorf("Q3 = %s over %v", q3.Type, q3.Input.Table)
	}
	if len(inner.Preds) != 2 {
		t.Fatalf("inner preds = %d, want 2 conjuncts", len(inner.Preds))
	}
	var sawCorrelated, sawLocal bool
	for _, p := range inner.Preds {
		ids := p.QIDs()
		if ids[q1.QID] && ids[q3.QID] {
			sawCorrelated = true
		}
		if len(ids) == 1 && ids[q3.QID] {
			sawLocal = true
		}
	}
	if !sawCorrelated || !sawLocal {
		t.Errorf("conjunct shapes wrong: correlated=%v local=%v", sawCorrelated, sawLocal)
	}
	// Rendering mentions the key constructs (diagnostic form of Fig 2a).
	s := g.String()
	for _, want := range []string{"type=E", "type=F", "QUOTATIONS", "INVENTORY", "'CPU'"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSharedBaseBox(t *testing.T) {
	// "Many iterators can range over the same input table."
	c := paperCatalog(t)
	g := translate(t, c, "SELECT a.partno FROM quotations a, quotations b WHERE a.partno = b.partno")
	top := g.Top
	if len(top.Quants) != 2 {
		t.Fatal("two quantifiers")
	}
	if top.Quants[0].Input != top.Quants[1].Input {
		t.Error("both quantifiers must range over the same BASE box")
	}
}

func TestStarExpansion(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, "SELECT * FROM inventory")
	if got := g.Top.HeadNames(); !equalStrings(got, []string{"PARTNO", "ONHAND_QTY", "TYPE"}) {
		t.Errorf("head = %v", got)
	}
	g = translate(t, c, "SELECT q.*, i.partno FROM quotations q, inventory i")
	if len(g.Top.Head) != 5 {
		t.Errorf("q.* + i.partno = %d cols", len(g.Top.Head))
	}
}

func TestNameResolutionErrors(t *testing.T) {
	c := paperCatalog(t)
	translateErr(t, c, "SELECT nope FROM inventory")
	translateErr(t, c, "SELECT partno FROM quotations, inventory") // ambiguous
	translateErr(t, c, "SELECT x.partno FROM inventory")           // unknown alias
	translateErr(t, c, "SELECT partno FROM no_such_table")
	translateErr(t, c, "SELECT * FROM inventory a, quotations a") // dup alias
	translateErr(t, c, "SELECT NO_SUCH_FUNC(partno) FROM inventory")
	translateErr(t, c, "SELECT partno FROM inventory WHERE SUM(partno) > 1") // agg in WHERE
	translateErr(t, c, "SELECT SUM(partno), onhand_qty FROM inventory")      // non-grouped col
}

func TestAggregationSplit(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, `SELECT type, COUNT(*), SUM(onhand_qty) total
		FROM inventory WHERE partno > 0 GROUP BY type HAVING COUNT(*) > 1`)
	// Three boxes above base: lower SELECT, GROUPBY, upper SELECT.
	top := g.Top
	if top.Kind != KindSelect || len(top.Preds) != 1 {
		t.Fatalf("upper box: kind=%s preds=%d", top.Kind, len(top.Preds))
	}
	gb := top.Quants[0].Input
	if gb.Kind != KindGroupBy || len(gb.GroupBy) != 1 {
		t.Fatalf("group box: %s groupby=%d", gb.Kind, len(gb.GroupBy))
	}
	if len(gb.Head) != 3 { // group col + 2 aggregates
		t.Fatalf("group head = %d", len(gb.Head))
	}
	lower := gb.Quants[0].Input
	if lower.Kind != KindSelect || len(lower.Preds) != 1 {
		t.Fatalf("lower box: %s preds=%d", lower.Kind, len(lower.Preds))
	}
	if got := top.HeadNames(); !equalStrings(got, []string{"TYPE", "COUNT", "TOTAL"}) {
		t.Errorf("output names = %v", got)
	}
	// GROUPBY output is distinct by construction.
	if !gb.OutputDistinct() {
		t.Error("group output must be distinct")
	}
}

func TestScalarAggregate(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, "SELECT COUNT(*), MAX(price) FROM quotations")
	gb := g.Top.Quants[0].Input
	if gb.Kind != KindGroupBy || len(gb.GroupBy) != 0 {
		t.Fatalf("scalar aggregate: %s groupby=%d", gb.Kind, len(gb.GroupBy))
	}
}

func TestDistinct(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, "SELECT DISTINCT type FROM inventory")
	if g.Top.Distinct != EnforceDistinct || !g.Top.OutputDistinct() {
		t.Error("distinct box")
	}
	g = translate(t, c, "SELECT type FROM inventory")
	if g.Top.OutputDistinct() {
		t.Error("non-distinct box")
	}
}

func TestSetOperations(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, `SELECT partno FROM quotations UNION SELECT partno FROM inventory`)
	if g.Top.Kind != KindUnion || g.Top.SetAll || len(g.Top.Quants) != 2 {
		t.Fatalf("union box: %+v", g.Top)
	}
	if !g.Top.OutputDistinct() {
		t.Error("UNION (distinct) output distinct")
	}
	g = translate(t, c, `SELECT partno FROM quotations UNION ALL SELECT partno FROM inventory`)
	if !g.Top.SetAll || g.Top.OutputDistinct() {
		t.Error("UNION ALL")
	}
	g = translate(t, c, `SELECT partno FROM quotations INTERSECT SELECT partno FROM inventory`)
	if g.Top.Kind != KindIntersect {
		t.Error("intersect")
	}
	g = translate(t, c, `SELECT partno FROM quotations EXCEPT SELECT partno FROM inventory`)
	if g.Top.Kind != KindExcept {
		t.Error("except")
	}
	translateErr(t, c, "SELECT partno, price FROM quotations UNION SELECT partno FROM inventory")
	translateErr(t, c, "SELECT type FROM inventory UNION SELECT partno FROM inventory")
}

func TestOrderByLimit(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, "SELECT partno, price FROM quotations ORDER BY price DESC, 1 LIMIT 5")
	if len(g.OrderBy) != 2 || !g.OrderBy[0].Desc || g.OrderBy[0].Col != 1 || g.OrderBy[1].Col != 0 {
		t.Errorf("order by = %+v", g.OrderBy)
	}
	if g.Limit == nil {
		t.Error("limit")
	}
	translateErr(t, c, "SELECT partno FROM quotations ORDER BY 99")
	// Sort keys outside the select list become hidden head columns.
	g = translate(t, c, "SELECT partno FROM quotations ORDER BY price + 1 DESC")
	if g.HiddenOrderCols != 1 || len(g.Top.Head) != 2 {
		t.Errorf("hidden order col: hidden=%d head=%d", g.HiddenOrderCols, len(g.Top.Head))
	}
	// ...but not on DISTINCT boxes (it would change dedup semantics).
	translateErr(t, c, "SELECT DISTINCT partno FROM quotations ORDER BY price")
	// ORDER BY in a subquery is rejected.
	translateErr(t, c, "SELECT * FROM (SELECT partno FROM quotations ORDER BY partno) x")
}

func TestTableExpressionSharing(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, `WITH pricey AS (SELECT partno FROM quotations WHERE price > 100)
		SELECT a.partno FROM pricey a, pricey b WHERE a.partno = b.partno`)
	top := g.Top
	if len(top.Quants) != 2 {
		t.Fatal("two refs")
	}
	if top.Quants[0].Input != top.Quants[1].Input {
		t.Error("both references must share the single table-expression box")
	}
}

func TestViewTranslation(t *testing.T) {
	c := paperCatalog(t)
	if err := c.CreateView("cpuonly", nil, "SELECT partno, onhand_qty FROM inventory WHERE type = 'CPU'"); err != nil {
		t.Fatal(err)
	}
	// Views usable like base tables — even joined with aggregates
	// (SQL's restriction Hydrogen removes).
	g := translate(t, c, `SELECT q.partno, v.onhand_qty FROM quotations q, cpuonly v
		WHERE q.partno = v.partno`)
	var viewBox *Box
	for _, q := range g.Top.Quants {
		if q.Input.Kind == KindSelect {
			viewBox = q.Input
		}
	}
	if viewBox == nil {
		t.Fatal("view translated to a select box")
	}
	if len(viewBox.Preds) != 1 {
		t.Error("view predicate present")
	}
	// View with column renames.
	if err := c.CreateView("v2", []string{"P", "Q"}, "SELECT partno, onhand_qty FROM inventory"); err != nil {
		t.Fatal(err)
	}
	g = translate(t, c, "SELECT p FROM v2 WHERE q > 0")
	if g.Top.HeadNames()[0] != "P" {
		t.Error("renamed view column")
	}
}

func TestRecursiveCTE(t *testing.T) {
	c := paperCatalog(t)
	if _, err := c.CreateTable("EDGES", []catalog.Column{
		{Name: "SRC", Type: datum.TInt}, {Name: "DST", Type: datum.TInt},
	}, ""); err != nil {
		t.Fatal(err)
	}
	g := translate(t, c, `WITH RECURSIVE reach (src, dst) AS (
		SELECT src, dst FROM edges
		UNION SELECT r.src, e.dst FROM reach r, edges e WHERE r.dst = e.src)
		SELECT * FROM reach`)
	// Find the recursive union box.
	var u *Box
	for _, b := range g.Boxes {
		if b.Recursive {
			u = b
		}
	}
	if u == nil {
		t.Fatal("no recursive box")
	}
	if u.Kind != KindUnion || len(u.Quants) != 2 {
		t.Fatalf("recursive union: %s quants=%d", u.Kind, len(u.Quants))
	}
	// The recursive branch must reference u — a cyclic range edge.
	rec := u.Quants[1].Input
	cyclic := false
	for _, q := range rec.Quants {
		if q.Input == u {
			cyclic = true
		}
	}
	if !cyclic {
		t.Error("recursive branch must range over the union box itself")
	}
	if got := u.HeadNames(); !equalStrings(got, []string{"SRC", "DST"}) {
		t.Errorf("cte head = %v", got)
	}
}

func TestQuantifiedComparisons(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, `SELECT partno FROM quotations
		WHERE price > ALL (SELECT price FROM quotations WHERE suppno = 3)`)
	var qa *Quantifier
	for _, q := range g.Top.Quants {
		if q.Type == QAll {
			qa = q
		}
	}
	if qa == nil || qa.SetPred != "ALL" {
		t.Fatal("ALL quantifier")
	}
	// NOT IN becomes a negated existential.
	g = translate(t, c, `SELECT partno FROM quotations
		WHERE partno NOT IN (SELECT partno FROM inventory)`)
	var qe *Quantifier
	for _, q := range g.Top.Quants {
		if q.Type == QExists {
			qe = q
		}
	}
	if qe == nil || !qe.Negated {
		t.Fatal("NOT IN must be a negated E quantifier")
	}
	// NOT EXISTS likewise.
	g = translate(t, c, `SELECT partno FROM quotations q
		WHERE NOT EXISTS (SELECT 1 FROM inventory i WHERE i.partno = q.partno)`)
	qe = nil
	for _, q := range g.Top.Quants {
		if q.Type == QExists {
			qe = q
		}
	}
	if qe == nil || !qe.Negated {
		t.Fatal("NOT EXISTS must be a negated E quantifier")
	}
}

func TestCustomSetPredicateQuantifier(t *testing.T) {
	c := paperCatalog(t)
	// Without registration the quantifier is rejected...
	translateErr(t, c, "SELECT partno FROM quotations WHERE price = MAJORITY (SELECT price FROM quotations)")
	// ...after registration it becomes a quantifier of its own type.
	c.Funcs.RegisterSetPredicate(&expr.SetPredicateFunc{
		Name:     "MAJORITY",
		NewState: func() expr.SetPredState { return &majState{} },
	})
	g := translate(t, c, "SELECT partno FROM quotations WHERE price = MAJORITY (SELECT price FROM quotations)")
	var qm *Quantifier
	for _, q := range g.Top.Quants {
		if q.Type == "MAJORITY" {
			qm = q
		}
	}
	if qm == nil || qm.SetPred != "MAJORITY" {
		t.Fatal("MAJORITY quantifier type")
	}
}

type majState struct{ yes, total int }

func (m *majState) Add(t datum.Tristate) {
	m.total++
	if t == datum.True {
		m.yes++
	}
}
func (m *majState) Result() datum.Tristate {
	if m.yes*2 > m.total {
		return datum.True
	}
	return datum.False
}
func (m *majState) Decided() bool { return false }

func TestScalarSubquery(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, `SELECT partno FROM quotations
		WHERE price = (SELECT MAX(price) FROM quotations)`)
	var qs *Quantifier
	for _, q := range g.Top.Quants {
		if q.Type == QScalar {
			qs = q
		}
	}
	if qs == nil {
		t.Fatal("scalar quantifier")
	}
	// Scalar subquery in the select list.
	g = translate(t, c, `SELECT partno, (SELECT MAX(onhand_qty) FROM inventory) m FROM quotations`)
	qs = nil
	for _, q := range g.Top.Quants {
		if q.Type == QScalar {
			qs = q
		}
	}
	if qs == nil {
		t.Fatal("scalar quantifier from select list")
	}
}

func TestORSubqueryDeferred(t *testing.T) {
	// The paper's section-7 query: OR of a simple predicate and a
	// scalar-subquery predicate. The subquery must NOT become a
	// quantifier (that would change semantics); it stays as a deferred
	// subplan inside the OR expression.
	c := paperCatalog(t)
	g := translate(t, c, `SELECT * FROM quotations t1
		WHERE t1.partno = 5 OR t1.order_qty =
		  (SELECT onhand_qty FROM inventory t2 WHERE t2.partno = 16)`)
	if len(g.Top.Quants) != 1 {
		t.Fatalf("outer quants = %d; subquery under OR must not become a quantifier", len(g.Top.Quants))
	}
	if len(g.Top.Preds) != 1 {
		t.Fatal("one OR predicate")
	}
	if !expr.HasSubplan(g.Top.Preds[0].Expr) {
		t.Error("OR predicate must contain a deferred subplan")
	}
}

func TestOuterJoinTranslation(t *testing.T) {
	// Section 4's worked extension: LEFT OUTER JOIN with the PF
	// setformer type.
	c := paperCatalog(t)
	g := translate(t, c, `SELECT q.partno, i.onhand_qty
		FROM quotations q LEFT OUTER JOIN inventory i ON q.partno = i.partno
		WHERE q.price > 10`)
	top := g.Top
	if len(top.Quants) != 1 {
		t.Fatalf("top quants = %d", len(top.Quants))
	}
	oj := top.Quants[0].Input
	if oj.Kind != KindOuterJoin {
		t.Fatalf("expected outer join box, got %s", oj.Kind)
	}
	if len(oj.Quants) != 2 {
		t.Fatal("outer join needs 2 quantifiers")
	}
	if oj.Quants[0].Type != PreserveForeach {
		t.Errorf("preserved side type = %s, want PF", oj.Quants[0].Type)
	}
	if oj.Quants[1].Type != ForEach {
		t.Errorf("null-producing side type = %s, want F", oj.Quants[1].Type)
	}
	if len(oj.Preds) != 1 {
		t.Error("ON predicate inside the join box")
	}
	// WHERE predicate stays on the outer select box.
	if len(top.Preds) != 1 {
		t.Error("WHERE predicate on the select box")
	}
	// RIGHT OUTER normalizes to LEFT with swapped sides.
	g = translate(t, c, `SELECT q.partno FROM inventory i RIGHT OUTER JOIN quotations q ON q.partno = i.partno`)
	oj = g.Top.Quants[0].Input
	if oj.Quants[0].Type != PreserveForeach || oj.Quants[0].Name != "q" {
		t.Errorf("right outer normalization: %s/%s", oj.Quants[0].Name, oj.Quants[0].Type)
	}
}

func TestInnerJoinDissolves(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, `SELECT q.partno FROM quotations q JOIN inventory i ON q.partno = i.partno`)
	if len(g.Top.Quants) != 2 || len(g.Top.Preds) != 1 {
		t.Errorf("inner join should dissolve: quants=%d preds=%d", len(g.Top.Quants), len(g.Top.Preds))
	}
}

func TestTableFunctionBox(t *testing.T) {
	c := paperCatalog(t)
	c.Funcs.RegisterTableFunc(&expr.TableFunc{
		Name: "SAMPLE", NumTables: 1, NumScalars: 1,
		OutputCols: func(in [][]expr.ColumnDef, _ []datum.Value) ([]expr.ColumnDef, error) {
			return in[0], nil
		},
		Eval: func(in []*expr.Relation, scalars []datum.Value) (*expr.Relation, error) {
			n := int(scalars[0].Int())
			if n > len(in[0].Rows) {
				n = len(in[0].Rows)
			}
			return &expr.Relation{Cols: in[0].Cols, Rows: in[0].Rows[:n]}, nil
		},
	})
	g := translate(t, c, "SELECT partno FROM SAMPLE(quotations, 10) s WHERE price > 1")
	var tf *Box
	for _, b := range g.Boxes {
		if b.Kind == KindTableFn {
			tf = b
		}
	}
	if tf == nil {
		t.Fatal("table function box")
	}
	if tf.TableFn.Name != "SAMPLE" || len(tf.TFScalarArgs) != 1 || len(tf.Quants) != 1 {
		t.Errorf("table fn box = %+v", tf)
	}
	if len(tf.Head) != 4 {
		t.Errorf("sample output cols = %d", len(tf.Head))
	}
	translateErr(t, c, "SELECT * FROM SAMPLE(quotations) s")               // missing scalar
	translateErr(t, c, "SELECT * FROM NOSUCHFN(quotations, 1) s")          // unknown
	translateErr(t, c, "SELECT * FROM SAMPLE(quotations, inventory, 1) s") // arity
}

func TestInsertTranslation(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, "INSERT INTO inventory (partno, onhand_qty, type) VALUES (1, 10, 'CPU'), (2, 0, 'DISK')")
	if g.Top.Kind != KindInsert || g.Top.TargetTable.Name != "INVENTORY" {
		t.Fatalf("insert box: %+v", g.Top)
	}
	src := g.Top.Quants[0].Input
	if src.Kind != KindValues || len(src.Rows) != 2 {
		t.Fatalf("values box: %s rows=%d", src.Kind, len(src.Rows))
	}
	// INSERT ... SELECT.
	g = translate(t, c, "INSERT INTO inventory SELECT partno, order_qty, 'NEW' FROM quotations")
	if g.Top.Quants[0].Input.Kind != KindSelect {
		t.Error("insert-select source")
	}
	translateErr(t, c, "INSERT INTO nope VALUES (1)")
	translateErr(t, c, "INSERT INTO inventory (nope) VALUES (1)")
	translateErr(t, c, "INSERT INTO inventory (partno) VALUES (1, 2)")
	translateErr(t, c, "INSERT INTO inventory SELECT partno FROM quotations")
}

func TestUpdateDeleteTranslation(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, "UPDATE inventory SET onhand_qty = onhand_qty + 5 WHERE type = 'CPU'")
	if g.Top.Kind != KindUpdate || len(g.Top.TargetCols) != 1 || g.Top.TargetCols[0] != 1 {
		t.Fatalf("update box: %+v", g.Top)
	}
	if len(g.Top.Preds) != 1 {
		t.Error("update predicate")
	}
	g = translate(t, c, "DELETE FROM inventory WHERE onhand_qty = 0")
	if g.Top.Kind != KindDelete || len(g.Top.Preds) != 1 {
		t.Fatalf("delete box: %+v", g.Top)
	}
	translateErr(t, c, "UPDATE inventory SET nope = 1")
	translateErr(t, c, "DELETE FROM nope")
}

func TestUpdateThroughView(t *testing.T) {
	c := paperCatalog(t)
	// Updatable view: simple projection + selection.
	if err := c.CreateView("cpus", nil, "SELECT partno, onhand_qty FROM inventory WHERE type = 'CPU'"); err != nil {
		t.Fatal(err)
	}
	g := translate(t, c, "UPDATE cpus SET onhand_qty = 0 WHERE partno = 7")
	if g.Top.Kind != KindUpdate || g.Top.TargetTable.Name != "INVENTORY" {
		t.Fatalf("view update resolves to base: %+v", g.Top.TargetTable)
	}
	// Both the user's WHERE and the view's WHERE must be present.
	if len(g.Top.Preds) != 2 {
		t.Errorf("view update preds = %d, want 2", len(g.Top.Preds))
	}
	// Ambiguous view: aggregation.
	if err := c.CreateView("agg_v", nil, "SELECT type, COUNT(*) n FROM inventory GROUP BY type"); err != nil {
		t.Fatal(err)
	}
	translateErr(t, c, "UPDATE agg_v SET n = 0")
	// Delete through a view.
	g = translate(t, c, "DELETE FROM cpus WHERE onhand_qty = 0")
	if g.Top.Kind != KindDelete || g.Top.TargetTable.Name != "INVENTORY" || len(g.Top.Preds) != 2 {
		t.Error("view delete")
	}
}

func TestGraphCheckAndGC(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, paperQuery)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	// Damage the graph: predicate referencing a bogus quantifier.
	bad := &Predicate{Expr: expr.NewCol(999, 0, "ghost", datum.TInt)}
	g.Top.Preds = append(g.Top.Preds, bad)
	if err := g.Check(); err == nil {
		t.Error("Check must detect dangling quantifier refs")
	}
	g.Top.Preds = g.Top.Preds[:len(g.Top.Preds)-1]

	// GC: orphan box disappears.
	orphan := g.NewBox(KindSelect)
	_ = orphan
	n := len(g.Boxes)
	g.GC()
	if len(g.Boxes) != n-1 {
		t.Error("GC must remove orphan boxes")
	}
}

func TestHostVariableParam(t *testing.T) {
	c := paperCatalog(t)
	g := translate(t, c, "SELECT partno FROM quotations WHERE price > :minprice")
	if !g.Params["minprice"] {
		t.Error("param recorded")
	}
}

func TestCorrelatedFromSubquery(t *testing.T) {
	c := paperCatalog(t)
	// FROM subquery sees outer scope of the enclosing query when this
	// core is itself a subquery.
	g := translate(t, c, `SELECT partno FROM quotations q WHERE EXISTS
		(SELECT 1 FROM (SELECT partno FROM inventory) i WHERE i.partno = q.partno)`)
	if g == nil {
		t.Fatal("translation failed")
	}
}

func TestKim82Subqueries(t *testing.T) {
	c := paperCatalog(t)
	if _, err := c.CreateTable("EMP", []catalog.Column{
		{Name: "ID", Type: datum.TInt}, {Name: "NAME", Type: datum.TString},
		{Name: "SAL", Type: datum.TInt}, {Name: "MGR", Type: datum.TInt},
	}, ""); err != nil {
		t.Fatal(err)
	}
	g := translate(t, c, `SELECT e.name FROM emp e WHERE e.sal >
		(SELECT m.sal FROM emp m WHERE m.id = e.mgr)`)
	var qs *Quantifier
	for _, q := range g.Top.Quants {
		if q.Type == QScalar {
			qs = q
		}
	}
	if qs == nil {
		t.Fatal("scalar quantifier for correlated subquery")
	}
}
