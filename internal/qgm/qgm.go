// Package qgm implements the Query Graph Model (section 4 of the
// paper): Starburst's generic internal representation of queries, "the
// schema for a main memory database storing information about a query"
// and the main interface between compilation phases and between Corona
// and extensions.
//
// Queries are series of high-level operations on tables. Each operation
// is a Box with a head (the output table's columns) and a body
// (iterators ranging over input tables — the range edges — and
// predicates connecting them — the qualifier edges). Iterators are
// either setformers (F, or the extension type PF for outer join) or
// quantifiers (E, A, S, or DBC-defined types such as MAJORITY); most of
// QGM is generic — it describes tables — which is what makes the model
// extensible.
package qgm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
)

// Box kinds. Kinds are open-ended strings so DBCs can add new
// operations on tables (the paper's left outer join example is the
// built-in extension OuterJoin).
const (
	KindSelect    = "SELECT"
	KindGroupBy   = "GROUPBY"
	KindUnion     = "UNION"
	KindIntersect = "INTERSECT"
	KindExcept    = "EXCEPT"
	KindBase      = "BASE"    // access to a stored table
	KindValues    = "VALUES"  // literal rows
	KindTableFn   = "TABLEFN" // externally defined table function
	KindChoose    = "CHOOSE"  // run/optimize-time alternative selection (section 5)
	KindOuterJoin = "LEFTOUTER"
	KindInsert    = "INSERT"
	KindUpdate    = "UPDATE"
	KindDelete    = "DELETE"
)

// Quantifier (iterator) types. F and PF are setformers; the rest are
// quantifiers. The set is extensible: a DBC adding a set-predicate
// function introduces a quantifier type of the same name.
const (
	ForEach         = "F"
	PreserveForeach = "PF" // outer join extension: tuples preserved even without matches
	QExists         = "E"  // existential (IN, EXISTS, = ANY)
	QAll            = "A"  // universal (op ALL)
	QScalar         = "S"  // scalar subquery: at most one row
)

// Quantifier is a vertex of the QGM: an iterator ranging over an input
// table (a range edge connects it to its Input box).
type Quantifier struct {
	QID  int
	Name string
	// Type is the iterator type; setformers contribute tuples to the
	// output, quantifiers only restrict it.
	Type string
	// Negated marks NOT EXISTS / NOT IN style quantifiers.
	Negated bool
	// SetPred names the set-predicate function used to fold per-element
	// predicate truth (ANY for E, ALL for A, or a DBC function). Empty
	// for setformers and scalar quantifiers.
	SetPred string
	// Input is the box this iterator ranges over.
	Input *Box
}

// Columns exposes the input box's output columns.
func (q *Quantifier) Columns() []HeadCol { return q.Input.Head }

// IsSetformer reports whether tuples ranged over may contribute to the
// output (types F and PF) rather than merely restrict it.
func (q *Quantifier) IsSetformer() bool {
	return q.Type == ForEach || q.Type == PreserveForeach
}

// Col builds a column reference over this quantifier.
func (q *Quantifier) Col(ord int) *expr.Col {
	hc := q.Input.Head[ord]
	return expr.NewCol(q.QID, ord, q.Name+"."+hc.Name, hc.Type)
}

// HeadCol is one output column of a box: its name, type, and the
// expression (over the box's quantifiers) that computes it. Base-table
// boxes have nil exprs.
type HeadCol struct {
	Name string
	Type datum.TypeID
	Expr expr.Expr
}

// Predicate is a qualifier edge: a conjunct connecting one or more
// quantifiers (a loop when it references a single one).
type Predicate struct {
	Expr expr.Expr
}

// QIDs returns the quantifier ids referenced by the predicate.
func (p *Predicate) QIDs() map[int]bool { return expr.QIDs(p.Expr) }

// DistinctMode describes a box's duplicate handling, needed by the
// operation-merging rewrite rule (the paper's Rule 2 conditions mention
// Tl.distinct and OP2.eliminate-duplicate). The three modes form the
// PERMIT / ENFORCE / PRESERVE lattice of the Starburst rewrite system:
// PERMIT may be strengthened to ENFORCE by a rewrite rule (eliminating
// duplicates where they are semantically irrelevant), but ENFORCE must
// never be weakened back to PERMIT, and PRESERVE is frozen — no rule may
// change it in either direction. The verifier's audit mode checks these
// transitions after every rule firing.
type DistinctMode int

// Duplicate-handling modes.
const (
	// PermitDuplicates: duplicates in the output are acceptable; rules
	// may add or drop them freely.
	PermitDuplicates DistinctMode = iota
	// EnforceDistinct: the operation eliminates duplicates.
	EnforceDistinct
	// PreserveDuplicates: the exact duplicate multiplicity of the output
	// is semantically significant (e.g. the input of a SUM over a
	// non-distinct view); rules must neither introduce nor eliminate
	// duplicates here, and the mode itself is frozen.
	PreserveDuplicates
)

func (d DistinctMode) String() string {
	switch d {
	case EnforceDistinct:
		return "ENFORCE"
	case PreserveDuplicates:
		return "PRESERVE"
	}
	return "PERMIT"
}

// Box is one high-level operation on tables.
type Box struct {
	ID   int
	Kind string
	// Head describes the output table.
	Head []HeadCol
	// Quants are the iterators of the body, in declaration order (for
	// set operations, operand order).
	Quants []*Quantifier
	// Preds are the qualifier edges (conjuncts).
	Preds []*Predicate
	// Distinct is the box's duplicate handling.
	Distinct DistinctMode

	// GroupBy carries grouping expressions for GROUPBY boxes.
	GroupBy []expr.Expr

	// Table is the catalog table for BASE boxes.
	Table *catalog.Table

	// Rows carries literal tuples for VALUES boxes.
	Rows [][]expr.Expr

	// TableFn and TFScalarArgs describe TABLEFN boxes; the table
	// arguments are the box's quantifiers.
	TableFn      *expr.TableFunc
	TFScalarArgs []expr.Expr

	// SetAll marks UNION/INTERSECT/EXCEPT ALL (duplicates kept).
	SetAll bool

	// Recursive marks a UNION box that is the fixpoint of a cyclic
	// table-expression reference.
	Recursive bool

	// ChooseConds optionally guards each CHOOSE alternative (parallel
	// to Quants) with a predicate over host-language parameters. When
	// present, the CHOOSE "is kept in the plan until runtime to allow a
	// decision based on runtime parameters" (section 5, [GRAE89]); the
	// first alternative whose condition holds is executed, with the
	// last as default. When absent, the optimizer picks by cost.
	ChooseConds []expr.Expr

	// TargetTable names the table modified by INSERT/UPDATE/DELETE
	// boxes; TargetCols the column ordinals assigned (INSERT/UPDATE).
	TargetTable *catalog.Table
	TargetCols  []int

	// Ext is an open extension area for DBC-defined box kinds, keeping
	// QGM modifiable without changing its schema.
	Ext map[string]any
}

// FindQuant returns the quantifier with the given id, or nil.
func (b *Box) FindQuant(qid int) *Quantifier {
	for _, q := range b.Quants {
		if q.QID == qid {
			return q
		}
	}
	return nil
}

// RemoveQuant deletes a quantifier from the body.
func (b *Box) RemoveQuant(qid int) {
	for i, q := range b.Quants {
		if q.QID == qid {
			b.Quants = append(b.Quants[:i], b.Quants[i+1:]...)
			return
		}
	}
}

// AdoptQuants moves every quantifier of src into b (at the end of b's
// body, preserving order) and empties src's body. Range edges are
// unchanged: the quantifiers keep their ids and inputs. This is the
// body-restructuring step of operation merging; rules and primitives
// must use it rather than splicing Quants slices directly (enforced by
// starburst-lint's qgm-mutation check).
func (b *Box) AdoptQuants(src *Box) {
	b.Quants = append(b.Quants, src.Quants...)
	src.Quants = nil
}

// Setformers returns the body's setformer iterators.
func (b *Box) Setformers() []*Quantifier {
	var out []*Quantifier
	for _, q := range b.Quants {
		if q.IsSetformer() {
			out = append(out, q)
		}
	}
	return out
}

// SubqueryQuants returns the non-setformer iterators (E/A/S/custom).
func (b *Box) SubqueryQuants() []*Quantifier {
	var out []*Quantifier
	for _, q := range b.Quants {
		if !q.IsSetformer() {
			out = append(out, q)
		}
	}
	return out
}

// OutputDistinct reports whether the box's output provably has no
// duplicates (used by the merge rule's "T1.distinct" condition).
func (b *Box) OutputDistinct() bool {
	switch {
	case b.Distinct == EnforceDistinct:
		return true
	case b.Kind == KindGroupBy:
		return true // one row per group
	case b.Kind == KindUnion, b.Kind == KindIntersect, b.Kind == KindExcept:
		return !b.SetAll
	}
	return false
}

// OrderSpec is one ORDER BY key over the top box's output columns.
type OrderSpec struct {
	Col  int
	Desc bool
}

// Graph is a whole query: boxes linked by range edges, with one
// distinguished top box producing the query result.
type Graph struct {
	Top   *Box
	Boxes []*Box
	// OrderBy and Limit are result modifiers applied above the top box.
	OrderBy []OrderSpec
	Limit   expr.Expr
	// Params records host-variable names seen during translation.
	Params map[string]bool
	// HiddenOrderCols counts trailing head columns of the top box that
	// exist only to carry ORDER BY keys; the optimizer projects them
	// away after sorting.
	HiddenOrderCols int

	nextQID int
	nextBox int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{Params: map[string]bool{}, nextQID: 1, nextBox: 1}
}

// NewBox allocates a box of the given kind and registers it.
func (g *Graph) NewBox(kind string) *Box {
	b := &Box{ID: g.nextBox, Kind: kind}
	g.nextBox++
	g.Boxes = append(g.Boxes, b)
	return b
}

// NewQuant allocates a quantifier of the given type over input and
// appends it to box's body.
func (g *Graph) NewQuant(box *Box, typ, name string, input *Box) *Quantifier {
	q := &Quantifier{QID: g.nextQID, Name: name, Type: typ, Input: input}
	if name == "" {
		q.Name = fmt.Sprintf("Q%d", q.QID)
	}
	g.nextQID++
	box.Quants = append(box.Quants, q)
	return q
}

// RemoveBox unregisters a box (callers must have removed range edges).
func (g *Graph) RemoveBox(b *Box) {
	for i, x := range g.Boxes {
		if x == b {
			g.Boxes = append(g.Boxes[:i], g.Boxes[i+1:]...)
			return
		}
	}
}

// QuantByID finds a quantifier anywhere in the graph.
func (g *Graph) QuantByID(qid int) (*Box, *Quantifier) {
	for _, b := range g.Boxes {
		if q := b.FindQuant(qid); q != nil {
			return b, q
		}
	}
	return nil, nil
}

// RangersOver returns every quantifier (with its owning box) ranging
// over the given box — the incoming range edges.
func (g *Graph) RangersOver(target *Box) []struct {
	Box   *Box
	Quant *Quantifier
} {
	var out []struct {
		Box   *Box
		Quant *Quantifier
	}
	for _, b := range g.Boxes {
		for _, q := range b.Quants {
			if q.Input == target {
				out = append(out, struct {
					Box   *Box
					Quant *Quantifier
				}{b, q})
			}
		}
	}
	return out
}

// GC removes boxes unreachable from the top box (produced by merges).
func (g *Graph) GC() {
	if g.Top == nil {
		return
	}
	live := map[*Box]bool{}
	var mark func(b *Box)
	mark = func(b *Box) {
		if b == nil || live[b] {
			return
		}
		live[b] = true
		for _, q := range b.Quants {
			mark(q.Input)
		}
	}
	mark(g.Top)
	var kept []*Box
	for _, b := range g.Boxes {
		if live[b] {
			kept = append(kept, b)
		}
	}
	g.Boxes = kept
}

// VisitExprs calls f on every expression attached to the box — head
// columns, predicates, grouping expressions, VALUES rows, table-function
// scalar arguments, CHOOSE conditions — with a location label for
// diagnostics ("head[2]", "pred[0]", "groupby[1]", ...). It is the one
// enumeration of a box's expression slots: the structural checker, the
// deep verifier and graph-walking rewrite primitives all share it, so a
// new expression-bearing field added to Box needs updating only here.
func (b *Box) VisitExprs(f func(loc string, e expr.Expr)) {
	for i, hc := range b.Head {
		if hc.Expr != nil {
			f(fmt.Sprintf("head[%d] (%s)", i, hc.Name), hc.Expr)
		}
	}
	for i, p := range b.Preds {
		f(fmt.Sprintf("pred[%d]", i), p.Expr)
	}
	for i, ge := range b.GroupBy {
		f(fmt.Sprintf("groupby[%d]", i), ge)
	}
	for ri, row := range b.Rows {
		for ci, e := range row {
			f(fmt.Sprintf("values[%d][%d]", ri, ci), e)
		}
	}
	for i, e := range b.TFScalarArgs {
		f(fmt.Sprintf("tfarg[%d]", i), e)
	}
	for i, e := range b.ChooseConds {
		if e != nil {
			f(fmt.Sprintf("choosecond[%d]", i), e)
		}
	}
}

// deepVerifier is installed by internal/verify (which cannot be imported
// from here without a cycle). When present, Check delegates to it so the
// deep semantic verifier is the single source of truth for QGM validity;
// the built-in structural pass remains as the fallback for binaries that
// do not link the verifier.
var deepVerifier func(*Graph) error

// RegisterVerifier installs the deep verifier Check delegates to.
func RegisterVerifier(f func(*Graph) error) { deepVerifier = f }

// Check validates consistency: every rule must transform a consistent
// QGM into another consistent QGM, and the rule engine asserts this
// between rule firings. When internal/verify is linked in, Check runs
// its deep semantic verifier; otherwise it runs the structural pass.
func (g *Graph) Check() error {
	if deepVerifier != nil {
		return deepVerifier(g)
	}
	return g.StructuralCheck()
}

// StructuralCheck is the minimal structural consistency pass: box and
// quantifier registration, range-edge integrity, and resolvability of
// every column reference in every expression slot (head, predicates,
// group-by, VALUES rows, table-function arguments, CHOOSE conditions).
func (g *Graph) StructuralCheck() error {
	if g.Top == nil {
		return fmt.Errorf("qgm: graph has no top box")
	}
	seen := map[*Box]bool{}
	for _, b := range g.Boxes {
		seen[b] = true
	}
	if !seen[g.Top] {
		return fmt.Errorf("qgm: top box not registered")
	}
	qids := map[int]bool{}
	for _, b := range g.Boxes {
		for _, q := range b.Quants {
			if qids[q.QID] {
				return fmt.Errorf("qgm: duplicate quantifier id %d", q.QID)
			}
			qids[q.QID] = true
			if q.Input == nil {
				return fmt.Errorf("qgm: quantifier %s(q%d) in box %d has no range edge", q.Name, q.QID, b.ID)
			}
			if !seen[q.Input] {
				return fmt.Errorf("qgm: quantifier q%d ranges over unregistered box", q.QID)
			}
		}
	}
	for _, b := range g.Boxes {
		for i, p := range b.Preds {
			if p == nil || p.Expr == nil {
				return fmt.Errorf("qgm: box %d has a nil predicate (pred[%d])", b.ID, i)
			}
		}
		// Every column reference must resolve to a quantifier visible
		// in this box or an enclosing one (correlation); visibility is
		// approximated by existence in the graph.
		var err error
		b.VisitExprs(func(loc string, e expr.Expr) {
			if err != nil {
				return
			}
			expr.Walk(e, func(x expr.Expr) bool {
				if c, ok := x.(*expr.Col); ok && c.QID >= 0 {
					if !qids[c.QID] {
						err = fmt.Errorf("qgm: box %d %s references unknown quantifier q%d (%s)", b.ID, loc, c.QID, c.Name)
						return false
					}
				}
				return true
			})
		})
		if err != nil {
			return err
		}
		if b.Kind == KindBase && b.Table == nil {
			return fmt.Errorf("qgm: base box %d has no table", b.ID)
		}
	}
	return nil
}

// String renders the graph in a stable textual form used by tests and
// EXPLAIN output; the rendering of a box mirrors Figure 2's elements:
// head, body iterators with types, and qualifier edges.
func (g *Graph) String() string {
	var b strings.Builder
	boxes := append([]*Box(nil), g.Boxes...)
	sort.Slice(boxes, func(i, j int) bool { return boxes[i].ID < boxes[j].ID })
	for _, box := range boxes {
		b.WriteString(DumpBox(box, box == g.Top))
	}
	return b.String()
}

// DumpBox renders one box in the Graph.String format; the rewrite
// engine's audit mode uses it for before/after firing diffs.
func DumpBox(box *Box, top bool) string {
	var b strings.Builder
	topMark := ""
	if top {
		topMark = " (top)"
	}
	fmt.Fprintf(&b, "Box %d: %s%s", box.ID, box.Kind, topMark)
	if box.Kind == KindBase {
		fmt.Fprintf(&b, " table=%s", box.Table.Name)
	}
	switch box.Distinct {
	case EnforceDistinct:
		b.WriteString(" distinct")
	case PreserveDuplicates:
		b.WriteString(" preserve-dups")
	}
	if box.SetAll {
		b.WriteString(" all")
	}
	if box.Recursive {
		b.WriteString(" recursive")
	}
	b.WriteString("\n")
	if len(box.Head) > 0 && box.Kind != KindBase {
		b.WriteString("  head:")
		for _, hc := range box.Head {
			if hc.Expr != nil {
				fmt.Fprintf(&b, " %s=%s", hc.Name, hc.Expr)
			} else {
				fmt.Fprintf(&b, " %s", hc.Name)
			}
		}
		b.WriteString("\n")
	}
	for _, q := range box.Quants {
		neg := ""
		if q.Negated {
			neg = " negated"
		}
		fmt.Fprintf(&b, "  quant %s(q%d) type=%s%s over box %d\n", q.Name, q.QID, q.Type, neg, q.Input.ID)
	}
	if len(box.GroupBy) > 0 {
		b.WriteString("  group by:")
		for _, e := range box.GroupBy {
			fmt.Fprintf(&b, " %s", e)
		}
		b.WriteString("\n")
	}
	for _, p := range box.Preds {
		fmt.Fprintf(&b, "  pred: %s\n", p.Expr)
	}
	return b.String()
}

// HeadNames lists a box's output column names.
func (b *Box) HeadNames() []string {
	out := make([]string, len(b.Head))
	for i, hc := range b.Head {
		out[i] = hc.Name
	}
	return out
}

// HeadTypes lists a box's output column types.
func (b *Box) HeadTypes() []datum.TypeID {
	out := make([]datum.TypeID, len(b.Head))
	for i, hc := range b.Head {
		out[i] = hc.Type
	}
	return out
}
