package qgm

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/sql"
)

// Translator turns parsed Hydrogen into QGM, performing semantic
// analysis on the way (name resolution, type checking, aggregate
// placement) so that "the QGM produced is guaranteed to be valid".
type Translator struct {
	cat  *catalog.Catalog
	g    *Graph
	base map[string]*Box // shared BASE box per stored table
	// viewDepth guards against recursive view definitions.
	viewDepth int
	// coreScopes retains each plain SELECT box's FROM scope so that
	// top-level ORDER BY keys may reference non-projected columns
	// (added as hidden head columns, trimmed after the sort).
	coreScopes map[*Box]*scope
}

// Translate compiles a query statement into a QGM graph.
func Translate(cat *catalog.Catalog, stmt *sql.SelectStmt) (*Graph, error) {
	t := &Translator{cat: cat, g: NewGraph(), base: map[string]*Box{}, coreScopes: map[*Box]*scope{}}
	top, err := t.translateSelect(stmt, nil, true)
	if err != nil {
		return nil, err
	}
	t.g.Top = top
	t.g.GC()
	if err := t.g.Check(); err != nil {
		return nil, err
	}
	return t.g, nil
}

// TranslateStatement compiles any DML statement (SELECT, INSERT,
// UPDATE, DELETE) into a QGM graph; DDL is handled by the engine
// without a QGM.
func TranslateStatement(cat *catalog.Catalog, stmt sql.Statement) (*Graph, error) {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return Translate(cat, s)
	case *sql.InsertStmt:
		return translateInsert(cat, s)
	case *sql.UpdateStmt:
		return translateUpdate(cat, s)
	case *sql.DeleteStmt:
		return translateDelete(cat, s)
	}
	return nil, fmt.Errorf("qgm: statement %T has no QGM translation", stmt)
}

// ---------------------------------------------------------------------
// Scopes

// binding maps one FROM-clause alias to the quantifier that carries its
// columns. For aliases nested inside an outer-join box the quantifier
// is the one over the join box and ords select the alias's slice of the
// join output.
type binding struct {
	alias string
	q     *Quantifier
	names []string // uppercased column names
	ords  []int    // ordinal in q.Input.Head per name
}

type scope struct {
	parent   *scope
	bindings []*binding
	ctes     map[string]*Box
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, ctes: map[string]*Box{}}
}

func (s *scope) bind(b *binding) error {
	for _, x := range s.bindings {
		if strings.EqualFold(x.alias, b.alias) {
			return fmt.Errorf("qgm: duplicate table alias %s", b.alias)
		}
	}
	s.bindings = append(s.bindings, b)
	return nil
}

// cte resolves a table-expression name through the scope chain.
func (s *scope) cte(name string) *Box {
	for sc := s; sc != nil; sc = sc.parent {
		if b, ok := sc.ctes[strings.ToUpper(name)]; ok {
			return b
		}
	}
	return nil
}

// resolve finds a column reference, searching the current scope first
// and then enclosing scopes (correlation).
func (s *scope) resolve(qual, name string) (*expr.Col, error) {
	uname := strings.ToUpper(name)
	for sc := s; sc != nil; sc = sc.parent {
		if qual != "" {
			for _, b := range sc.bindings {
				if strings.EqualFold(b.alias, qual) {
					for i, n := range b.names {
						if n == uname {
							return colOf(b, i), nil
						}
					}
					return nil, fmt.Errorf("qgm: no column %s in %s", name, qual)
				}
			}
			continue
		}
		var found *expr.Col
		for _, b := range sc.bindings {
			for i, n := range b.names {
				if n == uname {
					if found != nil {
						return nil, fmt.Errorf("qgm: ambiguous column %s", name)
					}
					found = colOf(b, i)
				}
			}
		}
		if found != nil {
			return found, nil
		}
	}
	if qual != "" {
		return nil, fmt.Errorf("qgm: unknown table or alias %s", qual)
	}
	return nil, fmt.Errorf("qgm: unknown column %s", name)
}

func colOf(b *binding, i int) *expr.Col {
	ord := b.ords[i]
	hc := b.q.Input.Head[ord]
	return expr.NewCol(b.q.QID, ord, b.alias+"."+b.names[i], hc.Type)
}

// ---------------------------------------------------------------------
// Query translation

func (t *Translator) translateSelect(stmt *sql.SelectStmt, parent *scope, isTop bool) (*Box, error) {
	sc := newScope(parent)
	for _, cte := range stmt.With {
		if sc.ctes[strings.ToUpper(cte.Name)] != nil {
			return nil, fmt.Errorf("qgm: duplicate table expression %s", cte.Name)
		}
		var box *Box
		var err error
		if cte.Recursive {
			box, err = t.translateRecursiveCTE(cte, sc)
		} else {
			box, err = t.translateSelect(cte.Query, sc, false)
			if err == nil && len(cte.Cols) > 0 {
				if len(cte.Cols) != len(box.Head) {
					return nil, fmt.Errorf("qgm: table expression %s: %d names for %d columns",
						cte.Name, len(cte.Cols), len(box.Head))
				}
				for i, n := range cte.Cols {
					box.Head[i].Name = strings.ToUpper(n)
				}
			}
		}
		if err != nil {
			return nil, err
		}
		sc.ctes[strings.ToUpper(cte.Name)] = box
	}
	box, err := t.translateQueryExpr(stmt.Body, sc)
	if err != nil {
		return nil, err
	}
	if len(stmt.OrderBy) > 0 || stmt.Limit != nil {
		if !isTop {
			return nil, fmt.Errorf("qgm: ORDER BY/LIMIT only allowed at the outermost query")
		}
		for _, item := range stmt.OrderBy {
			ord, err := resolveOrderKey(item.Expr, box)
			if err != nil {
				// Fall back to a hidden head column for sort keys that
				// are not in the select list (plain, duplicate-
				// preserving SELECT boxes only — adding columns to a
				// DISTINCT box would change its semantics).
				hidden, herr := t.hiddenOrderCol(item.Expr, box)
				if herr != nil {
					return nil, err // report the original error
				}
				ord = hidden
			}
			t.g.OrderBy = append(t.g.OrderBy, OrderSpec{Col: ord, Desc: item.Desc})
		}
		if stmt.Limit != nil {
			le, err := t.translateScalar(stmt.Limit, newScope(nil), nil)
			if err != nil {
				return nil, err
			}
			t.g.Limit = le
		}
	}
	return box, nil
}

// resolveOrderKey resolves an ORDER BY key against the output columns:
// by name/alias or by 1-based ordinal.
func resolveOrderKey(e sql.Expr, box *Box) (int, error) {
	switch x := e.(type) {
	case *sql.Lit:
		if x.Val.Type() == datum.TInt {
			n := int(x.Val.Int())
			if n < 1 || n > len(box.Head) {
				return 0, fmt.Errorf("qgm: ORDER BY position %d out of range", n)
			}
			return n - 1, nil
		}
	case *sql.Ident:
		for i, hc := range box.Head {
			if strings.EqualFold(hc.Name, x.Name) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("qgm: ORDER BY column %s is not in the select list", x.Name)
	}
	return 0, fmt.Errorf("qgm: unsupported ORDER BY key %s (use an output column or position)", e)
}

// translateRecursiveCTE builds a recursive UNION box: the first branch
// is translated before the name is bound (the seed); remaining branches
// may reference the box itself, forming the cyclic range edge that
// expresses recursion (section 2).
func (t *Translator) translateRecursiveCTE(cte sql.CTE, sc *scope) (*Box, error) {
	if len(cte.Query.With) > 0 || len(cte.Query.OrderBy) > 0 {
		return nil, fmt.Errorf("qgm: recursive table expression %s must be a plain union", cte.Name)
	}
	branches := flattenUnion(cte.Query.Body)
	if len(branches) < 2 {
		return nil, fmt.Errorf("qgm: recursive table expression %s needs a seed and a recursive branch", cte.Name)
	}
	u := t.g.NewBox(KindUnion)
	u.Recursive = true
	u.Distinct = EnforceDistinct // fixpoints require duplicate elimination to terminate

	seed, err := t.translateQueryExpr(branches[0], sc)
	if err != nil {
		return nil, err
	}
	// Head from the seed (renamed by the CTE column list).
	u.Head = make([]HeadCol, len(seed.Head))
	for i, hc := range seed.Head {
		name := hc.Name
		if i < len(cte.Cols) {
			name = strings.ToUpper(cte.Cols[i])
		}
		u.Head[i] = HeadCol{Name: name, Type: hc.Type}
	}
	t.g.NewQuant(u, ForEach, "", seed)

	// Bind the name, then translate recursive branches.
	inner := newScope(sc)
	inner.ctes[strings.ToUpper(cte.Name)] = u
	for _, br := range branches[1:] {
		b, err := t.translateQueryExpr(br, inner)
		if err != nil {
			return nil, err
		}
		if len(b.Head) != len(u.Head) {
			return nil, fmt.Errorf("qgm: recursive branch of %s has %d columns, want %d",
				cte.Name, len(b.Head), len(u.Head))
		}
		t.g.NewQuant(u, ForEach, "", b)
	}
	return u, nil
}

func flattenUnion(qe sql.QueryExpr) []sql.QueryExpr {
	if s, ok := qe.(*sql.SetOp); ok && s.Kind == sql.Union {
		return append(flattenUnion(s.L), flattenUnion(s.R)...)
	}
	return []sql.QueryExpr{qe}
}

func (t *Translator) translateQueryExpr(qe sql.QueryExpr, sc *scope) (*Box, error) {
	switch x := qe.(type) {
	case *sql.SelectCore:
		return t.translateCore(x, sc)
	case *sql.SetOp:
		l, err := t.translateQueryExpr(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := t.translateQueryExpr(x.R, sc)
		if err != nil {
			return nil, err
		}
		if len(l.Head) != len(r.Head) {
			return nil, fmt.Errorf("qgm: %s operands have %d and %d columns",
				x.Kind, len(l.Head), len(r.Head))
		}
		kind := map[sql.SetOpKind]string{
			sql.Union: KindUnion, sql.Intersect: KindIntersect, sql.Except: KindExcept,
		}[x.Kind]
		box := t.g.NewBox(kind)
		box.SetAll = x.All
		if !x.All {
			box.Distinct = EnforceDistinct
		}
		box.Head = make([]HeadCol, len(l.Head))
		for i := range l.Head {
			typ := l.Head[i].Type
			if !datum.Compatible(r.Head[i].Type, typ) && !datum.Compatible(typ, r.Head[i].Type) {
				return nil, fmt.Errorf("qgm: %s column %d: %s vs %s", x.Kind, i+1,
					datum.TypeName(typ), datum.TypeName(r.Head[i].Type))
			}
			if typ == datum.TNull {
				typ = r.Head[i].Type
			}
			if typ == datum.TInt && r.Head[i].Type == datum.TFloat {
				typ = datum.TFloat
			}
			box.Head[i] = HeadCol{Name: l.Head[i].Name, Type: typ}
		}
		t.g.NewQuant(box, ForEach, "", l)
		t.g.NewQuant(box, ForEach, "", r)
		return box, nil
	}
	return nil, fmt.Errorf("qgm: unknown query expression %T", qe)
}

func (t *Translator) translateCore(core *sql.SelectCore, sc *scope) (*Box, error) {
	box := t.g.NewBox(KindSelect)
	fromScope := newScope(sc)
	for _, ref := range core.From {
		if err := t.translateTableRef(ref, box, fromScope); err != nil {
			return nil, err
		}
	}
	if core.Where != nil {
		if err := t.translateConjuncts(core.Where, box, fromScope); err != nil {
			return nil, err
		}
	}

	// Detect aggregation.
	hasAgg := len(core.GroupBy) > 0 || core.Having != nil
	if !hasAgg {
		for _, item := range core.Items {
			if item.Star {
				continue
			}
			if containsAggAST(item.Expr) {
				hasAgg = true
				break
			}
		}
	}
	if !hasAgg {
		if err := t.buildPlainHead(core, box, fromScope); err != nil {
			return nil, err
		}
		if core.Distinct {
			box.Distinct = EnforceDistinct
		}
		if t.coreScopes != nil {
			t.coreScopes[box] = fromScope
		}
		return box, nil
	}
	return t.buildAggregation(core, box, fromScope)
}

// containsAggAST detects aggregate calls syntactically: a FuncCall with
// a star, or whose name is an aggregate in a fresh registry is decided
// later; at AST level we flag any FuncCall for deeper inspection during
// expression translation, so here we only detect the unambiguous forms.
func containsAggAST(e sql.Expr) bool {
	found := false
	sql.WalkExprs(e, func(x sql.Expr) bool {
		if fc, ok := x.(*sql.FuncCall); ok {
			if fc.Star || fc.Distinct || isBuiltinAggName(fc.Name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isBuiltinAggName(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE":
		return true
	}
	return false
}

func (t *Translator) buildPlainHead(core *sql.SelectCore, box *Box, sc *scope) error {
	n := 0
	for _, item := range core.Items {
		if item.Star {
			cols, err := t.expandStar(item.StarQualifier, sc)
			if err != nil {
				return err
			}
			box.Head = append(box.Head, cols...)
			continue
		}
		e, err := t.translateScalar(item.Expr, sc, box)
		if err != nil {
			return err
		}
		if expr.HasAggregate(e) {
			return fmt.Errorf("qgm: aggregate in select list requires GROUP BY context")
		}
		n++
		box.Head = append(box.Head, HeadCol{
			Name: headName(item, e, len(box.Head)),
			Type: e.Type(),
			Expr: e,
		})
	}
	if len(box.Head) == 0 {
		return fmt.Errorf("qgm: empty select list")
	}
	return nil
}

func headName(item sql.SelectItem, e expr.Expr, ord int) string {
	if item.Alias != "" {
		return strings.ToUpper(item.Alias)
	}
	if id, ok := item.Expr.(*sql.Ident); ok {
		return strings.ToUpper(id.Name)
	}
	if fc, ok := item.Expr.(*sql.FuncCall); ok {
		return strings.ToUpper(fc.Name)
	}
	return fmt.Sprintf("COL%d", ord+1)
}

// expandStar expands * or alias.* against the FROM scope.
func (t *Translator) expandStar(qual string, sc *scope) ([]HeadCol, error) {
	var out []HeadCol
	for _, b := range sc.bindings {
		if qual != "" && !strings.EqualFold(b.alias, qual) {
			continue
		}
		for i, n := range b.names {
			out = append(out, HeadCol{Name: n, Type: b.q.Input.Head[b.ords[i]].Type, Expr: colOf(b, i)})
		}
	}
	if len(out) == 0 {
		if qual != "" {
			return nil, fmt.Errorf("qgm: unknown table or alias %s in %s.*", qual, qual)
		}
		return nil, fmt.Errorf("qgm: SELECT * with empty FROM")
	}
	return out, nil
}

// buildAggregation splits an aggregating SELECT core into the lower
// SELECT box (already built: FROM + WHERE), a GROUPBY box, and an upper
// SELECT box carrying HAVING and the final projection.
func (t *Translator) buildAggregation(core *sql.SelectCore, lower *Box, sc *scope) (*Box, error) {
	// Translate grouping expressions and collect aggregates from the
	// select list and HAVING against the lower scope.
	var groupExprs []expr.Expr
	for _, ge := range core.GroupBy {
		e, err := t.translateScalar(ge, sc, lower)
		if err != nil {
			return nil, err
		}
		if expr.HasAggregate(e) {
			return nil, fmt.Errorf("qgm: aggregate in GROUP BY")
		}
		groupExprs = append(groupExprs, e)
	}
	// The upper SELECT box is created early so that subqueries inside
	// the select list or HAVING attach their quantifiers to it (not to
	// the lower box, where they would look like non-grouped columns).
	upper := t.g.NewBox(KindSelect)

	type itemExpr struct {
		item sql.SelectItem
		e    expr.Expr
	}
	var items []itemExpr
	for _, item := range core.Items {
		if item.Star {
			return nil, fmt.Errorf("qgm: SELECT * cannot be combined with GROUP BY")
		}
		e, err := t.translateScalar(item.Expr, sc, upper)
		if err != nil {
			return nil, err
		}
		items = append(items, itemExpr{item, e})
	}
	var havingExpr expr.Expr
	if core.Having != nil {
		e, err := t.translateScalar(core.Having, sc, upper)
		if err != nil {
			return nil, err
		}
		havingExpr = e
	}

	// Lower head: group exprs first, then each distinct aggregate's
	// argument is computed by the group box directly from lower cols;
	// simplest faithful layout: lower head = group exprs ++ agg args.
	var aggs []*expr.AggCall
	collect := func(e expr.Expr) {
		for _, a := range expr.CollectAggregates(e) {
			dup := false
			for _, x := range aggs {
				if x.String() == a.String() {
					dup = true
					break
				}
			}
			if !dup {
				aggs = append(aggs, a)
			}
		}
	}
	for _, ie := range items {
		collect(ie.e)
	}
	if havingExpr != nil {
		collect(havingExpr)
	}
	if len(aggs) == 0 && len(groupExprs) == 0 {
		return nil, fmt.Errorf("qgm: HAVING without aggregates or GROUP BY")
	}

	lower.Head = nil
	for i, ge := range groupExprs {
		lower.Head = append(lower.Head, HeadCol{Name: fmt.Sprintf("GCOL%d", i+1), Type: ge.Type(), Expr: ge})
	}
	for i, a := range aggs {
		arg := a.Arg
		if arg == nil { // COUNT(*)
			arg = expr.NewConst(datum.NewInt(1))
		}
		lower.Head = append(lower.Head, HeadCol{Name: fmt.Sprintf("ACOL%d", i+1), Type: arg.Type(), Expr: arg})
	}

	// GROUPBY box.
	gb := t.g.NewBox(KindGroupBy)
	gq := t.g.NewQuant(gb, ForEach, "", lower)
	for i := range groupExprs {
		gb.GroupBy = append(gb.GroupBy, gq.Col(i))
		gb.Head = append(gb.Head, HeadCol{
			Name: fmt.Sprintf("GCOL%d", i+1), Type: lower.Head[i].Type, Expr: gq.Col(i)})
	}
	for i, a := range aggs {
		na := &expr.AggCall{}
		*na = *a
		na.Arg = gq.Col(len(groupExprs) + i)
		gb.Head = append(gb.Head, HeadCol{Name: fmt.Sprintf("AGG%d", i+1), Type: a.Type(), Expr: na})
	}

	// Wire the upper SELECT box over the group box.
	uq := t.g.NewQuant(upper, ForEach, "", gb)

	// substitute replaces group expressions and aggregate calls with
	// references to the group box's head.
	substitute := func(e expr.Expr) (expr.Expr, error) {
		out := expr.Transform(e, func(x expr.Expr) expr.Expr {
			if a, ok := x.(*expr.AggCall); ok {
				for i, g := range aggs {
					if g.String() == a.String() {
						return uq.Col(len(groupExprs) + i)
					}
				}
				return x
			}
			for i, g := range groupExprs {
				if expr.EqualExprs(x, g) {
					return uq.Col(i)
				}
			}
			return x
		})
		// Any column reference still pointing at a lower quantifier is
		// a non-grouped column.
		var err error
		expr.Walk(out, func(x expr.Expr) bool {
			if c, ok := x.(*expr.Col); ok && lower.FindQuant(c.QID) != nil {
				// References to upper's own quantifiers (uq, subquery
				// quantifiers) and correlation with enclosing queries
				// are fine; only ungrouped lower-scope columns err.
				err = fmt.Errorf("qgm: column %s must appear in GROUP BY or inside an aggregate", c.Name)
				return false
			}
			if _, ok := x.(*expr.AggCall); ok {
				err = fmt.Errorf("qgm: misplaced aggregate")
				return false
			}
			return true
		})
		return out, err
	}

	for idx, ie := range items {
		se, err := substitute(ie.e)
		if err != nil {
			return nil, err
		}
		upper.Head = append(upper.Head, HeadCol{
			Name: headName(ie.item, se, idx), Type: se.Type(), Expr: se})
	}
	if havingExpr != nil {
		he, err := substitute(havingExpr)
		if err != nil {
			return nil, err
		}
		upper.Preds = append(upper.Preds, &Predicate{Expr: he})
	}
	if core.Distinct {
		upper.Distinct = EnforceDistinct
	}
	return upper, nil
}

// ---------------------------------------------------------------------
// FROM clause

func (t *Translator) translateTableRef(ref sql.TableRef, box *Box, sc *scope) error {
	switch x := ref.(type) {
	case *sql.BaseTable:
		return t.translateBaseTable(x, box, sc, ForEach)

	case *sql.SubqueryRef:
		// The FROM scope itself is the parent, so a table expression
		// may be "correlated with other parts of the query" (section
		// 2): siblings to its left are visible, and the optimizer
		// applies such lateral quantifiers per outer tuple.
		sub, err := t.translateSelect(x.Query, sc, false)
		if err != nil {
			return err
		}
		if len(x.Cols) > 0 {
			if len(x.Cols) != len(sub.Head) {
				return fmt.Errorf("qgm: %d column names for %d columns", len(x.Cols), len(sub.Head))
			}
			for i, n := range x.Cols {
				sub.Head[i].Name = strings.ToUpper(n)
			}
		}
		alias := x.Alias
		if alias == "" {
			alias = fmt.Sprintf("SUBQ%d", sub.ID)
		}
		q := t.g.NewQuant(box, ForEach, alias, sub)
		return sc.bind(identityBinding(alias, q))

	case *sql.TableFuncRef:
		return t.translateTableFunc(x, box, sc)

	case *sql.JoinRef:
		return t.translateJoin(x, box, sc)
	}
	return fmt.Errorf("qgm: unknown table reference %T", ref)
}

func identityBinding(alias string, q *Quantifier) *binding {
	b := &binding{alias: alias, q: q}
	for i, hc := range q.Input.Head {
		b.names = append(b.names, strings.ToUpper(hc.Name))
		b.ords = append(b.ords, i)
	}
	return b
}

// translateBaseTable resolves a name to a table expression, view, or
// stored table, in that order, and adds a quantifier of the given type.
func (t *Translator) translateBaseTable(x *sql.BaseTable, box *Box, sc *scope, qtype string) error {
	alias := x.Alias
	if alias == "" {
		alias = x.Name
	}
	// Table expression in scope?
	if cteBox := sc.cte(x.Name); cteBox != nil {
		q := t.g.NewQuant(box, qtype, alias, cteBox)
		return sc.bind(identityBinding(alias, q))
	}
	// View? Views may appear anywhere a base table can (section 2);
	// each use is translated afresh, leaving merge-vs-materialize to
	// the rewrite phase.
	if v, ok := t.cat.View(x.Name); ok {
		if t.viewDepth > 16 {
			return fmt.Errorf("qgm: view nesting too deep (cycle through %s?)", x.Name)
		}
		t.viewDepth++
		defer func() { t.viewDepth-- }()
		q, err := sql.ParseQuery(v.Text)
		if err != nil {
			return fmt.Errorf("qgm: view %s: %w", v.Name, err)
		}
		vbox, err := t.translateSelect(q, nil, false)
		if err != nil {
			return fmt.Errorf("qgm: view %s: %w", v.Name, err)
		}
		if len(v.ColNames) > 0 {
			if len(v.ColNames) != len(vbox.Head) {
				return fmt.Errorf("qgm: view %s: %d names for %d columns", v.Name, len(v.ColNames), len(vbox.Head))
			}
			for i, n := range v.ColNames {
				vbox.Head[i].Name = strings.ToUpper(n)
			}
		}
		qq := t.g.NewQuant(box, qtype, alias, vbox)
		return sc.bind(identityBinding(alias, qq))
	}
	// Stored table.
	tbl, ok := t.cat.Table(x.Name)
	if !ok {
		return fmt.Errorf("qgm: unknown table %s", x.Name)
	}
	bb := t.base[tbl.Name]
	if bb == nil {
		bb = t.g.NewBox(KindBase)
		bb.Table = tbl
		for _, c := range tbl.Cols {
			bb.Head = append(bb.Head, HeadCol{Name: strings.ToUpper(c.Name), Type: c.Type})
		}
		t.base[tbl.Name] = bb
	}
	q := t.g.NewQuant(box, qtype, alias, bb)
	return sc.bind(identityBinding(alias, q))
}

func (t *Translator) translateTableFunc(x *sql.TableFuncRef, box *Box, sc *scope) error {
	tf := t.cat.Funcs.Table(x.Name)
	if tf == nil {
		return fmt.Errorf("qgm: unknown table function %s", x.Name)
	}
	if len(x.TableArgs) != tf.NumTables {
		return fmt.Errorf("qgm: %s takes %d table arguments, got %d", tf.Name, tf.NumTables, len(x.TableArgs))
	}
	if len(x.ScalarArgs) != tf.NumScalars {
		return fmt.Errorf("qgm: %s takes %d scalar arguments, got %d", tf.Name, tf.NumScalars, len(x.ScalarArgs))
	}
	fnBox := t.g.NewBox(KindTableFn)
	fnBox.TableFn = tf
	inputs := make([][]expr.ColumnDef, 0, len(x.TableArgs))
	for _, ta := range x.TableArgs {
		inScope := newScope(sc.parent)
		if err := t.translateTableRef(ta, fnBox, inScope); err != nil {
			return err
		}
		q := fnBox.Quants[len(fnBox.Quants)-1]
		var defs []expr.ColumnDef
		for _, hc := range q.Input.Head {
			defs = append(defs, expr.ColumnDef{Name: hc.Name, Type: hc.Type})
		}
		inputs = append(inputs, defs)
	}
	var scalarVals []datum.Value
	for _, sa := range x.ScalarArgs {
		e, err := t.translateScalar(sa, sc, fnBox)
		if err != nil {
			return err
		}
		fnBox.TFScalarArgs = append(fnBox.TFScalarArgs, e)
		if c, ok := e.(*expr.Const); ok {
			scalarVals = append(scalarVals, c.Val)
		} else {
			scalarVals = append(scalarVals, datum.Null)
		}
	}
	cols, err := tf.OutputCols(inputs, scalarVals)
	if err != nil {
		return fmt.Errorf("qgm: %s: %w", tf.Name, err)
	}
	for _, c := range cols {
		fnBox.Head = append(fnBox.Head, HeadCol{Name: strings.ToUpper(c.Name), Type: c.Type})
	}
	alias := x.Alias
	if alias == "" {
		alias = x.Name
	}
	q := t.g.NewQuant(box, ForEach, alias, fnBox)
	return sc.bind(identityBinding(alias, q))
}

// translateJoin handles explicit JOIN syntax. Inner joins dissolve into
// plain quantifiers plus predicates on the enclosing box. Outer joins
// become their own operation box whose preserved side uses the PF
// setformer type — the paper's worked extension (section 4).
func (t *Translator) translateJoin(x *sql.JoinRef, box *Box, sc *scope) error {
	if x.Kind == sql.InnerJoin {
		if err := t.translateTableRef(x.L, box, sc); err != nil {
			return err
		}
		if err := t.translateTableRef(x.R, box, sc); err != nil {
			return err
		}
		return t.translateConjuncts(x.On, box, sc)
	}

	// LEFT/RIGHT OUTER JOIN. Normalize RIGHT to LEFT by swapping.
	left, right := x.L, x.R
	if x.Kind == sql.RightOuterJoin {
		left, right = right, left
	}
	oj := t.g.NewBox(KindOuterJoin)
	ojScope := newScope(sc.parent)
	mark := len(oj.Quants)
	if err := t.translateTableRef(left, oj, ojScope); err != nil {
		return err
	}
	// Every setformer from the preserved side becomes PF.
	for _, q := range oj.Quants[mark:] {
		if q.Type == ForEach {
			q.Type = PreserveForeach
		}
	}
	if err := t.translateTableRef(right, oj, ojScope); err != nil {
		return err
	}
	if err := t.translateConjuncts(x.On, oj, ojScope); err != nil {
		return err
	}
	// Head: every column of every binding, in order.
	type slice struct {
		b     *binding
		start int
	}
	var slices []slice
	for _, b := range ojScope.bindings {
		slices = append(slices, slice{b, len(oj.Head)})
		for i := range b.names {
			oj.Head = append(oj.Head, HeadCol{
				Name: b.names[i],
				Type: b.q.Input.Head[b.ords[i]].Type,
				Expr: colOf(b, i),
			})
		}
	}
	q := t.g.NewQuant(box, ForEach, fmt.Sprintf("OJ%d", oj.ID), oj)
	// Re-expose the inner aliases through the join quantifier.
	for _, s := range slices {
		nb := &binding{alias: s.b.alias, q: q}
		for i := range s.b.names {
			nb.names = append(nb.names, s.b.names[i])
			nb.ords = append(nb.ords, s.start+i)
		}
		if err := sc.bind(nb); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Predicates and scalar expressions

// translateConjuncts splits a boolean expression into conjuncts and
// adds each as a qualifier edge. Subqueries in conjunctive positions
// become quantifiers; under OR or other non-conjunctive contexts they
// stay inside the expression as deferred subplans (executed by the OR
// operator machinery, section 7).
func (t *Translator) translateConjuncts(e sql.Expr, box *Box, sc *scope) error {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.Binary); ok && b.Op == "AND" {
		if err := t.translateConjuncts(b.L, box, sc); err != nil {
			return err
		}
		return t.translateConjuncts(b.R, box, sc)
	}
	pe, err := t.translatePredicate(e, sc, box)
	if err != nil {
		return err
	}
	if expr.HasAggregate(pe) {
		return fmt.Errorf("qgm: aggregate not allowed in WHERE")
	}
	box.Preds = append(box.Preds, &Predicate{Expr: pe})
	return nil
}

// translatePredicate translates a conjunct, allowing subquery
// constructs to become quantifiers of box.
func (t *Translator) translatePredicate(e sql.Expr, sc *scope, box *Box) (expr.Expr, error) {
	switch x := e.(type) {
	case *sql.InExpr:
		if x.Query != nil {
			return t.subqueryQuant(x.Query, sc, box, QExists, "ANY", x.Negated, "=", x.E)
		}
	case *sql.ExistsExpr:
		return t.existsQuant(x.Query, sc, box, x.Negated)
	case *sql.QuantifiedCmp:
		qtype, setPred := QExists, "ANY"
		switch x.Quant {
		case "ANY", "SOME":
		case "ALL":
			qtype, setPred = QAll, "ALL"
		default:
			if t.cat.Funcs.SetPredicate(x.Quant) == nil {
				return nil, fmt.Errorf("qgm: unknown set predicate %s", x.Quant)
			}
			qtype, setPred = x.Quant, x.Quant
		}
		return t.subqueryQuant(x.Query, sc, box, qtype, setPred, false, x.Op, x.L)
	case *sql.Unary:
		if x.Op == "NOT" {
			switch inner := x.E.(type) {
			case *sql.ExistsExpr:
				return t.existsQuant(inner.Query, sc, box, !inner.Negated)
			case *sql.InExpr:
				if inner.Query != nil {
					return t.subqueryQuant(inner.Query, sc, box, QExists, "ANY", !inner.Negated, "=", inner.E)
				}
			}
		}
	}
	return t.translateScalar(e, sc, box)
}

// subqueryQuant creates a subquery quantifier and returns the predicate
// expression "lhs op q.col" linking it.
func (t *Translator) subqueryQuant(q *sql.SelectStmt, sc *scope, box *Box,
	qtype, setPred string, negated bool, op string, lhs sql.Expr) (expr.Expr, error) {
	sub, err := t.translateSelect(q, sc, false)
	if err != nil {
		return nil, err
	}
	if len(sub.Head) != 1 {
		return nil, fmt.Errorf("qgm: subquery used as a value must return one column, got %d", len(sub.Head))
	}
	le, err := t.translateScalar(lhs, sc, box)
	if err != nil {
		return nil, err
	}
	quant := t.g.NewQuant(box, qtype, "", sub)
	quant.SetPred = setPred
	quant.Negated = negated
	cmpOp, err := cmpOpOf(op)
	if err != nil {
		return nil, err
	}
	return &expr.Cmp{Op: cmpOp, L: le, R: quant.Col(0)}, nil
}

// existsQuant creates a bare existential quantifier; with no linking
// predicate its join condition is vacuously true.
func (t *Translator) existsQuant(q *sql.SelectStmt, sc *scope, box *Box, negated bool) (expr.Expr, error) {
	sub, err := t.translateSelect(q, sc, false)
	if err != nil {
		return nil, err
	}
	quant := t.g.NewQuant(box, QExists, "", sub)
	quant.SetPred = "ANY"
	quant.Negated = negated
	// Bare EXISTS has no linking condition: every element of the set
	// satisfies it. The returned predicate is a tautology that still
	// references the quantifier, so the association survives predicate
	// classification and migration.
	c := quant.Col(0)
	return &expr.Or{
		L: &expr.IsNull{E: c},
		R: &expr.IsNull{E: c, Negated: true},
	}, nil
}

func cmpOpOf(op string) (expr.CmpOp, error) {
	switch op {
	case "=":
		return expr.OpEq, nil
	case "<>":
		return expr.OpNe, nil
	case "<":
		return expr.OpLt, nil
	case "<=":
		return expr.OpLe, nil
	case ">":
		return expr.OpGt, nil
	case ">=":
		return expr.OpGe, nil
	}
	return 0, fmt.Errorf("qgm: unknown comparison %s", op)
}

// translateScalar translates a scalar expression. box receives scalar
// subquery quantifiers; it may be nil in contexts where subqueries are
// disallowed (e.g. LIMIT).
func (t *Translator) translateScalar(e sql.Expr, sc *scope, box *Box) (expr.Expr, error) {
	switch x := e.(type) {
	case *sql.Lit:
		return expr.NewConst(x.Val), nil

	case *sql.ParamRef:
		t.g.Params[x.Name] = true
		return &expr.Param{Name: x.Name, Typ: datum.TString}, nil

	case *sql.Ident:
		return sc.resolve(x.Qualifier, x.Name)

	case *sql.Unary:
		childBox := box
		if x.Op == "NOT" {
			// Same reasoning as OR: NOT over a subquery construct in a
			// general expression position defers the subquery.
			childBox = nil
		}
		inner, err := t.translateScalar(x.E, sc, childBox)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &expr.Not{E: inner}, nil
		}
		return &expr.Neg{E: inner}, nil

	case *sql.Binary:
		// Under OR, a subquery must not become a quantifier of the
		// enclosing box — that would change semantics (an empty
		// subquery would suppress the tuple even when the other
		// disjunct holds). It stays a deferred subplan instead, to be
		// evaluated by the OR-operator machinery (section 7).
		childBox := box
		if x.Op == "OR" {
			childBox = nil
		}
		l, err := t.translateScalar(x.L, sc, childBox)
		if err != nil {
			return nil, err
		}
		r, err := t.translateScalar(x.R, sc, childBox)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "AND":
			return &expr.And{L: l, R: r}, nil
		case "OR":
			return &expr.Or{L: l, R: r}, nil
		case "+":
			return &expr.Arith{Op: expr.OpAdd, L: l, R: r}, nil
		case "-":
			return &expr.Arith{Op: expr.OpSub, L: l, R: r}, nil
		case "*":
			return &expr.Arith{Op: expr.OpMul, L: l, R: r}, nil
		case "/":
			return &expr.Arith{Op: expr.OpDiv, L: l, R: r}, nil
		case "%":
			return &expr.Arith{Op: expr.OpMod, L: l, R: r}, nil
		case "||":
			return expr.NewFunc(t.cat.Funcs, "CONCAT", []expr.Expr{l, r})
		default:
			op, err := cmpOpOf(x.Op)
			if err != nil {
				return nil, err
			}
			return &expr.Cmp{Op: op, L: l, R: r}, nil
		}

	case *sql.IsNullExpr:
		inner, err := t.translateScalar(x.E, sc, box)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{E: inner, Negated: x.Negated}, nil

	case *sql.LikeExpr:
		le, err := t.translateScalar(x.E, sc, box)
		if err != nil {
			return nil, err
		}
		pe, err := t.translateScalar(x.Pattern, sc, box)
		if err != nil {
			return nil, err
		}
		return &expr.Like{E: le, Pattern: pe, Negated: x.Negated}, nil

	case *sql.BetweenExpr:
		ee, err := t.translateScalar(x.E, sc, box)
		if err != nil {
			return nil, err
		}
		lo, err := t.translateScalar(x.Lo, sc, box)
		if err != nil {
			return nil, err
		}
		hi, err := t.translateScalar(x.Hi, sc, box)
		if err != nil {
			return nil, err
		}
		// Desugar: e >= lo AND e <= hi (negation wraps the conjunction).
		rng := &expr.And{
			L: &expr.Cmp{Op: expr.OpGe, L: ee, R: lo},
			R: &expr.Cmp{Op: expr.OpLe, L: ee, R: hi},
		}
		if x.Negated {
			return &expr.Not{E: rng}, nil
		}
		return rng, nil

	case *sql.InExpr:
		if x.Query != nil {
			// Subquery IN in a non-conjunct position: defer to a
			// subplan evaluated on demand.
			return t.deferredSubquery(x.Query, sc, "IN", x.Negated, x.E)
		}
		ee, err := t.translateScalar(x.E, sc, box)
		if err != nil {
			return nil, err
		}
		var list []expr.Expr
		for _, le := range x.List {
			l, err := t.translateScalar(le, sc, box)
			if err != nil {
				return nil, err
			}
			list = append(list, l)
		}
		return &expr.InList{E: ee, List: list, Negated: x.Negated}, nil

	case *sql.ExistsExpr:
		return t.deferredSubquery(x.Query, sc, "EXISTS", x.Negated, nil)

	case *sql.SubqueryExpr:
		if box != nil {
			// Scalar subquery in a context that supports quantifiers.
			sub, err := t.translateSelect(x.Query, sc, false)
			if err != nil {
				return nil, err
			}
			if len(sub.Head) != 1 {
				return nil, fmt.Errorf("qgm: scalar subquery must return one column")
			}
			quant := t.g.NewQuant(box, QScalar, "", sub)
			return quant.Col(0), nil
		}
		return t.deferredSubquery(x.Query, sc, "SCALAR", false, nil)

	case *sql.QuantifiedCmp:
		return nil, fmt.Errorf("qgm: quantified comparison %s must be a top-level conjunct", x.Quant)

	case *sql.FuncCall:
		// Aggregate?
		if x.Star || t.cat.Funcs.Aggregate(x.Name) != nil {
			var arg expr.Expr
			if !x.Star {
				if len(x.Args) != 1 {
					return nil, fmt.Errorf("qgm: aggregate %s takes one argument", x.Name)
				}
				a, err := t.translateScalar(x.Args[0], sc, box)
				if err != nil {
					return nil, err
				}
				arg = a
			}
			return expr.NewAggCall(t.cat.Funcs, x.Name, arg, x.Star, x.Distinct)
		}
		var args []expr.Expr
		for _, a := range x.Args {
			ae, err := t.translateScalar(a, sc, box)
			if err != nil {
				return nil, err
			}
			args = append(args, ae)
		}
		return expr.NewFunc(t.cat.Funcs, x.Name, args)

	case *sql.CaseExpr:
		c := &expr.Case{}
		for _, w := range x.Whens {
			cond, err := t.translateScalar(w.Cond, sc, box)
			if err != nil {
				return nil, err
			}
			res, err := t.translateScalar(w.Result, sc, box)
			if err != nil {
				return nil, err
			}
			c.Whens = append(c.Whens, expr.When{Cond: cond, Result: res})
		}
		if x.Else != nil {
			el, err := t.translateScalar(x.Else, sc, box)
			if err != nil {
				return nil, err
			}
			c.Else = el
		}
		return c, nil
	}
	return nil, fmt.Errorf("qgm: cannot translate expression %T", e)
}

// DeferredSubquery is the payload carried by an expr.Subplan from
// translation to plan refinement: a subquery that could not become a
// quantifier because it appears under OR (or another non-conjunctive
// context). The refiner compiles Box and installs Run with
// evaluate-on-demand caching; the QES applies it via the OR operator
// machinery (section 7).
type DeferredSubquery struct {
	Box *Box
	// Mode is "SCALAR", "EXISTS" or "IN".
	Mode    string
	Negated bool
	// Lhs is the left operand for IN.
	Lhs expr.Expr
}

func (t *Translator) deferredSubquery(q *sql.SelectStmt, sc *scope, mode string, negated bool, lhs sql.Expr) (expr.Expr, error) {
	sub, err := t.translateSelect(q, sc, false)
	if err != nil {
		return nil, err
	}
	ds := &DeferredSubquery{Box: sub, Mode: mode, Negated: negated}
	typ := datum.TBool
	if mode == "SCALAR" {
		if len(sub.Head) != 1 {
			return nil, fmt.Errorf("qgm: scalar subquery must return one column")
		}
		typ = sub.Head[0].Type
	}
	if mode == "IN" {
		if len(sub.Head) != 1 {
			return nil, fmt.Errorf("qgm: IN subquery must return one column")
		}
		le, err := t.translateScalar(lhs, sc, nil)
		if err != nil {
			return nil, err
		}
		ds.Lhs = le
	}
	label := strings.ToLower(mode) + " subquery"
	return &expr.Subplan{Label: label, Typ: typ, Aux: ds}, nil
}

// ---------------------------------------------------------------------
// DML translation

func translateInsert(cat *catalog.Catalog, s *sql.InsertStmt) (*Graph, error) {
	t := &Translator{cat: cat, g: NewGraph(), base: map[string]*Box{}}
	tbl, ok := cat.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("qgm: unknown table %s", s.Table)
	}
	if tbl.System {
		return nil, &catalog.SystemObjectError{Name: tbl.Name, Op: "INSERT"}
	}
	cols := make([]int, 0, len(tbl.Cols))
	if len(s.Cols) == 0 {
		for i := range tbl.Cols {
			cols = append(cols, i)
		}
	} else {
		for _, cn := range s.Cols {
			ord := tbl.ColIndex(cn)
			if ord < 0 {
				return nil, fmt.Errorf("qgm: no column %s in %s", cn, tbl.Name)
			}
			cols = append(cols, ord)
		}
	}
	var src *Box
	if s.Query != nil {
		b, err := t.translateSelect(s.Query, nil, false)
		if err != nil {
			return nil, err
		}
		src = b
	} else {
		vb := t.g.NewBox(KindValues)
		for ri, row := range s.Rows {
			if len(row) != len(cols) {
				return nil, fmt.Errorf("qgm: VALUES row %d has %d values, want %d", ri+1, len(row), len(cols))
			}
			var exprs []expr.Expr
			for _, e := range row {
				te, err := t.translateScalar(e, newScope(nil), nil)
				if err != nil {
					return nil, err
				}
				exprs = append(exprs, te)
			}
			vb.Rows = append(vb.Rows, exprs)
		}
		for i, ord := range cols {
			typ := tbl.Cols[ord].Type
			vb.Head = append(vb.Head, HeadCol{Name: strings.ToUpper(tbl.Cols[ord].Name), Type: typ})
			_ = i
		}
		src = vb
	}
	if len(src.Head) != len(cols) {
		return nil, fmt.Errorf("qgm: INSERT source has %d columns, want %d", len(src.Head), len(cols))
	}
	ins := t.g.NewBox(KindInsert)
	ins.TargetTable = tbl
	ins.TargetCols = cols
	t.g.NewQuant(ins, ForEach, "", src)
	t.g.Top = ins
	t.g.GC()
	return t.g, t.g.Check()
}

// resolveUpdatableView maps an update/delete target that names a view
// onto its base table, when unambiguous: the view must be a single
// SELECT over one stored table with plain column projections and no
// aggregation, duplicates handling or set operations (section 2:
// "update through views will be allowed when the update is
// unambiguous; otherwise an error will be returned").
func resolveUpdatableView(cat *catalog.Catalog, name string) (*catalog.Table, sql.Expr, map[string]string, error) {
	v, ok := cat.View(name)
	if !ok {
		return nil, nil, nil, nil // not a view
	}
	q, err := sql.ParseQuery(v.Text)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("qgm: view %s: %w", name, err)
	}
	core, ok := q.Body.(*sql.SelectCore)
	if !ok || len(q.With) > 0 || core.Distinct || len(core.GroupBy) > 0 ||
		core.Having != nil || len(core.From) != 1 {
		return nil, nil, nil, fmt.Errorf("qgm: view %s is not updatable (ambiguous update)", name)
	}
	bt, ok := core.From[0].(*sql.BaseTable)
	if !ok {
		return nil, nil, nil, fmt.Errorf("qgm: view %s is not updatable (derived table)", name)
	}
	tbl, ok := cat.Table(bt.Name)
	if !ok {
		// View over a view: not supported for update.
		return nil, nil, nil, fmt.Errorf("qgm: view %s is not updatable (nested view)", name)
	}
	// Column mapping: view output name -> base column name.
	colMap := map[string]string{}
	for i, item := range core.Items {
		if item.Star {
			for _, c := range tbl.Cols {
				colMap[strings.ToUpper(c.Name)] = strings.ToUpper(c.Name)
			}
			continue
		}
		id, ok := item.Expr.(*sql.Ident)
		if !ok {
			continue // computed columns are not updatable
		}
		outName := item.Alias
		if outName == "" {
			outName = id.Name
		}
		if i < len(v.ColNames) && v.ColNames[i] != "" {
			outName = v.ColNames[i]
		}
		colMap[strings.ToUpper(outName)] = strings.ToUpper(id.Name)
	}
	return tbl, core.Where, colMap, nil
}

func translateUpdate(cat *catalog.Catalog, s *sql.UpdateStmt) (*Graph, error) {
	t := &Translator{cat: cat, g: NewGraph(), base: map[string]*Box{}}
	tbl, viewWhere, colMap, err := resolveUpdatableView(cat, s.Table)
	if err != nil {
		return nil, err
	}
	if tbl == nil {
		tt, ok := cat.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("qgm: unknown table %s", s.Table)
		}
		tbl = tt
	}
	if tbl.System {
		return nil, &catalog.SystemObjectError{Name: tbl.Name, Op: "UPDATE"}
	}
	up := t.g.NewBox(KindUpdate)
	up.TargetTable = tbl
	sc := newScope(nil)
	alias := s.Alias
	if alias == "" {
		alias = s.Table
	}
	if err := t.translateBaseTable(&sql.BaseTable{Name: tbl.Name, Alias: alias}, up, sc, ForEach); err != nil {
		return nil, err
	}
	mapCol := func(name string) (string, error) {
		if colMap == nil {
			return name, nil
		}
		base, ok := colMap[strings.ToUpper(name)]
		if !ok {
			return "", fmt.Errorf("qgm: column %s is not updatable through view %s", name, s.Table)
		}
		return base, nil
	}
	for _, set := range s.Sets {
		cn, err := mapCol(set.Col)
		if err != nil {
			return nil, err
		}
		ord := tbl.ColIndex(cn)
		if ord < 0 {
			return nil, fmt.Errorf("qgm: no column %s in %s", set.Col, tbl.Name)
		}
		e, err := t.translateScalarMapped(set.Expr, sc, nil, colMap)
		if err != nil {
			return nil, err
		}
		up.TargetCols = append(up.TargetCols, ord)
		up.Head = append(up.Head, HeadCol{Name: strings.ToUpper(cn), Type: e.Type(), Expr: e})
	}
	if s.Where != nil {
		if err := t.translateConjunctsMappedDeferred(s.Where, up, sc, colMap); err != nil {
			return nil, err
		}
	}
	if viewWhere != nil {
		if err := t.translateConjunctsDeferred(viewWhere, up, sc); err != nil {
			return nil, err
		}
	}
	t.g.Top = up
	t.g.GC()
	return t.g, t.g.Check()
}

func translateDelete(cat *catalog.Catalog, s *sql.DeleteStmt) (*Graph, error) {
	t := &Translator{cat: cat, g: NewGraph(), base: map[string]*Box{}}
	tbl, viewWhere, colMap, err := resolveUpdatableView(cat, s.Table)
	if err != nil {
		return nil, err
	}
	if tbl == nil {
		tt, ok := cat.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("qgm: unknown table %s", s.Table)
		}
		tbl = tt
	}
	if tbl.System {
		return nil, &catalog.SystemObjectError{Name: tbl.Name, Op: "DELETE"}
	}
	del := t.g.NewBox(KindDelete)
	del.TargetTable = tbl
	sc := newScope(nil)
	alias := s.Alias
	if alias == "" {
		alias = s.Table
	}
	if err := t.translateBaseTable(&sql.BaseTable{Name: tbl.Name, Alias: alias}, del, sc, ForEach); err != nil {
		return nil, err
	}
	if s.Where != nil {
		if err := t.translateConjunctsMappedDeferred(s.Where, del, sc, colMap); err != nil {
			return nil, err
		}
	}
	if viewWhere != nil {
		if err := t.translateConjunctsDeferred(viewWhere, del, sc); err != nil {
			return nil, err
		}
	}
	t.g.Top = del
	t.g.GC()
	return t.g, t.g.Check()
}

// translateConjunctsDeferred splits a DML search condition into
// conjuncts whose subqueries stay inside the expressions as deferred
// subplans (UPDATE/DELETE evaluate predicates per stored record, so
// quantifier-style subqueries have no join pipeline to land in).
func (t *Translator) translateConjunctsDeferred(e sql.Expr, box *Box, sc *scope) error {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.Binary); ok && b.Op == "AND" {
		if err := t.translateConjunctsDeferred(b.L, box, sc); err != nil {
			return err
		}
		return t.translateConjunctsDeferred(b.R, box, sc)
	}
	pe, err := t.translateScalar(e, sc, nil) // nil box defers subqueries
	if err != nil {
		return err
	}
	if expr.HasAggregate(pe) {
		return fmt.Errorf("qgm: aggregate not allowed in WHERE")
	}
	box.Preds = append(box.Preds, &Predicate{Expr: pe})
	return nil
}

// translateScalarMapped translates an expression, first renaming
// view-level column names to base-table names per colMap.
func (t *Translator) translateScalarMapped(e sql.Expr, sc *scope, box *Box, colMap map[string]string) (expr.Expr, error) {
	if colMap != nil {
		var mapErr error
		e = mapIdents(e, colMap, &mapErr)
		if mapErr != nil {
			return nil, mapErr
		}
	}
	return t.translateScalar(e, sc, box)
}

func (t *Translator) translateConjunctsMappedDeferred(e sql.Expr, box *Box, sc *scope, colMap map[string]string) error {
	if colMap != nil {
		var mapErr error
		e = mapIdents(e, colMap, &mapErr)
		if mapErr != nil {
			return mapErr
		}
	}
	return t.translateConjunctsDeferred(e, box, sc)
}

// mapIdents rewrites identifier names through a view column map. Only
// simple forms used in UPDATE/DELETE are covered.
func mapIdents(e sql.Expr, colMap map[string]string, errp *error) sql.Expr {
	switch x := e.(type) {
	case *sql.Ident:
		base, ok := colMap[strings.ToUpper(x.Name)]
		if !ok {
			*errp = fmt.Errorf("qgm: column %s not visible through view", x.Name)
			return e
		}
		return &sql.Ident{Name: base}
	case *sql.Binary:
		return &sql.Binary{Op: x.Op, L: mapIdents(x.L, colMap, errp), R: mapIdents(x.R, colMap, errp)}
	case *sql.Unary:
		return &sql.Unary{Op: x.Op, E: mapIdents(x.E, colMap, errp)}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{E: mapIdents(x.E, colMap, errp), Negated: x.Negated}
	case *sql.LikeExpr:
		return &sql.LikeExpr{E: mapIdents(x.E, colMap, errp), Pattern: x.Pattern, Negated: x.Negated}
	case *sql.BetweenExpr:
		return &sql.BetweenExpr{E: mapIdents(x.E, colMap, errp),
			Lo: mapIdents(x.Lo, colMap, errp), Hi: mapIdents(x.Hi, colMap, errp), Negated: x.Negated}
	case *sql.InExpr:
		if x.Query == nil {
			in := &sql.InExpr{E: mapIdents(x.E, colMap, errp), Negated: x.Negated}
			for _, le := range x.List {
				in.List = append(in.List, mapIdents(le, colMap, errp))
			}
			return in
		}
	}
	return e
}

// hiddenOrderCol appends a hidden head column computing the ORDER BY
// expression, for top-level sorts on non-projected columns. The
// optimizer trims hidden columns after the sort.
func (t *Translator) hiddenOrderCol(e sql.Expr, box *Box) (int, error) {
	if _, isLit := e.(*sql.Lit); isLit {
		return 0, fmt.Errorf("qgm: ORDER BY position out of range")
	}
	if box.Kind != KindSelect || box.Distinct == EnforceDistinct {
		return 0, fmt.Errorf("qgm: ORDER BY key must be in the select list")
	}
	sc := t.coreScopes[box]
	if sc == nil {
		return 0, fmt.Errorf("qgm: ORDER BY key must be in the select list")
	}
	te, err := t.translateScalar(e, sc, box)
	if err != nil {
		return 0, err
	}
	if expr.HasAggregate(te) {
		return 0, fmt.Errorf("qgm: aggregate in ORDER BY requires it in the select list")
	}
	ord := len(box.Head)
	box.Head = append(box.Head, HeadCol{
		Name: fmt.Sprintf("_ORD%d", t.g.HiddenOrderCols+1),
		Type: te.Type(),
		Expr: te,
	})
	t.g.HiddenOrderCols++
	return ord, nil
}
