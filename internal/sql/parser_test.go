package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func mustFail(t *testing.T, src string) {
	t.Helper()
	if _, err := Parse(src); err == nil {
		t.Fatalf("Parse(%q) succeeded, want error", src)
	}
}

func selectCore(t *testing.T, stmt Statement) *SelectCore {
	t.Helper()
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("not a SelectStmt: %T", stmt)
	}
	core, ok := sel.Body.(*SelectCore)
	if !ok {
		t.Fatalf("body is %T, not SelectCore", sel.Body)
	}
	return core
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a1, 'it''s', 3.5e2, :param FROM t -- comment\nWHERE x <> 1;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokSymbol, TokString, TokSymbol,
		TokFloat, TokSymbol, TokParam, TokKeyword, TokIdent, TokKeyword,
		TokIdent, TokSymbol, TokInt, TokSymbol, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%s): kind %d, want %d", i, toks[i], toks[i].Kind, k)
		}
	}
	if toks[3].Text != "it's" {
		t.Errorf("escaped string = %q", toks[3].Text)
	}
	if toks[12].Text != "<>" {
		t.Errorf("symbol = %q", toks[12].Text)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, ": ", "SELECT @"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded", src)
		}
	}
}

func TestLexerNotEqualsAlias(t *testing.T) {
	toks, _ := Tokenize("a != b")
	if toks[1].Text != "<>" {
		t.Errorf("!= must normalize to <>, got %q", toks[1].Text)
	}
}

func TestDelimitedIdent(t *testing.T) {
	core := selectCore(t, mustParse(t, `SELECT "select" FROM "from"`))
	if core.Items[0].Expr.(*Ident).Name != "select" {
		t.Error("delimited identifier as column")
	}
	if core.From[0].(*BaseTable).Name != "from" {
		t.Error("delimited identifier as table")
	}
}

func TestPaperQuery(t *testing.T) {
	// The exact query from section 4 / Figure 2(a).
	src := `SELECT partno, price, order_qty FROM quotations Q1
	        WHERE Q1.partno IN
	          (SELECT partno FROM inventory Q3
	           WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')`
	core := selectCore(t, mustParse(t, src))
	if len(core.Items) != 3 || core.Items[0].Expr.(*Ident).Name != "partno" {
		t.Fatalf("select list: %+v", core.Items)
	}
	bt := core.From[0].(*BaseTable)
	if bt.Name != "quotations" || bt.Alias != "Q1" {
		t.Errorf("from = %+v", bt)
	}
	in, ok := core.Where.(*InExpr)
	if !ok || in.Query == nil {
		t.Fatalf("where = %T", core.Where)
	}
	sub := in.Query.Body.(*SelectCore)
	and, ok := sub.Where.(*Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("subquery where = %v", sub.Where)
	}
	lt := and.L.(*Binary)
	if lt.Op != "<" || lt.L.(*Ident).Qualifier != "Q3" || lt.R.(*Ident).Qualifier != "Q1" {
		t.Errorf("correlation predicate = %v", lt)
	}
	eq := and.R.(*Binary)
	if eq.Op != "=" || eq.R.(*Lit).Val.Str() != "CPU" {
		t.Errorf("type predicate = %v", eq)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	core := selectCore(t, mustParse(t, "SELECT a + b * c - d FROM t"))
	// ((a + (b*c)) - d)
	top := core.Items[0].Expr.(*Binary)
	if top.Op != "-" {
		t.Fatalf("top = %s", top.Op)
	}
	add := top.L.(*Binary)
	if add.Op != "+" || add.R.(*Binary).Op != "*" {
		t.Errorf("precedence wrong: %v", core.Items[0].Expr)
	}

	core = selectCore(t, mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3"))
	or := core.Where.(*Binary)
	if or.Op != "OR" || or.R.(*Binary).Op != "AND" {
		t.Errorf("AND must bind tighter than OR: %v", core.Where)
	}

	core = selectCore(t, mustParse(t, "SELECT * FROM t WHERE NOT a = 1 AND b = 2"))
	and := core.Where.(*Binary)
	if and.Op != "AND" {
		t.Fatalf("NOT must bind tighter than AND: %v", core.Where)
	}
	if _, ok := and.L.(*Unary); !ok {
		t.Errorf("left of AND should be NOT: %v", and.L)
	}
}

func TestPredicateForms(t *testing.T) {
	core := selectCore(t, mustParse(t, `SELECT * FROM t WHERE
		a BETWEEN 1 AND 10 AND b NOT LIKE 'x%' AND c IS NOT NULL
		AND d IN (1, 2, 3) AND e NOT IN (SELECT x FROM s)`))
	conj := []Expr{}
	var flatten func(e Expr)
	flatten = func(e Expr) {
		if b, ok := e.(*Binary); ok && b.Op == "AND" {
			flatten(b.L)
			flatten(b.R)
			return
		}
		conj = append(conj, e)
	}
	flatten(core.Where)
	if len(conj) != 5 {
		t.Fatalf("got %d conjuncts", len(conj))
	}
	if b := conj[0].(*BetweenExpr); b.Negated {
		t.Error("between")
	}
	if l := conj[1].(*LikeExpr); !l.Negated {
		t.Error("not like")
	}
	if n := conj[2].(*IsNullExpr); !n.Negated {
		t.Error("is not null")
	}
	if in := conj[3].(*InExpr); in.Negated || len(in.List) != 3 {
		t.Error("in list")
	}
	if in := conj[4].(*InExpr); !in.Negated || in.Query == nil {
		t.Error("not in subquery")
	}
}

func TestQuantifiedComparisons(t *testing.T) {
	core := selectCore(t, mustParse(t, "SELECT * FROM t WHERE a > ALL (SELECT b FROM s)"))
	qc := core.Where.(*QuantifiedCmp)
	if qc.Op != ">" || qc.Quant != "ALL" {
		t.Errorf("quantified = %+v", qc)
	}
	core = selectCore(t, mustParse(t, "SELECT * FROM t WHERE a = ANY (SELECT b FROM s)"))
	if core.Where.(*QuantifiedCmp).Quant != "ANY" {
		t.Error("ANY")
	}
	// The paper's DBC extension: MAJORITY as a set predicate.
	core = selectCore(t, mustParse(t, "SELECT * FROM t WHERE a = MAJORITY (SELECT b FROM s)"))
	if core.Where.(*QuantifiedCmp).Quant != "MAJORITY" {
		t.Errorf("MAJORITY parse: %v", core.Where)
	}
	// But MAJORITY(x) as a scalar function call still parses as a call.
	core = selectCore(t, mustParse(t, "SELECT * FROM t WHERE a = majority(b)"))
	if _, ok := core.Where.(*Binary); !ok {
		t.Errorf("scalar call form: %v", core.Where)
	}
}

func TestExistsAndScalarSubquery(t *testing.T) {
	core := selectCore(t, mustParse(t, "SELECT * FROM t WHERE EXISTS (SELECT 1 FROM s)"))
	if _, ok := core.Where.(*ExistsExpr); !ok {
		t.Errorf("exists: %T", core.Where)
	}
	core = selectCore(t, mustParse(t, "SELECT * FROM t WHERE NOT EXISTS (SELECT 1 FROM s)"))
	u := core.Where.(*Unary)
	if u.Op != "NOT" {
		t.Error("NOT EXISTS parses as NOT(EXISTS)")
	}
	// The paper's OR-of-subqueries query (section 7).
	core = selectCore(t, mustParse(t, `SELECT * FROM T1 WHERE T1.A1 = 5 OR T1.A2 =
		(SELECT B2 FROM T2 WHERE T2.B1 = 16)`))
	or := core.Where.(*Binary)
	if or.Op != "OR" {
		t.Fatal("or")
	}
	eq := or.R.(*Binary)
	if _, ok := eq.R.(*SubqueryExpr); !ok {
		t.Errorf("scalar subquery: %T", eq.R)
	}
}

func TestFunctionCalls(t *testing.T) {
	core := selectCore(t, mustParse(t,
		"SELECT COUNT(*), SUM(qty), AVG(DISTINCT price), Area(Width, Length) FROM t"))
	if !core.Items[0].Expr.(*FuncCall).Star {
		t.Error("count(*)")
	}
	if core.Items[1].Expr.(*FuncCall).Name != "SUM" {
		t.Error("sum")
	}
	if !core.Items[2].Expr.(*FuncCall).Distinct {
		t.Error("distinct agg")
	}
	ar := core.Items[3].Expr.(*FuncCall)
	if ar.Name != "Area" || len(ar.Args) != 2 {
		t.Error("scalar function call")
	}
}

func TestGroupByHavingOrderBy(t *testing.T) {
	stmt := mustParse(t, `SELECT dept, SUM(sal) total FROM emp
		WHERE sal > 0 GROUP BY dept HAVING SUM(sal) > 1000
		ORDER BY total DESC, dept LIMIT 10`).(*SelectStmt)
	core := stmt.Body.(*SelectCore)
	if len(core.GroupBy) != 1 || core.Having == nil {
		t.Error("group by / having")
	}
	if core.Items[1].Alias != "total" {
		t.Error("implicit alias")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order by = %+v", stmt.OrderBy)
	}
	if stmt.Limit == nil {
		t.Error("limit")
	}
}

func TestSetOperations(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t UNION ALL SELECT b FROM s EXCEPT SELECT c FROM u").(*SelectStmt)
	// Left-assoc: (t UNION ALL s) EXCEPT u.
	top := stmt.Body.(*SetOp)
	if top.Kind != Except || top.All {
		t.Fatalf("top = %+v", top)
	}
	un := top.L.(*SetOp)
	if un.Kind != Union || !un.All {
		t.Errorf("union = %+v", un)
	}
	// INTERSECT binds tighter.
	stmt = mustParse(t, "SELECT a FROM t UNION SELECT b FROM s INTERSECT SELECT c FROM u").(*SelectStmt)
	top = stmt.Body.(*SetOp)
	if top.Kind != Union {
		t.Fatal("top must be union")
	}
	if top.R.(*SetOp).Kind != Intersect {
		t.Error("intersect binds tighter")
	}
	// Parenthesized bodies.
	stmt = mustParse(t, "(SELECT a FROM t UNION SELECT b FROM s) EXCEPT SELECT c FROM u").(*SelectStmt)
	if stmt.Body.(*SetOp).Kind != Except {
		t.Error("paren grouping")
	}
}

func TestTableExpressions(t *testing.T) {
	stmt := mustParse(t, `WITH big_parts (pno, total) AS
		(SELECT partno, SUM(qty) FROM quotations GROUP BY partno),
		cheap AS (SELECT partno FROM quotations WHERE price < 10)
		SELECT * FROM big_parts, cheap WHERE big_parts.pno = cheap.partno`).(*SelectStmt)
	if len(stmt.With) != 2 {
		t.Fatalf("with count = %d", len(stmt.With))
	}
	if stmt.With[0].Name != "big_parts" || len(stmt.With[0].Cols) != 2 {
		t.Errorf("cte 0 = %+v", stmt.With[0])
	}
	if stmt.With[0].Recursive {
		t.Error("not recursive")
	}
}

func TestRecursiveTableExpression(t *testing.T) {
	stmt := mustParse(t, `WITH RECURSIVE reach (src, dst) AS (
		SELECT src, dst FROM edges
		UNION SELECT r.src, e.dst FROM reach r, edges e WHERE r.dst = e.src)
		SELECT * FROM reach`).(*SelectStmt)
	if !stmt.With[0].Recursive {
		t.Error("recursive flag")
	}
	if _, ok := stmt.With[0].Query.Body.(*SetOp); !ok {
		t.Error("recursive body is a union")
	}
}

func TestNestedTableRef(t *testing.T) {
	core := selectCore(t, mustParse(t,
		"SELECT * FROM (SELECT a, b FROM t WHERE a > 0) AS sub (x, y) WHERE x < 10"))
	sq := core.From[0].(*SubqueryRef)
	if sq.Alias != "sub" || len(sq.Cols) != 2 {
		t.Errorf("subquery ref = %+v", sq)
	}
}

func TestTableFunctionRef(t *testing.T) {
	// The paper's example: SAMPLE(table, int).
	core := selectCore(t, mustParse(t, "SELECT * FROM SAMPLE(quotations, 100) s"))
	tf := core.From[0].(*TableFuncRef)
	if tf.Name != "SAMPLE" || len(tf.TableArgs) != 1 || len(tf.ScalarArgs) != 1 || tf.Alias != "s" {
		t.Errorf("table func = %+v", tf)
	}
	if tf.TableArgs[0].(*BaseTable).Name != "quotations" {
		t.Error("table arg")
	}
	// Nested query as table argument.
	core = selectCore(t, mustParse(t, "SELECT * FROM SAMPLE((SELECT * FROM q WHERE x=1), 5) s"))
	tf = core.From[0].(*TableFuncRef)
	if len(tf.TableArgs) != 1 {
		t.Fatalf("nested table arg: %+v", tf)
	}
	if _, ok := tf.TableArgs[0].(*SubqueryRef); !ok {
		t.Errorf("nested arg type %T", tf.TableArgs[0])
	}
}

func TestExplicitJoins(t *testing.T) {
	core := selectCore(t, mustParse(t,
		"SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y"))
	j := core.From[0].(*JoinRef)
	if j.Kind != LeftOuterJoin {
		t.Fatalf("outer join kind = %v", j.Kind)
	}
	inner := j.L.(*JoinRef)
	if inner.Kind != InnerJoin {
		t.Error("inner join")
	}
	core = selectCore(t, mustParse(t, "SELECT * FROM a LEFT JOIN b ON a.x = b.x"))
	if core.From[0].(*JoinRef).Kind != LeftOuterJoin {
		t.Error("LEFT JOIN without OUTER")
	}
	core = selectCore(t, mustParse(t, "SELECT * FROM a RIGHT JOIN b ON a.x = b.x"))
	if core.From[0].(*JoinRef).Kind != RightOuterJoin {
		t.Error("RIGHT JOIN")
	}
}

func TestSelectItemForms(t *testing.T) {
	core := selectCore(t, mustParse(t, "SELECT *, q.*, a AS x, b y, q.c FROM q"))
	if !core.Items[0].Star || core.Items[0].StarQualifier != "" {
		t.Error("bare star")
	}
	if !core.Items[1].Star || core.Items[1].StarQualifier != "q" {
		t.Error("qualified star")
	}
	if core.Items[2].Alias != "x" || core.Items[3].Alias != "y" {
		t.Error("aliases")
	}
	id := core.Items[4].Expr.(*Ident)
	if id.Qualifier != "q" || id.Name != "c" {
		t.Error("qualified column")
	}
}

func TestCaseExprParse(t *testing.T) {
	core := selectCore(t, mustParse(t,
		"SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END FROM t"))
	c := core.Items[0].Expr.(*CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case = %+v", c)
	}
	mustFail(t, "SELECT CASE ELSE 1 END FROM t")
}

func TestLiteralsAndParams(t *testing.T) {
	core := selectCore(t, mustParse(t, "SELECT 1, -2.5, 'str', NULL, TRUE, FALSE, :host FROM t"))
	vals := []string{"1", "-2.5", "'str'", "NULL", "TRUE", "FALSE"}
	for i, want := range vals {
		var got string
		if u, ok := core.Items[i].Expr.(*Unary); ok {
			got = "-" + u.E.(*Lit).Val.String()
		} else {
			got = core.Items[i].Expr.(*Lit).Val.String()
		}
		if got != want {
			t.Errorf("item %d = %s, want %s", i, got, want)
		}
	}
	if core.Items[6].Expr.(*ParamRef).Name != "host" {
		t.Error("param")
	}
}

func TestInsertForms(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*InsertStmt)
	if ins.Table != "t" || len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	ins = mustParse(t, "INSERT INTO t SELECT * FROM s WHERE a > 0").(*InsertStmt)
	if ins.Query == nil || ins.Rows != nil {
		t.Error("insert-select")
	}
	if ins2 := mustParse(t, "INSERT INTO t VALUES (1)").(*InsertStmt); len(ins2.Cols) != 0 {
		t.Error("no column list")
	}
}

func TestUpdateDelete(t *testing.T) {
	up := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE id = 5").(*UpdateStmt)
	if len(up.Sets) != 2 || up.Where == nil {
		t.Errorf("update = %+v", up)
	}
	del := mustParse(t, "DELETE FROM t WHERE a IS NULL").(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
	del = mustParse(t, "DELETE FROM t").(*DeleteStmt)
	if del.Where != nil {
		t.Error("unconditional delete")
	}
}

func TestDDL(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE quotations (
		partno INT NOT NULL, price FLOAT, descr VARCHAR(100)) USING fixed`).(*CreateTableStmt)
	if ct.Name != "quotations" || len(ct.Cols) != 3 || ct.SM != "FIXED" {
		t.Errorf("create table = %+v", ct)
	}
	if !ct.Cols[0].NotNull || ct.Cols[0].TypeName != "INT" {
		t.Errorf("col 0 = %+v", ct.Cols[0])
	}
	if ct.Cols[2].TypeName != "VARCHAR" {
		t.Errorf("col 2 = %+v", ct.Cols[2])
	}

	ci := mustParse(t, "CREATE UNIQUE INDEX q_pk ON quotations (partno, supno) USING btree").(*CreateIndexStmt)
	if !ci.Unique || ci.Method != "BTREE" || len(ci.Cols) != 2 {
		t.Errorf("create index = %+v", ci)
	}

	cv := mustParse(t, "CREATE VIEW v (a) AS SELECT partno FROM quotations WHERE price > 5").(*CreateViewStmt)
	if cv.Name != "v" || cv.Query == nil {
		t.Errorf("create view = %+v", cv)
	}
	if !strings.HasPrefix(cv.Text, "SELECT") {
		t.Errorf("view text = %q", cv.Text)
	}

	ds := mustParse(t, "DROP INDEX q_pk ON quotations").(*DropStmt)
	if ds.Kind != "INDEX" || ds.Table != "quotations" {
		t.Errorf("drop = %+v", ds)
	}
	if mustParse(t, "DROP TABLE t").(*DropStmt).Kind != "TABLE" {
		t.Error("drop table")
	}
	if mustParse(t, "DROP VIEW v").(*DropStmt).Kind != "VIEW" {
		t.Error("drop view")
	}
	if mustParse(t, "ANALYZE t").(*AnalyzeStmt).Table != "t" {
		t.Error("analyze")
	}
}

func TestExplain(t *testing.T) {
	ex := mustParse(t, "EXPLAIN SELECT * FROM t").(*ExplainStmt)
	if _, ok := ex.Stmt.(*SelectStmt); !ok {
		t.Error("explain wraps select")
	}
	if ex.Analyze {
		t.Error("plain EXPLAIN must not set Analyze")
	}
}

// TestExplainAnalyze covers the EXPLAIN ANALYZE disambiguation:
// followed by a statement keyword it is the analyzed-execution form;
// followed by a bare identifier it is EXPLAIN of the ANALYZE <table>
// statistics statement.
func TestExplainAnalyze(t *testing.T) {
	ex := mustParse(t, "EXPLAIN ANALYZE SELECT * FROM t").(*ExplainStmt)
	if !ex.Analyze {
		t.Error("EXPLAIN ANALYZE SELECT must set Analyze")
	}
	if _, ok := ex.Stmt.(*SelectStmt); !ok {
		t.Errorf("inner statement = %T, want *SelectStmt", ex.Stmt)
	}
	for _, src := range []string{
		"EXPLAIN ANALYZE INSERT INTO t VALUES (1)",
		"EXPLAIN ANALYZE UPDATE t SET x = 1",
		"EXPLAIN ANALYZE DELETE FROM t",
	} {
		if !mustParse(t, src).(*ExplainStmt).Analyze {
			t.Errorf("%s: Analyze not set", src)
		}
	}
	ex = mustParse(t, "EXPLAIN ANALYZE t").(*ExplainStmt)
	if ex.Analyze {
		t.Error("EXPLAIN ANALYZE <table> must parse as EXPLAIN of ANALYZE")
	}
	if an, ok := ex.Stmt.(*AnalyzeStmt); !ok || an.Table != "t" {
		t.Errorf("inner statement = %#v, want AnalyzeStmt{Table: t}", ex.Stmt)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t extra stuff everywhere",
		"INSERT t VALUES (1)",
		"CREATE t",
		"DROP banana x",
		"SELECT * FROM (SELECT a FROM t",
		"WITH x AS SELECT 1 SELECT 2",
		"UPDATE t",
		"SELECT a FROM t ORDER",
		"SELECT 1 +",
	} {
		mustFail(t, src)
	}
}

func TestTrailingSemicolonAndWhitespace(t *testing.T) {
	mustParse(t, "  SELECT 1  ;  ")
	mustFail(t, "SELECT 1; SELECT 2")
}

func TestStringConcatOp(t *testing.T) {
	core := selectCore(t, mustParse(t, "SELECT a || b FROM t"))
	if core.Items[0].Expr.(*Binary).Op != "||" {
		t.Error("concat op")
	}
}

func TestWalkExprs(t *testing.T) {
	core := selectCore(t, mustParse(t,
		"SELECT * FROM t WHERE a + 1 > 2 AND b LIKE 'x' AND c IN (1,2) AND CASE WHEN d THEN 1 ELSE 2 END = 1"))
	idents := 0
	WalkExprs(core.Where, func(e Expr) bool {
		if _, ok := e.(*Ident); ok {
			idents++
		}
		return true
	})
	if idents != 4 { // a, b, c, d
		t.Errorf("found %d idents, want 4", idents)
	}
	// Early stop.
	n := 0
	WalkExprs(core.Where, func(Expr) bool { n++; return false })
	if n != 1 {
		t.Error("early stop")
	}
}

func TestKim82Queries(t *testing.T) {
	// Both phrasings of "employees who make more than their manager".
	sub := `SELECT e.name FROM emp e WHERE e.sal >
		(SELECT m.sal FROM emp m WHERE m.id = e.mgr)`
	join := `SELECT e.name FROM emp e, emp m WHERE m.id = e.mgr AND e.sal > m.sal`
	mustParse(t, sub)
	core := selectCore(t, mustParse(t, join))
	if len(core.From) != 2 {
		t.Error("join form has two quantifiers")
	}
}
