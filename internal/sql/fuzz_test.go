package sql

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser mutated fragments of valid
// statements; every input must either parse or return an error — never
// panic or hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"SELECT a, b FROM t WHERE a = 1 AND b IN (SELECT c FROM u) ORDER BY 1",
		"WITH RECURSIVE r (x) AS (SELECT 1 UNION SELECT x + 1 FROM r) SELECT * FROM r",
		"INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, :p)",
		"UPDATE t SET a = CASE WHEN b > 0 THEN 1 ELSE -1 END WHERE c BETWEEN 1 AND 2",
		"CREATE UNIQUE INDEX i ON t (a, b) USING btree",
		"SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x WHERE a.y > ALL (SELECT z FROM c)",
		"SELECT COUNT(DISTINCT x) FROM t GROUP BY y HAVING SUM(z) > 0",
	}
	rng := rand.New(rand.NewSource(1))
	tokensOf := func(s string) []string { return strings.Fields(s) }
	for trial := 0; trial < 3000; trial++ {
		src := seeds[rng.Intn(len(seeds))]
		toks := tokensOf(src)
		switch rng.Intn(5) {
		case 0: // drop a token
			if len(toks) > 1 {
				i := rng.Intn(len(toks))
				toks = append(toks[:i], toks[i+1:]...)
			}
		case 1: // duplicate a token
			i := rng.Intn(len(toks))
			toks = append(toks[:i], append([]string{toks[i]}, toks[i:]...)...)
		case 2: // swap two tokens
			i, j := rng.Intn(len(toks)), rng.Intn(len(toks))
			toks[i], toks[j] = toks[j], toks[i]
		case 3: // splice a token from another seed
			other := tokensOf(seeds[rng.Intn(len(seeds))])
			toks[rng.Intn(len(toks))] = other[rng.Intn(len(other))]
		case 4: // truncate
			toks = toks[:rng.Intn(len(toks))+1]
		}
		mutated := strings.Join(toks, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", mutated, r)
				}
			}()
			_, _ = Parse(mutated)
		}()
	}
}

// TestLexerNeverPanics throws random bytes at the lexer.
func TestLexerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(60)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Intn(128))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lexer panicked on %q: %v", buf, r)
				}
			}()
			_, _ = Tokenize(string(buf))
		}()
	}
}
