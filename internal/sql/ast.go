package sql

import (
	"fmt"
	"strings"

	"repro/internal/datum"
)

// Statement is any parsed Hydrogen statement.
type Statement interface{ stmt() }

// ---------------------------------------------------------------------
// Queries

// SelectStmt is a full query expression: optional table expressions
// (WITH), a body of SELECT cores combined by set operations, and an
// optional ORDER BY. Table expressions are Hydrogen's central
// orthogonality construct; recursion is expressed by cyclic references
// among them (section 2).
type SelectStmt struct {
	With    []CTE
	Body    QueryExpr
	OrderBy []OrderItem
	// Limit caps the result (a pragmatic addition for examples; nil
	// means unlimited).
	Limit Expr
}

func (*SelectStmt) stmt() {}

// CTE is one named table expression in a WITH list.
type CTE struct {
	Name      string
	Cols      []string
	Query     *SelectStmt
	Recursive bool
}

// QueryExpr is the body of a query: a single SELECT core or a set
// operation over two bodies.
type QueryExpr interface{ queryExpr() }

// SelectCore is one SELECT ... FROM ... WHERE ... GROUP BY ... HAVING.
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

func (*SelectCore) queryExpr() {}

// SetOpKind identifies a set operation.
type SetOpKind int

// Set operations.
const (
	Union SetOpKind = iota
	Intersect
	Except
)

func (k SetOpKind) String() string {
	return [...]string{"UNION", "INTERSECT", "EXCEPT"}[k]
}

// SetOp combines two query bodies. Per Hydrogen's orthogonality goal,
// set operations may appear wherever a select can: in views, table
// expressions, subqueries.
type SetOp struct {
	Kind SetOpKind
	All  bool
	L, R QueryExpr
}

func (*SetOp) queryExpr() {}

// SelectItem is one output column: an expression with an optional
// alias, or a star (optionally qualified).
type SelectItem struct {
	Expr          Expr
	Alias         string
	Star          bool
	StarQualifier string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// ---------------------------------------------------------------------
// Table references

// TableRef is anything that can appear in FROM: a base table or view, a
// nested query, a table function call, or an explicit join.
type TableRef interface{ tableRef() }

// BaseTable references a stored table, view, or in-scope table
// expression by name.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) tableRef() {}

// SubqueryRef is a parenthesized query used as a table.
type SubqueryRef struct {
	Query *SelectStmt
	Alias string
	Cols  []string
}

func (*SubqueryRef) tableRef() {}

// TableFuncRef is a table-function call in FROM, e.g.
// SAMPLE(quotations, 100) q. Table arguments may themselves be any
// TableRef ("table functions can appear anywhere a table ... can").
type TableFuncRef struct {
	Name       string
	TableArgs  []TableRef
	ScalarArgs []Expr
	Alias      string
}

func (*TableFuncRef) tableRef() {}

// JoinKind distinguishes join forms in the FROM clause.
type JoinKind int

// Join kinds at the language level.
const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
	RightOuterJoin
)

func (k JoinKind) String() string {
	return [...]string{"JOIN", "LEFT OUTER JOIN", "RIGHT OUTER JOIN"}[k]
}

// JoinRef is an explicit JOIN ... ON. Inner joins are normalized into
// plain quantifier lists during QGM translation; outer joins use the PF
// (Preserve Foreach) setformer type (section 4's worked extension).
type JoinRef struct {
	Kind JoinKind
	L, R TableRef
	On   Expr
}

func (*JoinRef) tableRef() {}

// ---------------------------------------------------------------------
// Expressions (unresolved, name-based)

// Expr is an AST expression node; names are resolved during QGM
// translation.
type Expr interface {
	expr()
	String() string
}

// Lit is a literal value.
type Lit struct{ Val datum.Value }

func (*Lit) expr()            {}
func (l *Lit) String() string { return l.Val.String() }

// Ident is a possibly qualified column reference.
type Ident struct {
	Qualifier string // table or alias; empty when unqualified
	Name      string
}

func (*Ident) expr() {}
func (i *Ident) String() string {
	if i.Qualifier != "" {
		return i.Qualifier + "." + i.Name
	}
	return i.Name
}

// ParamRef is a host-language variable reference (:name).
type ParamRef struct{ Name string }

func (*ParamRef) expr()            {}
func (p *ParamRef) String() string { return ":" + p.Name }

// Unary is a prefix operator: "-" or "NOT".
type Unary struct {
	Op string
	E  Expr
}

func (*Unary) expr()            {}
func (u *Unary) String() string { return fmt.Sprintf("%s (%s)", u.Op, u.E) }

// Binary is an infix operator: arithmetic, comparison, AND, OR, ||.
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) expr()            {}
func (b *Binary) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E       Expr
	Negated bool
}

func (*IsNullExpr) expr() {}
func (e *IsNullExpr) String() string {
	if e.Negated {
		return fmt.Sprintf("%s IS NOT NULL", e.E)
	}
	return fmt.Sprintf("%s IS NULL", e.E)
}

// LikeExpr is e [NOT] LIKE pattern.
type LikeExpr struct {
	E, Pattern Expr
	Negated    bool
}

func (*LikeExpr) expr() {}
func (e *LikeExpr) String() string {
	op := "LIKE"
	if e.Negated {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("%s %s %s", e.E, op, e.Pattern)
}

// BetweenExpr is e [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Negated   bool
}

func (*BetweenExpr) expr() {}
func (e *BetweenExpr) String() string {
	op := "BETWEEN"
	if e.Negated {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("%s %s %s AND %s", e.E, op, e.Lo, e.Hi)
}

// InExpr is e [NOT] IN (list) or e [NOT] IN (subquery).
type InExpr struct {
	E       Expr
	List    []Expr
	Query   *SelectStmt // nil for list form
	Negated bool
}

func (*InExpr) expr() {}
func (e *InExpr) String() string {
	op := "IN"
	if e.Negated {
		op = "NOT IN"
	}
	if e.Query != nil {
		return fmt.Sprintf("%s %s (<subquery>)", e.E, op)
	}
	var parts []string
	for _, x := range e.List {
		parts = append(parts, x.String())
	}
	return fmt.Sprintf("%s %s (%s)", e.E, op, strings.Join(parts, ", "))
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Query   *SelectStmt
	Negated bool
}

func (*ExistsExpr) expr() {}
func (e *ExistsExpr) String() string {
	if e.Negated {
		return "NOT EXISTS (<subquery>)"
	}
	return "EXISTS (<subquery>)"
}

// SubqueryExpr is a scalar subquery used as a value.
type SubqueryExpr struct{ Query *SelectStmt }

func (*SubqueryExpr) expr()            {}
func (e *SubqueryExpr) String() string { return "(<subquery>)" }

// QuantifiedCmp is "e op QUANT (subquery)" where QUANT is a set
// predicate function: the built-ins ALL/ANY/SOME or a DBC extension
// such as MAJORITY (section 2).
type QuantifiedCmp struct {
	Op    string
	Quant string
	L     Expr
	Query *SelectStmt
}

func (*QuantifiedCmp) expr() {}
func (e *QuantifiedCmp) String() string {
	return fmt.Sprintf("%s %s %s (<subquery>)", e.L, e.Op, e.Quant)
}

// FuncCall is a scalar or aggregate function call; which one is
// determined against the registry during semantic analysis. Star is
// COUNT(*); Distinct is e.g. COUNT(DISTINCT x).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncCall) expr() {}
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	var parts []string
	for _, a := range f.Args {
		parts = append(parts, a.String())
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", f.Name, d, strings.Join(parts, ", "))
}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct{ Cond, Result Expr }

func (*CaseExpr) expr()            {}
func (c *CaseExpr) String() string { return "CASE ... END" }

// ---------------------------------------------------------------------
// DML

// InsertStmt is INSERT INTO t [(cols)] VALUES ... or INSERT INTO t query.
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr    // VALUES form
	Query *SelectStmt // query form
}

func (*InsertStmt) stmt() {}

// SetClause is one col = expr assignment in UPDATE.
type SetClause struct {
	Col  string
	Expr Expr
}

// UpdateStmt is UPDATE t SET ... [WHERE ...]. Updates through views are
// resolved during translation when unambiguous (section 2).
type UpdateStmt struct {
	Table string
	Alias string
	Sets  []SetClause
	Where Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Alias string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// ---------------------------------------------------------------------
// DDL

// ColDef is one column definition in CREATE TABLE.
type ColDef struct {
	Name     string
	TypeName string
	NotNull  bool
}

// CreateTableStmt is CREATE TABLE name (cols) [USING sm].
type CreateTableStmt struct {
	Name string
	Cols []ColDef
	// SM names the storage manager ("" = default heap) — the hook into
	// Core's data management extension architecture.
	SM string
}

func (*CreateTableStmt) stmt() {}

// CreateIndexStmt is CREATE [UNIQUE] INDEX name ON t (cols) [USING am].
type CreateIndexStmt struct {
	Name   string
	Table  string
	Cols   []string
	Method string // "" = B-tree
	Unique bool
}

func (*CreateIndexStmt) stmt() {}

// CreateViewStmt is CREATE VIEW name [(cols)] AS query. Text preserves
// the original query body for catalog storage.
type CreateViewStmt struct {
	Name  string
	Cols  []string
	Query *SelectStmt
	Text  string
}

func (*CreateViewStmt) stmt() {}

// DropStmt is DROP TABLE/VIEW/INDEX.
type DropStmt struct {
	Kind  string // "TABLE", "VIEW", "INDEX"
	Name  string
	Table string // for DROP INDEX name ON table
}

func (*DropStmt) stmt() {}

// AnalyzeStmt recomputes a table's statistics.
type AnalyzeStmt struct{ Table string }

func (*AnalyzeStmt) stmt() {}

// ---------------------------------------------------------------------
// Transaction control

// BeginStmt is BEGIN [TRANSACTION|WORK]: it opens an explicit
// multi-statement transaction on the issuing session.
type BeginStmt struct{}

func (*BeginStmt) stmt() {}

// CommitStmt is COMMIT [TRANSACTION|WORK].
type CommitStmt struct{}

func (*CommitStmt) stmt() {}

// RollbackStmt is ROLLBACK [TRANSACTION|WORK].
type RollbackStmt struct{}

func (*RollbackStmt) stmt() {}

// ExplainStmt wraps a statement to show its compilation phases instead
// of executing it (Figure 1). With Analyze set (EXPLAIN ANALYZE) the
// statement IS executed, and the plan is rendered with actual
// per-operator rows, timings and memory beside the estimates.
type ExplainStmt struct {
	Stmt    Statement
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// WalkExprs visits every expression in an AST expression tree in
// preorder, including subquery-free children; subqueries are NOT
// descended into (they are separate scopes).
func WalkExprs(e Expr, f func(Expr) bool) bool {
	if e == nil {
		return true
	}
	if !f(e) {
		return false
	}
	switch x := e.(type) {
	case *Unary:
		return WalkExprs(x.E, f)
	case *Binary:
		return WalkExprs(x.L, f) && WalkExprs(x.R, f)
	case *IsNullExpr:
		return WalkExprs(x.E, f)
	case *LikeExpr:
		return WalkExprs(x.E, f) && WalkExprs(x.Pattern, f)
	case *BetweenExpr:
		return WalkExprs(x.E, f) && WalkExprs(x.Lo, f) && WalkExprs(x.Hi, f)
	case *InExpr:
		if !WalkExprs(x.E, f) {
			return false
		}
		for _, le := range x.List {
			if !WalkExprs(le, f) {
				return false
			}
		}
		return true
	case *QuantifiedCmp:
		return WalkExprs(x.L, f)
	case *FuncCall:
		for _, a := range x.Args {
			if !WalkExprs(a, f) {
				return false
			}
		}
		return true
	case *CaseExpr:
		for _, w := range x.Whens {
			if !WalkExprs(w.Cond, f) || !WalkExprs(w.Result, f) {
				return false
			}
		}
		return WalkExprs(x.Else, f)
	}
	return true
}
