package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/datum"
)

// Parser is a recursive-descent parser for Hydrogen.
type Parser struct {
	lex  *Lexer
	tok  Token // current token
	peek *Token
	src  string
}

// Parse parses a single statement (an optional trailing semicolon is
// consumed).
func Parse(src string) (Statement, error) {
	p := &Parser{lex: NewLexer(src), src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokSymbol && p.tok.Text == ";" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errorf("unexpected %s after statement", p.tok)
	}
	return stmt, nil
}

// ParseQuery parses a full query expression (used for view definitions
// stored as text).
func ParseQuery(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a query, got %T", stmt)
	}
	return sel, nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.tok.Pos)
}

func (p *Parser) advance() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peekTok looks one token ahead without consuming.
func (p *Parser) peekTok() (Token, error) {
	if p.peek == nil {
		t, err := p.lex.Next()
		if err != nil {
			return Token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *Parser) isKeyword(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == kw
}

func (p *Parser) isSymbol(s string) bool {
	return p.tok.Kind == TokSymbol && p.tok.Text == s
}

// accept consumes the current token when it is the given keyword.
func (p *Parser) accept(kw string) (bool, error) {
	if p.isKeyword(kw) {
		return true, p.advance()
	}
	return false, nil
}

// expect consumes a required keyword.
func (p *Parser) expect(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %s, got %s", kw, p.tok)
	}
	return p.advance()
}

// expectSymbol consumes a required symbol.
func (p *Parser) expectSymbol(s string) error {
	if !p.isSymbol(s) {
		return p.errorf("expected %q, got %s", s, p.tok)
	}
	return p.advance()
}

// acceptSymbol consumes the current token when it is the given symbol.
func (p *Parser) acceptSymbol(s string) (bool, error) {
	if p.isSymbol(s) {
		return true, p.advance()
	}
	return false, nil
}

// ident consumes an identifier (keywords are not identifiers).
func (p *Parser) ident() (string, error) {
	if p.tok.Kind != TokIdent {
		return "", p.errorf("expected identifier, got %s", p.tok)
	}
	name := p.tok.Text
	return name, p.advance()
}

// qualifiedIdent consumes a possibly schema-qualified table name —
// IDENT or IDENT "." IDENT — and returns it as the single dotted
// catalog key (e.g. "SYS.STATEMENTS"). Only table-name positions parse
// the qualified form; column references resolve dots as alias
// qualifiers instead.
func (p *Parser) qualifiedIdent() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	ok, err := p.acceptSymbol(".")
	if err != nil {
		return "", err
	}
	if !ok {
		return name, nil
	}
	rest, err := p.ident()
	if err != nil {
		return "", err
	}
	return name + "." + rest, nil
}

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("EXPLAIN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		analyze := false
		if p.isKeyword("ANALYZE") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind == TokIdent {
				// EXPLAIN ANALYZE <ident> explains the ANALYZE statement
				// itself (no statement starts with a bare identifier);
				// any statement keyword means EXPLAIN ANALYZE <stmt>.
				name, err := p.qualifiedIdent()
				if err != nil {
					return nil, err
				}
				return &ExplainStmt{Stmt: &AnalyzeStmt{Table: name}}, nil
			}
			analyze = true
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: inner, Analyze: analyze}, nil
	case p.isKeyword("SELECT"), p.isKeyword("WITH"), p.isSymbol("("):
		return p.parseSelectStmt()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("DROP"):
		return p.parseDrop()
	case p.isKeyword("ANALYZE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		return &AnalyzeStmt{Table: name}, nil
	case p.isKeyword("BEGIN"):
		if err := p.txnTail(); err != nil {
			return nil, err
		}
		return &BeginStmt{}, nil
	case p.isKeyword("COMMIT"):
		if err := p.txnTail(); err != nil {
			return nil, err
		}
		return &CommitStmt{}, nil
	case p.isKeyword("ROLLBACK"):
		if err := p.txnTail(); err != nil {
			return nil, err
		}
		return &RollbackStmt{}, nil
	}
	return nil, p.errorf("expected a statement, got %s", p.tok)
}

// txnTail consumes a transaction-control verb plus its optional
// TRANSACTION / WORK noise word.
func (p *Parser) txnTail() error {
	if err := p.advance(); err != nil {
		return err
	}
	if p.isKeyword("TRANSACTION") || p.isKeyword("WORK") {
		return p.advance()
	}
	return nil
}

// ---------------------------------------------------------------------
// Queries

func (p *Parser) parseSelectStmt() (*SelectStmt, error) {
	stmt := &SelectStmt{}
	if p.isKeyword("WITH") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		recursive, err := p.accept("RECURSIVE")
		if err != nil {
			return nil, err
		}
		for {
			cte := CTE{Recursive: recursive}
			cte.Name, err = p.ident()
			if err != nil {
				return nil, err
			}
			if p.isSymbol("(") {
				cte.Cols, err = p.parseNameList()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expect("AS"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			cte.Query, err = p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			stmt.With = append(stmt.With, cte)
			ok, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	body, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	stmt.Body = body
	if p.isKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			item := OrderItem{}
			item.Expr, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if ok, err := p.accept("DESC"); err != nil {
				return nil, err
			} else if ok {
				item.Desc = true
			} else if _, err := p.accept("ASC"); err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			ok, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if ok, err := p.accept("LIMIT"); err != nil {
		return nil, err
	} else if ok {
		stmt.Limit, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// parseQueryExpr parses set operations left-associatively; INTERSECT
// binds tighter than UNION/EXCEPT, as in the SQL standard.
func (p *Parser) parseQueryExpr() (QueryExpr, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("UNION") || p.isKeyword("EXCEPT") {
		kind := Union
		if p.isKeyword("EXCEPT") {
			kind = Except
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		all, err := p.accept("ALL")
		if err != nil {
			return nil, err
		}
		if !all {
			if _, err := p.accept("DISTINCT"); err != nil {
				return nil, err
			}
		}
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &SetOp{Kind: kind, All: all, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseQueryTerm() (QueryExpr, error) {
	left, err := p.parseQueryPrimary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("INTERSECT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		all, err := p.accept("ALL")
		if err != nil {
			return nil, err
		}
		right, err := p.parseQueryPrimary()
		if err != nil {
			return nil, err
		}
		left = &SetOp{Kind: Intersect, All: all, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseQueryPrimary() (QueryExpr, error) {
	if p.isSymbol("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseSelectCore()
}

func (p *Parser) parseSelectCore() (*SelectCore, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	if ok, err := p.accept("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		core.Distinct = true
	} else if _, err := p.accept("ALL"); err != nil {
		return nil, err
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		ok, err := p.acceptSymbol(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if ok, err := p.accept("FROM"); err != nil {
		return nil, err
	} else if ok {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			core.From = append(core.From, ref)
			ok, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if ok, err := p.accept("WHERE"); err != nil {
		return nil, err
	} else if ok {
		core.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.isKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			ok, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
	}
	if ok, err := p.accept("HAVING"); err != nil {
		return nil, err
	} else if ok {
		core.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return core, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.isSymbol("*") {
		return SelectItem{Star: true}, p.advance()
	}
	// Qualified star: ident.*
	if p.tok.Kind == TokIdent {
		pk, err := p.peekTok()
		if err != nil {
			return SelectItem{}, err
		}
		if pk.Kind == TokSymbol && pk.Text == "." {
			// Look two ahead is awkward; parse ident then check for ".*".
			name := p.tok.Text
			if err := p.advance(); err != nil { // consume ident
				return SelectItem{}, err
			}
			if err := p.advance(); err != nil { // consume "."
				return SelectItem{}, err
			}
			if p.isSymbol("*") {
				return SelectItem{Star: true, StarQualifier: name}, p.advance()
			}
			// Not a star: it's a qualified column; continue as an
			// expression starting from that column.
			col := p.tok.Text
			if p.tok.Kind != TokIdent && p.tok.Kind != TokKeyword {
				return SelectItem{}, p.errorf("expected column after %s., got %s", name, p.tok)
			}
			if err := p.advance(); err != nil {
				return SelectItem{}, err
			}
			e, err := p.continueExpr(&Ident{Qualifier: name, Name: col})
			if err != nil {
				return SelectItem{}, err
			}
			return p.finishSelectItem(e)
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return p.finishSelectItem(e)
}

func (p *Parser) finishSelectItem(e Expr) (SelectItem, error) {
	item := SelectItem{Expr: e}
	if ok, err := p.accept("AS"); err != nil {
		return item, err
	} else if ok {
		alias, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.tok.Kind == TokIdent {
		item.Alias = p.tok.Text
		if err := p.advance(); err != nil {
			return item, err
		}
	}
	return item, nil
}

// parseTableRef parses one FROM element, including explicit joins.
func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryTableRef()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.isKeyword("JOIN"), p.isKeyword("INNER"):
			kind = InnerJoin
			if p.isKeyword("INNER") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		case p.isKeyword("LEFT"):
			kind = LeftOuterJoin
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.accept("OUTER"); err != nil {
				return nil, err
			}
		case p.isKeyword("RIGHT"):
			kind = RightOuterJoin
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.accept("OUTER"); err != nil {
				return nil, err
			}
		default:
			return left, nil
		}
		if err := p.expect("JOIN"); err != nil {
			return nil, err
		}
		right, err := p.parsePrimaryTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &JoinRef{Kind: kind, L: left, R: right, On: on}
	}
}

func (p *Parser) parsePrimaryTableRef() (TableRef, error) {
	// Parenthesized subquery.
	if p.isSymbol("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ref := &SubqueryRef{Query: q}
		if _, err := p.accept("AS"); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokIdent {
			ref.Alias = p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isSymbol("(") {
				ref.Cols, err = p.parseNameList()
				if err != nil {
					return nil, err
				}
			}
		}
		return ref, nil
	}
	name, err := p.qualifiedIdent()
	if err != nil {
		return nil, err
	}
	// Table function: name(...).
	if p.isSymbol("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		tf := &TableFuncRef{Name: name}
		for !p.isSymbol(")") {
			// A table argument is an identifier not followed by an
			// expression operator, a nested table function, or a
			// parenthesized query; scalar arguments are expressions.
			arg, isTable, err := p.parseTableFuncArg()
			if err != nil {
				return nil, err
			}
			if isTable {
				tf.TableArgs = append(tf.TableArgs, arg.(TableRef))
			} else {
				tf.ScalarArgs = append(tf.ScalarArgs, arg.(Expr))
			}
			if ok, err := p.acceptSymbol(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if _, err := p.accept("AS"); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokIdent {
			tf.Alias = p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		return tf, nil
	}
	ref := &BaseTable{Name: name}
	if _, err := p.accept("AS"); err != nil {
		return nil, err
	}
	if p.tok.Kind == TokIdent {
		ref.Alias = p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return ref, nil
}

// parseTableFuncArg distinguishes table arguments from scalar arguments
// inside a table-function call.
func (p *Parser) parseTableFuncArg() (any, bool, error) {
	if p.isSymbol("(") {
		pk, err := p.peekTok()
		if err != nil {
			return nil, false, err
		}
		if pk.Kind == TokKeyword && (pk.Text == "SELECT" || pk.Text == "WITH") {
			ref, err := p.parsePrimaryTableRef()
			return ref, true, err
		}
	}
	if p.tok.Kind == TokIdent {
		pk, err := p.peekTok()
		if err != nil {
			return nil, false, err
		}
		// Bare identifier followed by ',' or ')' is a table name.
		if pk.Kind == TokSymbol && (pk.Text == "," || pk.Text == ")") {
			name := p.tok.Text
			if err := p.advance(); err != nil {
				return nil, false, err
			}
			return &BaseTable{Name: name}, true, nil
		}
	}
	e, err := p.parseExpr()
	return e, false, err
}

func (p *Parser) parseNameList() ([]string, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var names []string
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		ok, err := p.acceptSymbol(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	return names, p.expectSymbol(")")
}

// ---------------------------------------------------------------------
// Expressions

// parseExpr parses with precedence: OR < AND < NOT < predicate < add < mul < unary.
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

// continueExpr continues parsing an expression whose first primary has
// already been consumed (used by qualified-star disambiguation).
func (p *Parser) continueExpr(first Expr) (Expr, error) {
	e, err := p.parsePredicateRest(first)
	if err != nil {
		return nil, err
	}
	// Resume the AND/OR ladder above the predicate level.
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		e = &Binary{Op: "AND", L: e, R: r}
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = &Binary{Op: "OR", L: e, R: r}
	}
	return e, nil
}

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *Parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return p.parsePredicateRest(left)
}

// parsePredicateRest parses the comparison/IN/LIKE/BETWEEN/IS suffix for
// an already-parsed left operand.
func (p *Parser) parsePredicateRest(left Expr) (Expr, error) {
	// Allow the left side to continue as arithmetic (for continueExpr).
	left, err := p.continueAdditive(left)
	if err != nil {
		return nil, err
	}
	negated := false
	if p.isKeyword("NOT") {
		pk, err := p.peekTok()
		if err != nil {
			return nil, err
		}
		if pk.Kind == TokKeyword && (pk.Text == "IN" || pk.Text == "LIKE" || pk.Text == "BETWEEN") {
			negated = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	switch {
	case p.isKeyword("IN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if p.isKeyword("SELECT") || p.isKeyword("WITH") {
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &InExpr{E: left, Query: q, Negated: negated}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			ok, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: left, List: list, Negated: negated}, nil

	case p.isKeyword("LIKE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: left, Pattern: pat, Negated: negated}, nil

	case p.isKeyword("BETWEEN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expect("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: left, Lo: lo, Hi: hi, Negated: negated}, nil

	case p.isKeyword("IS"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		neg, err := p.accept("NOT")
		if err != nil {
			return nil, err
		}
		if err := p.expect("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: left, Negated: neg}, nil

	case p.isSymbol("=") || p.isSymbol("<>") || p.isSymbol("<") ||
		p.isSymbol("<=") || p.isSymbol(">") || p.isSymbol(">="):
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Quantified comparison: op ALL/ANY/SOME/<set-pred> (subquery).
		quant := ""
		if p.isKeyword("ALL") || p.isKeyword("ANY") || p.isKeyword("SOME") {
			quant = p.tok.Text
		} else if p.tok.Kind == TokIdent {
			// A DBC set predicate like MAJORITY: identifier followed by
			// "(SELECT".
			pk, err := p.peekTok()
			if err != nil {
				return nil, err
			}
			if pk.Kind == TokSymbol && pk.Text == "(" {
				// Peek can't see two ahead; tentatively treat known
				// uppercase identifiers as set predicates only when
				// followed by a subquery. We parse speculatively.
				quant = strings.ToUpper(p.tok.Text)
				if !p.looksLikeSetPredicate() {
					quant = ""
				}
			}
		}
		if quant != "" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &QuantifiedCmp{Op: op, Quant: quant, L: left, Query: q}, nil
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

// looksLikeSetPredicate reports whether the current identifier begins a
// set-predicate application "IDENT ( SELECT ...". It snapshots the
// lexer, scans two tokens, and restores.
func (p *Parser) looksLikeSetPredicate() bool {
	save := *p.lex
	savePeek := p.peek
	defer func() { *p.lex = save; p.peek = savePeek }()
	// current token is IDENT; peek must be "(" (checked by caller);
	// scan beyond the peek token for SELECT/WITH.
	if p.peek == nil {
		t, err := p.lex.Next()
		if err != nil {
			return false
		}
		p.peek = &t
	}
	t2, err := p.lex.Next()
	if err != nil {
		return false
	}
	return t2.Kind == TokKeyword && (t2.Text == "SELECT" || t2.Text == "WITH")
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	return p.continueAdditive(left)
}

func (p *Parser) continueAdditive(left Expr) (Expr, error) {
	for p.isSymbol("+") || p.isSymbol("-") || p.isSymbol("||") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("*") || p.isSymbol("/") || p.isSymbol("%") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.isSymbol("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", E: e}, nil
	}
	if p.isSymbol("+") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.Kind == TokInt:
		v, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %s", p.tok.Text)
		}
		return &Lit{Val: datum.NewInt(v)}, p.advance()

	case p.tok.Kind == TokFloat:
		v, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errorf("bad number %s", p.tok.Text)
		}
		return &Lit{Val: datum.NewFloat(v)}, p.advance()

	case p.tok.Kind == TokString:
		return &Lit{Val: datum.NewString(p.tok.Text)}, p.advance()

	case p.tok.Kind == TokParam:
		return &ParamRef{Name: p.tok.Text}, p.advance()

	case p.isKeyword("NULL"):
		return &Lit{Val: datum.Null}, p.advance()

	case p.isKeyword("TRUE"):
		return &Lit{Val: datum.NewBool(true)}, p.advance()

	case p.isKeyword("FALSE"):
		return &Lit{Val: datum.NewBool(false)}, p.advance()

	case p.isKeyword("CASE"):
		return p.parseCase()

	case p.isKeyword("EXISTS"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Query: q}, nil

	case p.isSymbol("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Scalar subquery or parenthesized expression.
		if p.isKeyword("SELECT") || p.isKeyword("WITH") {
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Query: q}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectSymbol(")")

	case p.tok.Kind == TokIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Function call.
		if p.isSymbol("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			fc := &FuncCall{Name: name}
			if p.isSymbol("*") {
				fc.Star = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if !p.isSymbol(")") {
				if ok, err := p.accept("DISTINCT"); err != nil {
					return nil, err
				} else if ok {
					fc.Distinct = true
				}
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					ok, err := p.acceptSymbol(",")
					if err != nil {
						return nil, err
					}
					if !ok {
						break
					}
				}
			}
			return fc, p.expectSymbol(")")
		}
		// Qualified column.
		if p.isSymbol(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind != TokIdent {
				return nil, p.errorf("expected column name after %s., got %s", name, p.tok)
			}
			col := p.tok.Text
			return &Ident{Qualifier: name, Name: col}, p.advance()
		}
		return &Ident{Name: name}, nil
	}
	return nil, p.errorf("unexpected %s in expression", p.tok)
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expect("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.isKeyword("WHEN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if ok, err := p.accept("ELSE"); err != nil {
		return nil, err
	} else if ok {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	return c, p.expect("END")
}

// ---------------------------------------------------------------------
// DML / DDL

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expect("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	if p.isSymbol("(") {
		ins.Cols, err = p.parseNameList()
		if err != nil {
			return nil, err
		}
	}
	if ok, err := p.accept("VALUES"); err != nil {
		return nil, err
	} else if ok {
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				ok, err := p.acceptSymbol(",")
				if err != nil {
					return nil, err
				}
				if !ok {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			ok, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
		return ins, nil
	}
	ins.Query, err = p.parseSelectStmt()
	return ins, err
}

func (p *Parser) parseUpdate() (Statement, error) {
	if err := p.expect("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedIdent()
	if err != nil {
		return nil, err
	}
	up := &UpdateStmt{Table: name}
	if p.tok.Kind == TokIdent {
		up.Alias = p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Sets = append(up.Sets, SetClause{Col: col, Expr: e})
		ok, err := p.acceptSymbol(",")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	if ok, err := p.accept("WHERE"); err != nil {
		return nil, err
	} else if ok {
		up.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return up, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.expect("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	name, err := p.qualifiedIdent()
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: name}
	if p.tok.Kind == TokIdent {
		del.Alias = p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if ok, err := p.accept("WHERE"); err != nil {
		return nil, err
	} else if ok {
		del.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return del, nil
}

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expect("CREATE"); err != nil {
		return nil, err
	}
	unique, err := p.accept("UNIQUE")
	if err != nil {
		return nil, err
	}
	switch {
	case p.isKeyword("TABLE") && !unique:
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		ct := &CreateTableStmt{Name: name}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		for {
			cd := ColDef{}
			cd.Name, err = p.ident()
			if err != nil {
				return nil, err
			}
			if p.tok.Kind != TokIdent && p.tok.Kind != TokKeyword {
				return nil, p.errorf("expected type name, got %s", p.tok)
			}
			cd.TypeName = strings.ToUpper(p.tok.Text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			// Optional (n) size suffix, ignored.
			if p.isSymbol("(") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				for !p.isSymbol(")") {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if ok, err := p.accept("NOT"); err != nil {
				return nil, err
			} else if ok {
				if err := p.expect("NULL"); err != nil {
					return nil, err
				}
				cd.NotNull = true
			}
			ct.Cols = append(ct.Cols, cd)
			ok, err := p.acceptSymbol(",")
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if ok, err := p.accept("USING"); err != nil {
			return nil, err
		} else if ok {
			ct.SM, err = p.ident()
			if err != nil {
				return nil, err
			}
			ct.SM = strings.ToUpper(ct.SM)
		}
		return ct, nil

	case p.isKeyword("INDEX"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("ON"); err != nil {
			return nil, err
		}
		table, err := p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		cols, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		ci := &CreateIndexStmt{Name: name, Table: table, Cols: cols, Unique: unique}
		if ok, err := p.accept("USING"); err != nil {
			return nil, err
		} else if ok {
			m, err := p.ident()
			if err != nil {
				return nil, err
			}
			ci.Method = strings.ToUpper(m)
		}
		return ci, nil

	case p.isKeyword("VIEW") && !unique:
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
		cv := &CreateViewStmt{Name: name}
		if p.isSymbol("(") {
			cv.Cols, err = p.parseNameList()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect("AS"); err != nil {
			return nil, err
		}
		start := p.tok.Pos
		cv.Query, err = p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		cv.Text = strings.TrimRight(strings.TrimSpace(p.src[start:]), ";")
		return cv, nil
	}
	return nil, p.errorf("expected TABLE, INDEX or VIEW after CREATE")
}

func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expect("DROP"); err != nil {
		return nil, err
	}
	var kind string
	switch {
	case p.isKeyword("TABLE"):
		kind = "TABLE"
	case p.isKeyword("VIEW"):
		kind = "VIEW"
	case p.isKeyword("INDEX"):
		kind = "INDEX"
	default:
		return nil, p.errorf("expected TABLE, VIEW or INDEX after DROP")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.qualifiedIdent()
	if err != nil {
		return nil, err
	}
	ds := &DropStmt{Kind: kind, Name: name}
	if kind == "INDEX" {
		if err := p.expect("ON"); err != nil {
			return nil, err
		}
		ds.Table, err = p.qualifiedIdent()
		if err != nil {
			return nil, err
		}
	}
	return ds, nil
}
