// Package sql implements Hydrogen, Starburst's query language (section
// 2 of the paper): an SQL-based language generalized for orthogonality —
// table expressions usable anywhere a table is, set operations anywhere
// a select is, views anywhere a base table is — plus externally defined
// scalar, aggregate, set-predicate and table functions, host-language
// parameters, and recursion through cyclic table-expression references.
//
// The package provides the lexer, the abstract syntax tree, and a
// recursive-descent parser. Semantic analysis happens during the
// translation to the Query Graph Model (package qgm), as in the paper
// ("semantic analysis of the query is also done during parsing, so the
// QGM produced is guaranteed to be valid").
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokParam // :name
	TokSymbol
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // keywords uppercased; identifiers as written
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

var keywords = map[string]bool{}

func init() {
	for _, k := range []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
		"ASC", "DESC", "DISTINCT", "ALL", "AS", "AND", "OR", "NOT",
		"IN", "EXISTS", "ANY", "SOME", "BETWEEN", "LIKE", "IS", "NULL",
		"TRUE", "FALSE", "UNION", "INTERSECT", "EXCEPT", "WITH",
		"RECURSIVE", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
		"DELETE", "CREATE", "DROP", "TABLE", "INDEX", "VIEW", "UNIQUE",
		"ON", "USING", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CASE",
		"WHEN", "THEN", "ELSE", "END", "ANALYZE", "LIMIT", "EXPLAIN",
		"BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION", "WORK",
	} {
		keywords[k] = true
	}
}

// Lexer splits Hydrogen text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		up := strings.ToUpper(text)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil

	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		isFloat := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !isFloat {
				isFloat = true
				l.pos++
				continue
			}
			if (ch == 'e' || ch == 'E') && l.pos+1 < len(l.src) &&
				(isDigit(l.src[l.pos+1]) || ((l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') && l.pos+2 < len(l.src) && isDigit(l.src[l.pos+2]))) {
				isFloat = true
				l.pos += 2
				continue
			}
			break
		}
		kind := TokInt
		if isFloat {
			kind = TokFloat
		}
		return Token{Kind: kind, Text: l.src[start:l.pos], Pos: start}, nil

	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(ch)
			l.pos++
		}
		return Token{Kind: TokString, Text: b.String(), Pos: start}, nil

	case c == '"': // delimited identifier
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '"')
		if end < 0 {
			return Token{}, fmt.Errorf("sql: unterminated delimited identifier at offset %d", start)
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil

	case c == ':':
		l.pos++
		ns := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		if l.pos == ns {
			return Token{}, fmt.Errorf("sql: empty parameter name at offset %d", start)
		}
		return Token{Kind: TokParam, Text: l.src[ns:l.pos], Pos: start}, nil

	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
		// Line comment.
		for l.pos < len(l.src) && l.src[l.pos] != '\n' {
			l.pos++
		}
		return l.Next()

	default:
		// Multi-character symbols first.
		for _, sym := range []string{"<>", "!=", "<=", ">=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], sym) {
				l.pos += len(sym)
				if sym == "!=" {
					sym = "<>"
				}
				return Token{Kind: TokSymbol, Text: sym, Pos: start}, nil
			}
		}
		if strings.ContainsRune("+-*/%(),.<>=;", rune(c)) {
			l.pos++
			return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Tokenize lexes the whole input, for tests and diagnostics.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
