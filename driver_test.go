package starburst

import (
	"context"
	gosql "database/sql"
	"errors"
	"testing"
)

// Smoke test for the database/sql bridge: Query, Exec, prepared
// statements, named and positional parameters, NULLs, and DSN sharing
// with the native API.

func TestDriverEndToEnd(t *testing.T) {
	native := Open(WithPlanCache(16))
	RegisterDSN("driver-e2e", native)
	sdb, err := gosql.Open(DriverName, "driver-e2e")
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()

	if _, err := sdb.Exec(`CREATE TABLE parts (partno INT, name STRING, weight FLOAT)`); err != nil {
		t.Fatal(err)
	}
	for _, ins := range []string{
		`INSERT INTO parts VALUES (1, 'bolt', 0.1)`,
		`INSERT INTO parts VALUES (2, 'nut', 0.05)`,
		`INSERT INTO parts VALUES (3, 'gear', 2.5)`,
	} {
		res, err := sdb.Exec(ins)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.RowsAffected(); n != 1 {
			t.Fatalf("%s: want 1 row affected, got %d", ins, n)
		}
	}

	// Positional args bind :p1, :p2, ...
	rows, err := sdb.Query(`SELECT name, weight FROM parts WHERE partno >= :p1 ORDER BY partno`, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for rows.Next() {
		var name string
		var weight float64
		if err := rows.Scan(&name, &weight); err != nil {
			t.Fatal(err)
		}
		got = append(got, name)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "nut" || got[1] != "gear" {
		t.Fatalf("positional query returned %v", got)
	}

	// Named args bind sql.Named.
	var cnt int64
	if err := sdb.QueryRow(`SELECT COUNT(*) FROM parts WHERE weight < :w`,
		gosql.Named("w", 1.0)).Scan(&cnt); err != nil {
		t.Fatal(err)
	}
	if cnt != 2 {
		t.Fatalf("named query: want 2, got %d", cnt)
	}

	// Prepared statements run repeatedly with fresh bindings.
	st, err := sdb.Prepare(`SELECT partno FROM parts WHERE name = :p1`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for name, want := range map[string]int64{"bolt": 1, "gear": 3} {
		var pn int64
		if err := st.QueryRow(name).Scan(&pn); err != nil {
			t.Fatal(err)
		}
		if pn != want {
			t.Fatalf("prepared %s: want %d, got %d", name, want, pn)
		}
	}

	// Prepared Exec path (parameters need column context for typing, so
	// the DML here binds them in predicates).
	if _, err := sdb.Exec(`INSERT INTO parts VALUES (4, 'washer', 0.02)`); err != nil {
		t.Fatal(err)
	}
	del, err := sdb.Prepare(`DELETE FROM parts WHERE name = :p1`)
	if err != nil {
		t.Fatal(err)
	}
	defer del.Close()
	res, err := del.Exec("washer")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Fatalf("prepared delete: want 1 affected, got %d", n)
	}

	// NULL round trip.
	if _, err := sdb.Exec(`INSERT INTO parts (partno) VALUES (5)`); err != nil {
		// Dialect may not support column lists; insert explicit NULLs.
		if _, err := sdb.Exec(`INSERT INTO parts VALUES (5, NULL, NULL)`); err != nil {
			t.Fatal(err)
		}
	}
	var name gosql.NullString
	if err := sdb.QueryRow(`SELECT name FROM parts WHERE partno = 5`).Scan(&name); err != nil {
		t.Fatal(err)
	}
	if name.Valid {
		t.Fatalf("want NULL name, got %q", name.String)
	}

	// The DSN shares one DB with native callers.
	nres, err := native.Exec(`SELECT COUNT(*) FROM parts`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Rows[0][0].Int() != 4 {
		t.Fatalf("native view of driver writes: want 4 rows, got %v", nres.Rows[0][0])
	}

	// Driver errors still satisfy the QueryError contract.
	_, err = sdb.Exec(`SELEC broken`)
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("driver error does not wrap *QueryError: %v", err)
	}

	// Unsupported isolation levels are rejected, not silently weakened.
	if _, err := sdb.BeginTx(context.Background(),
		&gosql.TxOptions{Isolation: gosql.LevelSerializable}); err == nil {
		t.Fatal("BeginTx(serializable) must fail")
	}
}

// TestDriverTransactions is the database/sql transaction conformance
// round trip: commits become visible, rollbacks never do, statements
// inside a transaction see their own writes, and concurrent
// connections are snapshot-isolated from an open transaction.
func TestDriverTransactions(t *testing.T) {
	native := Open()
	RegisterDSN("driver-txn", native)
	sdb, err := gosql.Open(DriverName, "driver-txn")
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if _, err := sdb.Exec(`CREATE TABLE acct (id INT NOT NULL, bal INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Exec(`INSERT INTO acct VALUES (1, 100)`); err != nil {
		t.Fatal(err)
	}

	count := func(q string) int64 {
		t.Helper()
		var n int64
		if err := sdb.QueryRow(q).Scan(&n); err != nil {
			t.Fatal(err)
		}
		return n
	}

	// Commit publishes.
	tx, err := sdb.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO acct VALUES (2, 50)`); err != nil {
		t.Fatal(err)
	}
	// The transaction sees its own uncommitted write.
	var n int64
	if err := tx.QueryRow(`SELECT COUNT(*) FROM acct`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("tx sees %d rows of its own writes, want 2", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := count(`SELECT COUNT(*) FROM acct`); got != 2 {
		t.Fatalf("after commit: %d rows, want 2", got)
	}

	// Rollback discards.
	tx, err = sdb.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE acct SET bal = 0 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := count(`SELECT bal FROM acct WHERE id = 1`); got != 100 {
		t.Fatalf("after rollback: bal = %d, want 100", got)
	}

	// Prepared statements inside the transaction join it (parameters
	// bind in predicates, where the column gives them a type).
	tx, err = sdb.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO acct VALUES (3, 25)`); err != nil {
		t.Fatal(err)
	}
	upd, err := tx.Prepare(`UPDATE acct SET bal = 0 WHERE id = :p1`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := upd.Exec(int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.RowsAffected(); got != 1 {
		t.Fatalf("prepared update inside tx affected %d rows, want 1 (joined the transaction?)", got)
	}
	upd.Close()
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := count(`SELECT COUNT(*) FROM acct`); got != 2 {
		t.Fatalf("prepared write escaped rollback: %d rows, want 2", got)
	}

	// A concurrent connection is isolated from an open transaction, and
	// a snapshot transaction opened before a concurrent commit keeps its
	// stable view until it ends.
	reader, err := sdb.BeginTx(context.Background(),
		&gosql.TxOptions{Isolation: gosql.LevelRepeatableRead})
	if err != nil {
		t.Fatal(err)
	}
	if err := reader.QueryRow(`SELECT COUNT(*) FROM acct`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("reader snapshot: %d rows, want 2", n)
	}
	writer, err := sdb.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec(`INSERT INTO acct VALUES (4, 10)`); err != nil {
		t.Fatal(err)
	}
	// Uncommitted writer rows are invisible to the reader.
	if err := reader.QueryRow(`SELECT COUNT(*) FROM acct`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("reader saw uncommitted rows: %d, want 2", n)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed-after-snapshot rows stay invisible under snapshot
	// isolation.
	if err := reader.QueryRow(`SELECT COUNT(*) FROM acct`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("snapshot reader saw a later commit: %d rows, want 2", n)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := count(`SELECT COUNT(*) FROM acct`); got != 3 {
		t.Fatalf("after all commits: %d rows, want 3", got)
	}

	// Read-committed transactions refresh per statement.
	rc, err := sdb.BeginTx(context.Background(),
		&gosql.TxOptions{Isolation: gosql.LevelReadCommitted})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Exec(`INSERT INTO acct VALUES (5, 1)`); err != nil {
		t.Fatal(err)
	}
	if err := rc.QueryRow(`SELECT COUNT(*) FROM acct`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("read-committed reader: %d rows, want 4", n)
	}
	if err := rc.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDriverAutoDSN(t *testing.T) {
	sdb, err := gosql.Open(DriverName, "driver-auto-fresh")
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if _, err := sdb.Exec(`CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Exec(`INSERT INTO t VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	// A second pool under the same DSN sees the same database.
	sdb2, err := gosql.Open(DriverName, "driver-auto-fresh")
	if err != nil {
		t.Fatal(err)
	}
	defer sdb2.Close()
	var a int64
	if err := sdb2.QueryRow(`SELECT a FROM t`).Scan(&a); err != nil {
		t.Fatal(err)
	}
	if a != 7 {
		t.Fatalf("want 7, got %d", a)
	}
}
