GO ?= go

.PHONY: all build test vet lint race check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the project-specific static checker (see cmd/starburst-lint
# and the README): qgm mutation discipline, complete rewrite.Rule
# literals, no raw datum.Value comparison, no naked panic in the
# execution engine.
lint:
	$(GO) run ./cmd/starburst-lint ./...

# check is the full gate CI runs: vet, build, race-enabled tests, lint.
check: vet build race lint
