GO ?= go

.PHONY: all build test vet lint race check faults bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the project-specific static checker (see cmd/starburst-lint
# and the README): qgm mutation discipline, complete rewrite.Rule
# literals, no raw datum.Value comparison, no naked panic in the
# execution engine.
lint:
	$(GO) run ./cmd/starburst-lint ./...

# faults runs the robustness gate: the fault matrix (every QES operator
# over a failing store), exhaustive DML atomicity, and a fuzz smoke over
# random fault schedules.
faults:
	$(GO) test ./ -count=1 -run 'TestFaultMatrix|TestDMLAtomicity|TestCancelDuringFaultLatency|FuzzFaultSchedule'
	$(GO) test ./ -run FuzzFaultSchedule -fuzz FuzzFaultSchedule -fuzztime 10s

# bench records the Figure-1 phase benchmarks as JSON for the perf
# trajectory across PRs.
bench:
	BENCH_JSON=BENCH_PR2.json $(GO) test ./ -count=1 -run TestEmitBenchJSON -v

# check is the full gate CI runs: vet, build, race-enabled tests, lint.
check: vet build race lint
