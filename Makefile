GO ?= go

.PHONY: all build test vet lint lint-json fmt race check faults torture bench bench-compare obs introspect vectorize api mvcc

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the project-specific analyzer suite (see cmd/starburst-lint
# and DESIGN.md "Static analysis") over every module package, then the
# analyzer fixture self-tests. The suite covers the original rules (qgm
# mutation discipline, complete rewrite.Rule literals, no raw
# datum.Value comparison, no naked panic in the execution engine, DML
# through the undo log, operatorKind registration, worker-safe Ctx
# writes, the context-first statement core) plus the call-graph
# concurrency contracts: lock-discipline over the starburst:locks
# annotations, goroutine-hygiene (joined goroutines, select-guarded
# sends), error-discard (Close/IterErr/Rollback propagation),
# budget-tick (row loops charge the execution budget), wait-event
# (starburst:waits-annotated blocking sites must record the declared
# wait events), and vector-boxing (columnar kernels stay unboxed and
# respect the selection vector). Findings are suppressible only with a
# justified //lint:ignore.
lint:
	$(GO) run ./cmd/starburst-lint ./...
	$(GO) test ./cmd/starburst-lint -count=1

# lint-json emits the same diagnostics as a machine-readable JSON array
# (module-root-relative paths, sorted by position).
lint-json:
	$(GO) run ./cmd/starburst-lint -json ./...

# fmt fails if any tracked Go file drifts from gofmt.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# api diffs the exported API surface against the api.txt golden; after
# a deliberate API change regenerate with
#   UPDATE_API=1 $(GO) test ./ -run TestPublicAPIGolden
# and review the api.txt diff.
api:
	$(GO) test ./ -count=1 -run TestPublicAPIGolden

# faults runs the robustness gate: the fault matrix (every QES operator
# over a failing store), exhaustive DML atomicity, and a fuzz smoke over
# random fault schedules.
faults:
	$(GO) test ./ -count=1 -run 'TestFaultMatrix|TestDMLAtomicity|TestCancelDuringFaultLatency|FuzzFaultSchedule'
	$(GO) test ./ -run FuzzFaultSchedule -fuzz FuzzFaultSchedule -fuzztime 10s

# obs runs the observability gate: per-operator stats invariants over
# every operator kind (clean, faulted, cancelled), metrics counters,
# tracing, slow-query log, EXPLAIN ANALYZE end to end, and the shell
# golden files.
obs:
	$(GO) test ./ -count=1 -run 'TestAnalyzeInvariants|TestInstrumentationKeeps|TestMetricsCounters|TestTracing|TestRewriteFirings|TestSlowQueryLog|TestExplainAnalyze|TestObsServer'
	$(GO) test ./cmd/starburst -count=1
	$(GO) test ./internal/obs -count=1

# torture runs the crash-recovery matrix under the race detector: a
# crash fault at every WAL append, WAL sync and checkpoint page write
# over the mixed DDL+DML workload, plus the store-level crash tests and
# the access-method fault matrix.
torture:
	$(GO) test ./ -count=1 -race -run 'TestCrashRecoveryTorture|TestCrashedStoreRefusesWork|TestDataDir|TestEngineCorpusOnDisk|TestAccessMethod'
	$(GO) test ./internal/storage/disk -count=1 -race

# introspect runs the observability-introspection gate: the SYS virtual
# tables end to end through the normal query pipeline (goldens, joins
# against SYS.WAITS, DML/DDL rejection, fault- and cancel-safety
# mid-scan), wait-event profiling attribution, statement span export,
# the metrics # HELP conformance check, and the slow-query log with its
# top wait events at DOP 4 under the race detector.
introspect:
	$(GO) test ./ -count=1 -run 'TestSys|TestSpanExport|TestWaitProfile|TestIntrospection'
	$(GO) test ./ -count=1 -race -run 'TestSlowQueryLogWaits|TestSysConcurrent'
	$(GO) test ./internal/obs -count=1

# vectorize runs the columnar-execution gate: the three-way
# row == batch == columnar equivalence corpus (serial and DOP 4, under
# the race detector), the columnar fault/cancel/budget matrix, the
# build-engagement guard, the batch buffer-hygiene regression tests,
# and the ColBatch unit tests.
vectorize:
	$(GO) test ./ -count=1 -run 'TestColumnar'
	$(GO) test ./ -count=1 -race -run 'TestColumnarEquivalenceCorpus|TestColumnarAggregates|TestCardinalityFeedback'
	$(GO) test ./internal/datum -count=1
	$(GO) test ./internal/exec -count=1

# mvcc runs the transaction gate under the race detector: the
# randomized concurrent-schedule generator with its snapshot-history
# checker (readers during DDL, write-write conflict, rollback-heavy),
# the deterministic Tx/Session API tests, the mid-statement fault
# rollback, and the database/sql driver transaction conformance test.
mvcc:
	$(GO) test ./ -count=1 -race -run 'TestMVCC|TestTx|TestSession|TestDriverTransactions'

# bench records the Figure-1 phase, parallel-execution, plan-cache,
# disk-storage, columnar-execution, cardinality-feedback and
# MVCC-concurrency benchmarks as JSON for the perf trajectory across
# PRs.
bench:
	BENCH_JSON=BENCH_PR10.json $(GO) test ./ -count=1 -run TestEmitBenchJSON -v

# bench-compare regenerates BENCH_PR10.json and diffs it against the
# PR-9 baseline, failing on a >5% serial regression of the end-to-end
# paper query (MVCC bookkeeping must stay off the serial fast path),
# a concurrent mixed-workload speedup below 2x over the RWMutex
# discipline, a columnar scan→filter→aggregate speedup below 1.5x over
# the row-batch path, a parallel speedup below 2x, a batched-path alloc
# saving below 25%, a plan-cache hit speedup below 5x, or a disk write
# path more than 3x the heap's.
bench-compare: bench
	$(GO) run ./cmd/benchcmp BENCH_PR9.json BENCH_PR10.json

# check is the full gate CI runs: formatting, vet, build, race-enabled
# tests, the lint suite (analyzers + fixture self-tests), the
# introspection gate, the columnar-execution gate, the MVCC
# transaction gate, and the exported-API golden diff.
check: fmt vet build race lint introspect vectorize mvcc api
