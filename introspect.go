package starburst

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/obs"
	"repro/internal/storage"
)

// This file is the queryable introspection layer: a SYS schema of
// virtual tables served by a read-only storage manager registered
// through the paper's extension architecture, exactly as a DBC would
// add one. Each SYS table snapshots live engine state at scan time and
// flows through the normal parse → QGM → rewrite → optimize → execute
// path, so the full query language (joins, aggregates, ORDER BY,
// EXPLAIN) works over engine internals:
//
//	SELECT name, calls, total_ns FROM SYS.STATEMENTS ORDER BY total_ns DESC
//	SELECT w.event, w.total_ns FROM SYS.WAITS w WHERE w.stmt IS NULL
//
// The tables are registered at Open under the VIRTUAL storage manager
// and marked system objects: DML and DDL against them fail with a
// *catalog.SystemObjectError, and they are excluded from catalog
// snapshots (they are rebuilt fresh at every Open).

// SysStorageManager is the name of the read-only virtual storage
// manager backing the SYS schema — the third registered manager beside
// HEAP and DISK on a durable DB.
const SysStorageManager = "VIRTUAL"

// SpanExporter receives one structured statement span per finished
// statement (see DB.SetSpanExporter).
type SpanExporter func(*StatementSpan)

// Re-exported span types, so exporters are written against the public
// package alone.
type (
	// StatementSpan is the exported trace record for one statement.
	StatementSpan = obs.StatementSpan
	// Span is one node of a statement span tree.
	Span = obs.Span
	// WaitStat is one wait-event class total (see DB.WaitStats).
	WaitStat = obs.WaitStat
)

// SetSpanExporter installs f as the statement-trace sink: every
// statement finished afterwards is rendered as a span tree — phases,
// one span per operator with its open/next/close call split, wait
// events as annotations — and handed to f synchronously from the
// statement's observe step. nil uninstalls. While an exporter is
// installed, statements run instrumented (per-operator stats feed the
// operator spans), which costs a few percent; with no exporter the
// statement path is unchanged.
func (db *DB) SetSpanExporter(f SpanExporter) {
	if f == nil {
		db.spanExp.Store(nil)
		return
	}
	db.spanExp.Store(&f)
}

func (db *DB) spanExporter() SpanExporter {
	if p := db.spanExp.Load(); p != nil {
		return *p
	}
	return nil
}

// WaitStats snapshots the DB-wide wait-event profile (also queryable
// as the STMT IS NULL rows of SYS.WAITS).
func (db *DB) WaitStats() []WaitStat { return db.waitProf.Snapshot() }

// ---------------------------------------------------------------------
// Statement statistics (SYS.STATEMENTS)

// stmtStatsCap bounds the statement-statistics map; when full, the
// entry with the fewest calls is evicted to admit a new statement.
const stmtStatsCap = 512

// stmtWaitAgg is one wait-event class total attributed to a statement.
type stmtWaitAgg struct {
	count, nanos, max int64
}

// stmtStatEntry accumulates pg_stat_statements-style totals for one
// normalized statement text.
type stmtStatEntry struct {
	name      string // normalized SQL (the plan cache's key text)
	kind      string
	calls     int64
	errs      int64
	rows      int64 // rows returned or affected
	totalNs   int64
	minNs     int64
	maxNs     int64
	memHW     int64 // largest per-operator memory high-water seen
	cacheHits int64 // plan-cache hits
	fbFolds   int64 // cardinality-feedback folds this statement caused
	waits     [obs.NumWaitEvents]stmtWaitAgg
}

// stmtStats is the DB-wide statement-statistics accumulator: always
// on, bounded, keyed by normalized SQL.
type stmtStats struct {
	mu sync.Mutex
	m  map[string]*stmtStatEntry
}

func (s *stmtStats) record(name, kind string, nanos, rows, memHW int64,
	cacheHit, errored bool, fbFolds int64, waits []obs.WaitStat) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = map[string]*stmtStatEntry{}
	}
	e := s.m[name]
	if e == nil {
		if len(s.m) >= stmtStatsCap {
			s.evictLocked()
		}
		e = &stmtStatEntry{name: name, kind: kind, minNs: nanos}
		s.m[name] = e
	}
	e.calls++
	if errored {
		e.errs++
	}
	e.rows += rows
	e.totalNs += nanos
	if nanos < e.minNs {
		e.minNs = nanos
	}
	if nanos > e.maxNs {
		e.maxNs = nanos
	}
	if memHW > e.memHW {
		e.memHW = memHW
	}
	if cacheHit {
		e.cacheHits++
	}
	e.fbFolds += fbFolds
	for _, w := range waits {
		a := &e.waits[w.Event]
		a.count += w.Count
		a.nanos += w.Nanos
		if w.MaxNanos > a.max {
			a.max = w.MaxNanos
		}
	}
}

// evictLocked drops the cap/8 entries with the fewest calls (ties
// broken by name for determinism). Evicting a batch rather than a
// single victim amortizes the scan: a workload of all-distinct SQL
// (e.g. INSERTs with literal values) pays one O(cap log cap) pass per
// cap/8 admissions instead of an O(cap) scan per statement. Caller
// holds s.mu.
func (s *stmtStats) evictLocked() {
	all := make([]*stmtStatEntry, 0, len(s.m))
	for _, e := range s.m {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].calls != all[j].calls {
			return all[i].calls < all[j].calls
		}
		return all[i].name < all[j].name
	})
	n := stmtStatsCap / 8
	if n > len(all) {
		n = len(all)
	}
	for _, e := range all[:n] {
		delete(s.m, e.name)
	}
}

// snapshot returns copies of every entry, sorted by name.
func (s *stmtStats) snapshot() []stmtStatEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]stmtStatEntry, 0, len(s.m))
	for _, e := range s.m {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// ---------------------------------------------------------------------
// Session registry (SYS.SESSIONS)

// sessionReg tracks open sessions for SYS.SESSIONS.
type sessionReg struct {
	mu     sync.Mutex
	nextID int64
	m      map[int64]*Session
}

func (r *sessionReg) add(s *Session) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = map[int64]*Session{}
	}
	r.nextID++
	r.m[r.nextID] = s
	return r.nextID
}

func (r *sessionReg) remove(id int64) {
	r.mu.Lock()
	delete(r.m, id)
	r.mu.Unlock()
}

// snapshot returns the live sessions sorted by id.
func (r *sessionReg) snapshot() []*Session {
	r.mu.Lock()
	out := make([]*Session, 0, len(r.m))
	for _, s := range r.m {
		out = append(out, s)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// ---------------------------------------------------------------------
// Admin-lock wait sites

// lockAdminShared acquires the administrative lock shared (the side
// every statement holds for its duration), charging the acquisition
// wait to the profile and to ws (nil-safe). Contention appears only
// while Close or fault attach/detach holds the exclusive side — the
// event keeps the STMT_LOCK name for continuity with the retired
// DB-wide statement lock.
//
// starburst:waits STMT_LOCK
func (db *DB) lockAdminShared(ws *obs.WaitSet) {
	start := time.Now()
	db.adminMu.RLock()
	d := time.Since(start).Nanoseconds()
	db.waitProf.Record(obs.WaitStmtLock, d)
	ws.Record(obs.WaitStmtLock, d)
}

// lockAdminExcl is lockAdminShared for the exclusive
// (engine-restructuring) side.
//
// starburst:waits STMT_LOCK
func (db *DB) lockAdminExcl(ws *obs.WaitSet) {
	start := time.Now()
	db.adminMu.Lock()
	d := time.Since(start).Nanoseconds()
	db.waitProf.Record(obs.WaitStmtLock, d)
	ws.Record(obs.WaitStmtLock, d)
}

// ---------------------------------------------------------------------
// SYS schema registration

// registerIntrospection installs the VIRTUAL storage manager and the
// SYS tables. Runs at the end of Open, after options (so a recovered
// catalog never collides with SYS names, which CreateTable rejects
// anyway) and before the DB is visible to any caller.
func (db *DB) registerIntrospection() {
	vm := storage.NewVirtualManager(SysStorageManager)
	if err := db.cat.Storage.RegisterStorageManager(vm); err != nil {
		if db.openErr == nil {
			db.openErr = err
		}
		return
	}
	str := func(name string) catalog.Column {
		return catalog.Column{Name: name, Type: datum.TString, NotNull: true}
	}
	num := func(name string) catalog.Column {
		return catalog.Column{Name: name, Type: datum.TInt, NotNull: true}
	}
	for _, t := range []struct {
		name string
		cols []catalog.Column
		src  storage.VirtualSource
	}{
		{"SYS.STATEMENTS", []catalog.Column{
			str("NAME"), str("KIND"), num("CALLS"), num("ERRORS"), num("ROWS"),
			num("TOTAL_NS"), num("MIN_NS"), num("MAX_NS"), num("MEAN_NS"),
			num("MEM_HW"), num("PLAN_CACHE_HITS"), num("FEEDBACK_FOLDS"),
		}, db.sysStatements},
		{"SYS.SESSIONS", []catalog.Column{
			num("ID"), str("STATE"),
			{Name: "SQL", Type: datum.TString},
			num("DOP"), num("BATCH"),
			{Name: "TRACING", Type: datum.TBool, NotNull: true},
			num("STATEMENTS"),
		}, db.sysSessions},
		{"SYS.PLAN_CACHE", []catalog.Column{
			str("NAME"), str("KIND"), num("GEN"), num("HITS"),
		}, db.sysPlanCache},
		{"SYS.BUFPOOL", []catalog.Column{
			num("HITS"), num("MISSES"), num("EVICTIONS"), num("OVERFLOW"),
		}, db.sysBufPool},
		{"SYS.WAL", []catalog.Column{
			num("RECORDS"), num("BYTES"), num("SYNCS"), num("CHECKPOINTS"),
		}, db.sysWAL},
		{"SYS.METRICS", []catalog.Column{
			str("NAME"), str("KIND"), str("LABEL"), str("LABEL_VALUE"),
			{Name: "VALUE", Type: datum.TFloat, NotNull: true},
		}, db.sysMetrics},
		{"SYS.WAITS", []catalog.Column{
			{Name: "STMT", Type: datum.TString}, // NULL on DB-wide rows
			str("EVENT"), num("COUNT"), num("TOTAL_NS"), num("MAX_NS"),
		}, db.sysWaits},
		{"SYS.TRANSACTIONS", []catalog.Column{
			num("ID"), num("SNAPSHOT"), str("STATE"),
			{Name: "IMPLICIT", Type: datum.TBool, NotNull: true},
			num("AGE_NS"), num("STATEMENTS"),
		}, db.sysTransactions},
	} {
		if _, err := db.cat.CreateSystemTable(t.name, t.cols, SysStorageManager); err != nil {
			if db.openErr == nil {
				db.openErr = err
			}
			return
		}
		vm.SetSource(t.name, t.src)
	}
}

// ---------------------------------------------------------------------
// SYS table sources. Each snapshots live engine state under its own
// short-lived locks; none touches db.adminMu or the commit mutex, so
// scanning a SYS table from inside a statement (which holds the admin
// latch shared) cannot deadlock.

func (db *DB) sysStatements() ([]datum.Row, error) {
	entries := db.stmts.snapshot()
	rows := make([]datum.Row, 0, len(entries))
	for _, e := range entries {
		mean := int64(0)
		if e.calls > 0 {
			mean = e.totalNs / e.calls
		}
		rows = append(rows, datum.Row{
			datum.NewString(e.name), datum.NewString(e.kind),
			datum.NewInt(e.calls), datum.NewInt(e.errs), datum.NewInt(e.rows),
			datum.NewInt(e.totalNs), datum.NewInt(e.minNs), datum.NewInt(e.maxNs),
			datum.NewInt(mean), datum.NewInt(e.memHW), datum.NewInt(e.cacheHits),
			datum.NewInt(e.fbFolds),
		})
	}
	return rows, nil
}

func (db *DB) sysSessions() ([]datum.Row, error) {
	var rows []datum.Row
	for _, s := range db.sessions.snapshot() {
		set := s.snapshot()
		state, sqlVal := "idle", datum.Null
		if cur := s.cur.Load(); cur != nil {
			state = "active"
			sqlVal = datum.NewString(strings.TrimSpace(*cur))
		}
		rows = append(rows, datum.Row{
			datum.NewInt(s.id), datum.NewString(state), sqlVal,
			datum.NewInt(int64(set.dop)), datum.NewInt(int64(set.batchSize)),
			datum.NewBool(set.tracing), datum.NewInt(s.stmts.Load()),
		})
	}
	return rows, nil
}

// sysTransactions lists the active transactions: ID, the snapshot
// watermark each reads through, lifecycle state, whether it is an
// implicit auto-commit transaction, its age and statement count.
func (db *DB) sysTransactions() ([]datum.Row, error) {
	infos := db.mgr.Active()
	rows := make([]datum.Row, 0, len(infos))
	now := time.Now()
	for _, in := range infos {
		rows = append(rows, datum.Row{
			datum.NewInt(in.ID), datum.NewInt(in.Snapshot),
			datum.NewString(in.State.String()), datum.NewBool(in.Implicit),
			datum.NewInt(now.Sub(in.Started).Nanoseconds()), datum.NewInt(in.Stmts),
		})
	}
	return rows, nil
}

func (db *DB) sysPlanCache() ([]datum.Row, error) {
	if db.cache == nil {
		return nil, nil
	}
	entries := db.cache.entries()
	rows := make([]datum.Row, 0, len(entries))
	for _, e := range entries {
		rows = append(rows, datum.Row{
			datum.NewString(e.name), datum.NewString(e.kind),
			datum.NewInt(e.gen), datum.NewInt(e.hits),
		})
	}
	return rows, nil
}

func (db *DB) sysBufPool() ([]datum.Row, error) {
	if db.store == nil {
		return nil, nil
	}
	st := db.store.Stats()
	return []datum.Row{{
		datum.NewInt(st.PoolHits), datum.NewInt(st.PoolMisses),
		datum.NewInt(st.PoolEvictions), datum.NewInt(st.PoolOverflow),
	}}, nil
}

func (db *DB) sysWAL() ([]datum.Row, error) {
	if db.store == nil {
		return nil, nil
	}
	st := db.store.Stats()
	return []datum.Row{{
		datum.NewInt(st.WALRecords), datum.NewInt(st.WALBytes),
		datum.NewInt(st.WALSyncs), datum.NewInt(st.Checkpoints),
	}}, nil
}

func (db *DB) sysMetrics() ([]datum.Row, error) {
	samples := db.metrics.Snapshot()
	rows := make([]datum.Row, 0, len(samples))
	for _, s := range samples {
		rows = append(rows, datum.Row{
			datum.NewString(s.Name), datum.NewString(s.Kind),
			datum.NewString(s.Label), datum.NewString(s.LabelValue),
			datum.NewFloat(s.Value),
		})
	}
	return rows, nil
}

func (db *DB) sysWaits() ([]datum.Row, error) {
	var rows []datum.Row
	for _, w := range db.waitProf.Snapshot() {
		rows = append(rows, datum.Row{
			datum.Null, datum.NewString(w.Event.String()),
			datum.NewInt(w.Count), datum.NewInt(w.Nanos), datum.NewInt(w.MaxNanos),
		})
	}
	for _, e := range db.stmts.snapshot() {
		for ev := obs.WaitEvent(0); ev < obs.NumWaitEvents; ev++ {
			a := e.waits[ev]
			if a.count == 0 {
				continue
			}
			rows = append(rows, datum.Row{
				datum.NewString(e.name), datum.NewString(ev.String()),
				datum.NewInt(a.count), datum.NewInt(a.nanos), datum.NewInt(a.max),
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Span assembly

// buildSpan renders one finished statement as its exported span tree.
func (db *DB) buildSpan(o *observation, err error, elapsed time.Duration) *StatementSpan {
	root := &obs.Span{
		Name:     o.kind,
		Kind:     "statement",
		DurNanos: elapsed.Nanoseconds(),
		Waits:    obs.WaitAnnotations(o.waits.Snapshot()),
		Children: obs.PhaseSpans(o.trace),
	}
	if o.instr != nil && o.root != nil {
		if opSpan := o.instr.Spans(o.root); opSpan != nil {
			root.Children = append(root.Children, opSpan)
		}
	}
	ss := &StatementSpan{
		SQL:          strings.TrimSpace(o.query),
		Kind:         o.kind,
		PlanCacheHit: o.cacheHit,
		TotalNanos:   elapsed.Nanoseconds(),
		Root:         root,
	}
	if err != nil {
		ss.Error = err.Error()
	}
	return ss
}

// ---------------------------------------------------------------------
// Metric descriptions (# HELP lines)

// describeMetrics attaches help text to every metric the engine
// exports; the registry renders them as # HELP lines and SYS.METRICS
// consumers see them through Registry.Snapshot.
func (db *DB) describeMetrics() {
	for name, help := range map[string]string{
		MetricStatements:             "Statements executed, by statement kind.",
		MetricStatementErrors:        "Failed statements, by the phase the error escaped from.",
		MetricBudgetTrips:            "Statements aborted by an execution budget (rows, mem, time).",
		MetricRollbacks:              "Statement-atomicity undo rollbacks.",
		MetricSubqCacheHits:          "Subquery cache hits.",
		MetricSubqCacheMisses:        "Subquery cache misses.",
		MetricSlowQueries:            "Statements at or over the slow-query threshold.",
		MetricFaultsFired:            "Fault injections fired by the attached injector.",
		MetricStatementSeconds:       "Statement latency in seconds.",
		MetricBufferPoolHits:         "Buffer-pool page hits.",
		MetricBufferPoolMisses:       "Buffer-pool page misses (disk reads).",
		MetricWALBytes:               "Bytes appended to the write-ahead log.",
		MetricWALSyncs:               "WAL fsync calls.",
		MetricCheckpoints:            "Checkpoints completed.",
		MetricPlanCacheHits:          "Statements served from the plan cache.",
		MetricPlanCacheMisses:        "Cacheable statements that had to compile.",
		MetricPlanCacheEvictions:     "Plan-cache entries dropped by the LRU bound.",
		MetricPlanCacheInvalidations: "Plan-cache entries dropped because the catalog version moved.",
		MetricPlanCacheSize:          "Live plan-cache entries.",
	} {
		db.metrics.Describe(name, help)
	}
}
