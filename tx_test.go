package starburst

import (
	"context"
	"errors"
	"testing"
)

// Engine-level transaction API tests: DB.Begin / Tx.Query / Tx.Exec /
// Tx.Commit / Tx.Rollback, the SQL BEGIN / COMMIT / ROLLBACK
// statements on a Session, isolation levels, first-writer-wins
// conflicts, and the autocommit switch. The randomized concurrent
// schedules live in mvcc_test.go.

func txCount(t *testing.T, q func(string, map[string]Value) (*Result, error), query string) int64 {
	t.Helper()
	res, err := q(query, nil)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("%s: want a single scalar, got %v", query, res.Rows)
	}
	return res.Rows[0][0].Int()
}

func TestTxCommitAndRollback(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE acct (id INT NOT NULL, bal INT)`)
	mustExec(t, db, `INSERT INTO acct VALUES (1, 100)`)

	// Commit publishes atomically; the transaction sees its own writes
	// before anyone else does.
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO acct VALUES (2, 50)`, nil); err != nil {
		t.Fatal(err)
	}
	if got := txCount(t, tx.Exec, `SELECT COUNT(*) FROM acct`); got != 2 {
		t.Fatalf("tx does not see its own write: %d rows, want 2", got)
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM acct`); got != 1 {
		t.Fatalf("uncommitted write leaked: %d rows, want 1", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM acct`); got != 2 {
		t.Fatalf("after commit: %d rows, want 2", got)
	}

	// Rollback restores heap rows and discards inserts.
	tx, err = db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE acct SET bal = 0 WHERE id = 1`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`DELETE FROM acct WHERE id = 2`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO acct VALUES (3, 1)`, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT bal FROM acct WHERE id = 1`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 100 {
		t.Fatalf("rollback lost the prior image: %v", res.Rows)
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM acct`); got != 2 {
		t.Fatalf("rollback left %d rows, want 2", got)
	}

	// An ended transaction rejects everything with ErrTxDone.
	if _, err := tx.Exec(`SELECT 1 FROM acct`, nil); !errors.Is(err, ErrTxDone) {
		t.Fatalf("statement on ended tx: %v, want ErrTxDone", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Commit on ended tx: %v, want ErrTxDone", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("Rollback on ended tx: %v, want ErrTxDone", err)
	}
}

func TestTxSnapshotStableAcrossCommitsAndDDL(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE items (id INT NOT NULL, tag STRING)`)
	for i := 0; i < 4; i++ {
		mustExec(t, db, fmtInsertItem(i))
	}

	reader, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := txCount(t, reader.Exec, `SELECT COUNT(*) FROM items`); got != 4 {
		t.Fatalf("reader snapshot: %d rows, want 4", got)
	}

	// A concurrent writer commits and concurrent DDL publishes new
	// catalog generations; neither blocks, and neither disturbs the
	// reader's view.
	writer, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec(fmtInsertItem(4), nil); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE INDEX items_id ON items (id)`)
	mustExec(t, db, `ANALYZE items`)
	mustExec(t, db, `CREATE TABLE other (a INT)`)

	if got := txCount(t, reader.Exec, `SELECT COUNT(*) FROM items`); got != 4 {
		t.Fatalf("reader view moved under snapshot isolation: %d rows, want 4", got)
	}
	// The reader's pinned catalog generation predates `other`.
	if _, err := reader.Exec(`SELECT a FROM other`, nil); err == nil {
		t.Fatal("reader resolved a table created after its snapshot")
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM items`); got != 5 {
		t.Fatalf("after reader ends: %d rows, want 5", got)
	}
}

func fmtInsertItem(i int) string {
	tags := []string{"CPU", "GPU", "RAM", "SSD", "NIC", "PSU"}
	return `INSERT INTO items VALUES (` + itoa(i) + `, '` + tags[i%len(tags)] + `')`
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		n--
		b[n] = '-'
	}
	return string(b[n:])
}

func TestTxFirstWriterWins(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE counter (id INT NOT NULL, v INT)`)
	mustExec(t, db, `INSERT INTO counter VALUES (1, 0)`)

	first, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	second, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Exec(`UPDATE counter SET v = 10 WHERE id = 1`, nil); err != nil {
		t.Fatal(err)
	}
	// The second writer loses to the in-flight first writer.
	_, err = second.Exec(`UPDATE counter SET v = 20 WHERE id = 1`, nil)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("competing write: %v, want ErrWriteConflict", err)
	}
	var ce *ConflictError
	if !errors.As(err, &ce) || ce.Table != "COUNTER" {
		t.Fatalf("conflict detail: %+v (err %v)", ce, err)
	}
	// A failed statement leaves the losing transaction open; it rolls
	// back cleanly.
	if err := second.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := first.Commit(); err != nil {
		t.Fatal(err)
	}

	// A snapshot that predates a commit also loses: first-writer-wins
	// covers committed-after-snapshot versions too.
	stale, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `UPDATE counter SET v = 30 WHERE id = 1`)
	if _, err := stale.Exec(`UPDATE counter SET v = 40 WHERE id = 1`, nil); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale-snapshot write: %v, want ErrWriteConflict", err)
	}
	if err := stale.Rollback(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT v FROM counter WHERE id = 1`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 30 {
		t.Fatalf("final counter = %v, want 30", res.Rows[0][0])
	}
}

func TestTxReadCommittedRefreshesPerStatement(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE rc (a INT)`)

	tx, err := db.Begin(context.Background(), WithIsolation(LevelReadCommitted))
	if err != nil {
		t.Fatal(err)
	}
	if got := tx.Isolation(); got != LevelReadCommitted {
		t.Fatalf("isolation = %v", got)
	}
	if got := txCount(t, tx.Exec, `SELECT COUNT(*) FROM rc`); got != 0 {
		t.Fatalf("initial read: %d, want 0", got)
	}
	mustExec(t, db, `INSERT INTO rc VALUES (1)`)
	if got := txCount(t, tx.Exec, `SELECT COUNT(*) FROM rc`); got != 1 {
		t.Fatalf("read-committed statement did not refresh: %d, want 1", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	snap, err := db.Begin(context.Background(), WithIsolation(LevelSnapshot))
	if err != nil {
		t.Fatal(err)
	}
	if got := txCount(t, snap.Exec, `SELECT COUNT(*) FROM rc`); got != 1 {
		t.Fatalf("snapshot read: %d, want 1", got)
	}
	mustExec(t, db, `INSERT INTO rc VALUES (2)`)
	if got := txCount(t, snap.Exec, `SELECT COUNT(*) FROM rc`); got != 1 {
		t.Fatalf("snapshot moved: %d, want 1", got)
	}
	if err := snap.Rollback(); err != nil {
		t.Fatal(err)
	}
}

func TestTxRejectsDDLAndNestedBegin(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE d (a INT)`)
	tx, err := db.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := tx.Exec(`CREATE TABLE d2 (a INT)`, nil); err == nil {
		t.Fatal("DDL inside a transaction must be rejected (DDL auto-commits)")
	}
	if _, err := tx.Exec(`BEGIN`, nil); err == nil {
		t.Fatal("nested BEGIN must be rejected")
	}
}

func TestSessionSQLTransactionStatements(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	sess := db.NewSession()
	defer sess.Close()

	// BEGIN ... COMMIT through plain SQL.
	if _, err := sess.Exec(`BEGIN`, nil); err != nil {
		t.Fatal(err)
	}
	if sess.Tx() == nil {
		t.Fatal("BEGIN left no open transaction on the session")
	}
	if _, err := sess.Exec(`INSERT INTO t VALUES (1)`, nil); err != nil {
		t.Fatal(err)
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM t`); got != 0 {
		t.Fatalf("write visible before COMMIT: %d", got)
	}
	if _, err := sess.Exec(`COMMIT`, nil); err != nil {
		t.Fatal(err)
	}
	if sess.Tx() != nil {
		t.Fatal("COMMIT left the transaction attached")
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM t`); got != 1 {
		t.Fatalf("after COMMIT: %d rows, want 1", got)
	}

	// BEGIN ... ROLLBACK discards.
	if _, err := sess.Exec(`BEGIN`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`INSERT INTO t VALUES (2)`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`ROLLBACK`, nil); err != nil {
		t.Fatal(err)
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM t`); got != 1 {
		t.Fatalf("after ROLLBACK: %d rows, want 1", got)
	}

	// COMMIT / ROLLBACK with no transaction in progress are errors, and
	// BEGIN twice is too.
	if _, err := sess.Exec(`COMMIT`, nil); err == nil {
		t.Fatal("COMMIT outside a transaction must fail")
	}
	if _, err := sess.Exec(`ROLLBACK`, nil); err == nil {
		t.Fatal("ROLLBACK outside a transaction must fail")
	}
	if _, err := sess.Exec(`BEGIN`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`BEGIN`, nil); err == nil {
		t.Fatal("nested BEGIN must fail")
	}
	if _, err := sess.Exec(`ROLLBACK`, nil); err != nil {
		t.Fatal(err)
	}

	// BEGIN needs a session (or explicit handle) to own the transaction.
	if _, err := db.Exec(`BEGIN`, nil); err == nil {
		t.Fatal("DB.Exec(BEGIN) must fail: no session to own the transaction")
	}
}

func TestSessionAutocommitOff(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	sess := db.NewSession()
	defer sess.Close()
	sess.SetAutocommit(false)
	if sess.Autocommit() {
		t.Fatal("SetAutocommit(false) did not stick")
	}

	// The first statement opens a transaction implicitly (chained
	// mode); nothing publishes until COMMIT.
	if _, err := sess.Exec(`INSERT INTO t VALUES (1)`, nil); err != nil {
		t.Fatal(err)
	}
	if sess.Tx() == nil {
		t.Fatal("chained mode did not open a transaction")
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM t`); got != 0 {
		t.Fatalf("chained-mode write visible before COMMIT: %d", got)
	}
	if _, err := sess.Exec(`COMMIT`, nil); err != nil {
		t.Fatal(err)
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM t`); got != 1 {
		t.Fatalf("after COMMIT: %d rows, want 1", got)
	}

	// The next statement begins the next transaction; ROLLBACK discards
	// it.
	if _, err := sess.Exec(`INSERT INTO t VALUES (2)`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`ROLLBACK`, nil); err != nil {
		t.Fatal(err)
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM t`); got != 1 {
		t.Fatalf("after ROLLBACK: %d rows, want 1", got)
	}

	// Switching autocommit back on restores per-statement transactions.
	sess.SetAutocommit(true)
	if _, err := sess.Exec(`INSERT INTO t VALUES (3)`, nil); err != nil {
		t.Fatal(err)
	}
	if sess.Tx() != nil {
		t.Fatal("autocommit statement left a transaction open")
	}
	if got := txCount(t, db.Exec, `SELECT COUNT(*) FROM t`); got != 2 {
		t.Fatalf("autocommit write not published: %d rows, want 2", got)
	}
}
