package starburst

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/datum"
	"repro/internal/expr"
	"repro/internal/qgm"
	"repro/internal/rewrite"
	"repro/internal/sql"
	"repro/internal/storage"
)

// paperDB builds the quotations/inventory database of the paper's
// running example.
func paperDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE quotations (
		partno INT NOT NULL, price FLOAT, order_qty INT, suppno INT)`)
	mustExec(t, db, `CREATE TABLE inventory (
		partno INT NOT NULL, onhand_qty INT, type STRING)`)
	// Quotations: parts 1..8, various order quantities.
	for i := 1; i <= 8; i++ {
		mustExec(t, db, fmt.Sprintf(
			"INSERT INTO quotations VALUES (%d, %d.5, %d, %d)", i, i*10, i*5, i%3))
	}
	// Inventory: parts 1..5; CPU for odd parts, DISK for even; low
	// stock for parts 1..3.
	for i := 1; i <= 5; i++ {
		typ := "'CPU'"
		if i%2 == 0 {
			typ = "'DISK'"
		}
		onhand := i
		mustExec(t, db, fmt.Sprintf(
			"INSERT INTO inventory VALUES (%d, %d, %s)", i, onhand, typ))
	}
	mustExec(t, db, "ANALYZE quotations")
	mustExec(t, db, "ANALYZE inventory")
	return db
}

func mustExec(t testing.TB, db *DB, q string) *Result {
	t.Helper()
	res, err := db.Exec(q, nil)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func intsOf(t testing.TB, res *Result, col int) []int64 {
	t.Helper()
	var out []int64
	for _, r := range res.Rows {
		if r[col].IsNull() {
			out = append(out, -999)
			continue
		}
		out = append(out, r[col].Int())
	}
	return out
}

func sortedInts(xs []int64) []int64 {
	out := append([]int64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eqInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPaperQueryEndToEnd runs the section 4 query through the full
// pipeline. Expected: quotations for CPU parts in inventory whose
// on-hand quantity is below the order quantity. CPUs are parts 1,3,5;
// onhand (1,3,5) < order_qty (5,15,25) always, so parts 1,3,5 qualify.
func TestPaperQueryEndToEnd(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT partno, price, order_qty FROM quotations Q1
		WHERE Q1.partno IN
		  (SELECT partno FROM inventory Q3
		   WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')`)
	if !eqInts(sortedInts(intsOf(t, res, 0)), []int64{1, 3, 5}) {
		t.Fatalf("partnos = %v", intsOf(t, res, 0))
	}
	if len(res.Columns) != 3 || res.Columns[1] != "PRICE" {
		t.Errorf("columns = %v", res.Columns)
	}
}

// TestPaperQuerySameResultWithRewriteVariants checks the
// nonprocedurality goal: the same query gives identical results with
// rewrite on, off, and with a unique index enabling Rule 1.
func TestPaperQuerySameResultWithRewriteVariants(t *testing.T) {
	q := `SELECT partno, price, order_qty FROM quotations Q1
		WHERE Q1.partno IN
		  (SELECT partno FROM inventory Q3
		   WHERE Q3.onhand_qty < Q1.order_qty AND Q3.type = 'CPU')`
	get := func(prep func(db *DB)) []int64 {
		db := paperDB(t)
		prep(db)
		return sortedInts(intsOf(t, mustExec(t, db, q), 0))
	}
	base := get(func(db *DB) {})
	noRewrite := get(func(db *DB) { db.SkipRewrite = true })
	withIndex := get(func(db *DB) {
		mustExec(t, db, "CREATE UNIQUE INDEX inv_pk ON inventory (partno)")
	})
	if !eqInts(base, noRewrite) || !eqInts(base, withIndex) {
		t.Fatalf("results differ: base=%v noRewrite=%v withIndex=%v", base, noRewrite, withIndex)
	}
}

func TestBasicSelect(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, "SELECT partno FROM inventory WHERE type = 'CPU' ORDER BY partno")
	if !eqInts(intsOf(t, res, 0), []int64{1, 3, 5}) {
		t.Fatalf("cpus = %v", intsOf(t, res, 0))
	}
	res = mustExec(t, db, "SELECT partno + 100 AS p FROM inventory WHERE partno = 2")
	if res.Rows[0][0].Int() != 102 || res.Columns[0] != "P" {
		t.Error("expression select")
	}
	res = mustExec(t, db, "SELECT * FROM inventory WHERE onhand_qty BETWEEN 2 AND 4 ORDER BY 1")
	if !eqInts(intsOf(t, res, 0), []int64{2, 3, 4}) {
		t.Error("between")
	}
	res = mustExec(t, db, "SELECT partno FROM inventory WHERE type LIKE 'C%'")
	if len(res.Rows) != 3 {
		t.Error("like")
	}
	res = mustExec(t, db, "SELECT 1 + 2 AS three")
	if res.Rows[0][0].Int() != 3 {
		t.Error("select without FROM")
	}
}

func TestJoins(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT q.partno, i.onhand_qty
		FROM quotations q, inventory i WHERE q.partno = i.partno ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{1, 2, 3, 4, 5}) {
		t.Fatalf("join partnos = %v", intsOf(t, res, 0))
	}
	// Explicit JOIN syntax gives the same answer.
	res2 := mustExec(t, db, `SELECT q.partno, i.onhand_qty
		FROM quotations q JOIN inventory i ON q.partno = i.partno ORDER BY 1`)
	if len(res2.Rows) != len(res.Rows) {
		t.Error("explicit join differs")
	}
	// Three-way join with a cross-table predicate chain.
	res = mustExec(t, db, `SELECT a.partno FROM quotations a, inventory b, inventory c
		WHERE a.partno = b.partno AND b.partno = c.partno AND c.type = 'CPU' ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{1, 3, 5}) {
		t.Fatalf("3-way = %v", intsOf(t, res, 0))
	}
}

func TestLeftOuterJoin(t *testing.T) {
	db := paperDB(t)
	// Parts 6..8 have no inventory row: preserved with NULLs.
	res := mustExec(t, db, `SELECT q.partno, i.onhand_qty
		FROM quotations q LEFT OUTER JOIN inventory i ON q.partno = i.partno
		ORDER BY 1`)
	if len(res.Rows) != 8 {
		t.Fatalf("outer join rows = %d, want 8", len(res.Rows))
	}
	for _, r := range res.Rows {
		p := r[0].Int()
		if p > 5 && !r[1].IsNull() {
			t.Errorf("part %d should be null-extended", p)
		}
		if p <= 5 && r[1].IsNull() {
			t.Errorf("part %d should have matched", p)
		}
	}
	// WHERE on the preserved side composes with the join.
	res = mustExec(t, db, `SELECT q.partno, i.onhand_qty
		FROM quotations q LEFT OUTER JOIN inventory i ON q.partno = i.partno
		WHERE q.order_qty > 25 ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{6, 7, 8}) {
		t.Fatalf("filtered outer join = %v", intsOf(t, res, 0))
	}
	// RIGHT OUTER JOIN mirrors.
	res = mustExec(t, db, `SELECT q.partno FROM inventory i RIGHT OUTER JOIN quotations q
		ON q.partno = i.partno ORDER BY 1`)
	if len(res.Rows) != 8 {
		t.Error("right outer join")
	}
}

func TestAggregation(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT type, COUNT(*) n, SUM(onhand_qty) total, MIN(partno) lo, MAX(partno) hi
		FROM inventory GROUP BY type ORDER BY type`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	cpu := res.Rows[0] // 'CPU' < 'DISK'
	if cpu[1].Int() != 3 || cpu[2].Int() != 9 || cpu[3].Int() != 1 || cpu[4].Int() != 5 {
		t.Errorf("CPU group = %v", cpu)
	}
	// HAVING.
	res = mustExec(t, db, `SELECT type FROM inventory GROUP BY type HAVING COUNT(*) > 2`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "CPU" {
		t.Errorf("having = %v", res.Rows)
	}
	// Scalar aggregate over empty input.
	res = mustExec(t, db, "SELECT COUNT(*), SUM(partno) FROM inventory WHERE partno > 1000")
	if res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", res.Rows[0])
	}
	// AVG and arithmetic over aggregates.
	res = mustExec(t, db, "SELECT AVG(onhand_qty) * 2 FROM inventory")
	if res.Rows[0][0].Float() != 6 {
		t.Errorf("avg*2 = %v", res.Rows[0][0])
	}
	// COUNT(DISTINCT ...).
	mustExec(t, db, "INSERT INTO inventory VALUES (99, 1, 'CPU')")
	res = mustExec(t, db, "SELECT COUNT(DISTINCT type) FROM inventory")
	if res.Rows[0][0].Int() != 2 {
		t.Errorf("count distinct = %v", res.Rows[0][0])
	}
}

func TestDistinctAndSetOps(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, "SELECT DISTINCT type FROM inventory ORDER BY type")
	if len(res.Rows) != 2 {
		t.Fatalf("distinct = %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT partno FROM quotations
		UNION SELECT partno FROM inventory ORDER BY 1`)
	if len(res.Rows) != 8 {
		t.Errorf("union = %d rows", len(res.Rows))
	}
	res = mustExec(t, db, `SELECT partno FROM quotations
		UNION ALL SELECT partno FROM inventory`)
	if len(res.Rows) != 13 {
		t.Errorf("union all = %d rows", len(res.Rows))
	}
	res = mustExec(t, db, `SELECT partno FROM quotations
		INTERSECT SELECT partno FROM inventory ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{1, 2, 3, 4, 5}) {
		t.Errorf("intersect = %v", intsOf(t, res, 0))
	}
	res = mustExec(t, db, `SELECT partno FROM quotations
		EXCEPT SELECT partno FROM inventory ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{6, 7, 8}) {
		t.Errorf("except = %v", intsOf(t, res, 0))
	}
}

func TestSubqueryFlavors(t *testing.T) {
	db := paperDB(t)
	// EXISTS (correlated).
	res := mustExec(t, db, `SELECT partno FROM quotations q WHERE EXISTS
		(SELECT 1 FROM inventory i WHERE i.partno = q.partno AND i.type = 'CPU') ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{1, 3, 5}) {
		t.Fatalf("exists = %v", intsOf(t, res, 0))
	}
	// NOT EXISTS.
	res = mustExec(t, db, `SELECT partno FROM quotations q WHERE NOT EXISTS
		(SELECT 1 FROM inventory i WHERE i.partno = q.partno) ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{6, 7, 8}) {
		t.Fatalf("not exists = %v", intsOf(t, res, 0))
	}
	// NOT IN.
	res = mustExec(t, db, `SELECT partno FROM quotations
		WHERE partno NOT IN (SELECT partno FROM inventory) ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{6, 7, 8}) {
		t.Fatalf("not in = %v", intsOf(t, res, 0))
	}
	// Scalar subquery comparison.
	res = mustExec(t, db, `SELECT partno FROM inventory
		WHERE onhand_qty = (SELECT MAX(onhand_qty) FROM inventory)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 5 {
		t.Fatalf("scalar = %v", res.Rows)
	}
	// op ALL.
	res = mustExec(t, db, `SELECT partno FROM quotations
		WHERE order_qty > ALL (SELECT onhand_qty FROM inventory) ORDER BY 1`)
	// onhand max = 5; order_qty = 5*partno > 5 ⇒ partno >= 2.
	if !eqInts(intsOf(t, res, 0), []int64{2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("all = %v", intsOf(t, res, 0))
	}
	// op ANY.
	res = mustExec(t, db, `SELECT partno FROM inventory
		WHERE partno = ANY (SELECT suppno FROM quotations) ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{1, 2}) {
		t.Fatalf("any = %v", intsOf(t, res, 0))
	}
	// Scalar subquery in the select list.
	res = mustExec(t, db, `SELECT partno, (SELECT MAX(onhand_qty) FROM inventory) m
		FROM quotations WHERE partno = 1`)
	if res.Rows[0][1].Int() != 5 {
		t.Fatalf("select-list scalar = %v", res.Rows[0])
	}
}

// TestNotInWithNulls checks Kleene semantics: x NOT IN (set containing
// NULL) is never TRUE.
func TestNotInWithNulls(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b VALUES (1), (NULL)")
	res := mustExec(t, db, "SELECT x FROM a WHERE x NOT IN (SELECT y FROM b)")
	if len(res.Rows) != 0 {
		t.Fatalf("NOT IN with NULL must be empty, got %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT x FROM a WHERE x IN (SELECT y FROM b)")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("IN with NULL = %v", res.Rows)
	}
}

// TestORSubquery is the paper's section-7 query: an OR of a simple
// predicate and a scalar-subquery predicate, executed via the OR
// operator machinery (deferred subplans).
func TestORSubquery(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE T1 (A1 INT, A2 INT)")
	mustExec(t, db, "CREATE TABLE T2 (B1 INT, B2 INT)")
	mustExec(t, db, "INSERT INTO T1 VALUES (5, 0), (6, 42), (7, 7)")
	mustExec(t, db, "INSERT INTO T2 VALUES (16, 42)")
	res := mustExec(t, db, `SELECT * FROM T1 WHERE T1.A1 = 5 OR T1.A2 =
		(SELECT B2 FROM T2 WHERE T2.B1 = 16) ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{5, 6}) {
		t.Fatalf("or-subquery = %v", intsOf(t, res, 0))
	}
	// Empty subquery: only the first disjunct can qualify.
	mustExec(t, db, "DELETE FROM T2")
	res = mustExec(t, db, `SELECT * FROM T1 WHERE T1.A1 = 5 OR T1.A2 =
		(SELECT B2 FROM T2 WHERE T2.B1 = 16)`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 5 {
		t.Fatalf("or with empty subquery = %v", res.Rows)
	}
	// EXISTS under OR.
	mustExec(t, db, "INSERT INTO T2 VALUES (1, 1)")
	res = mustExec(t, db, `SELECT A1 FROM T1 WHERE A1 = 7 OR EXISTS
		(SELECT 1 FROM T2 WHERE T2.B1 = T1.A2) ORDER BY 1`)
	// A2 values: 0,42,7 → only A2=... B1=1 exists: no (B1 is 1; A2=0,42,7: none equal 1)
	if !eqInts(intsOf(t, res, 0), []int64{7}) {
		t.Fatalf("exists under or = %v", intsOf(t, res, 0))
	}
}

func TestViews(t *testing.T) {
	db := paperDB(t)
	mustExec(t, db, `CREATE VIEW cpus AS SELECT partno, onhand_qty FROM inventory WHERE type = 'CPU'`)
	// Views usable like tables, including joined with aggregation — the
	// SQL restriction Hydrogen lifts.
	res := mustExec(t, db, `SELECT COUNT(*) FROM cpus`)
	if res.Rows[0][0].Int() != 3 {
		t.Fatal("view count")
	}
	mustExec(t, db, `CREATE VIEW cpu_total (s) AS SELECT SUM(onhand_qty) FROM cpus`)
	res = mustExec(t, db, `SELECT q.partno FROM quotations q, cpu_total v WHERE q.order_qty > v.s ORDER BY 1`)
	// cpu total = 9; order_qty = 5p > 9 ⇒ p >= 2.
	if !eqInts(intsOf(t, res, 0), []int64{2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("aggregated view join = %v", intsOf(t, res, 0))
	}
	// Update through a view (unambiguous).
	mustExec(t, db, "UPDATE cpus SET onhand_qty = 100 WHERE partno = 1")
	res = mustExec(t, db, "SELECT onhand_qty FROM inventory WHERE partno = 1")
	if res.Rows[0][0].Int() != 100 {
		t.Fatal("update through view")
	}
	// Ambiguous view update errors.
	if _, err := db.Exec("UPDATE cpu_total SET s = 0", nil); err == nil {
		t.Fatal("ambiguous view update must fail")
	}
	// Delete through a view respects the view predicate.
	mustExec(t, db, "DELETE FROM cpus WHERE partno = 3")
	res = mustExec(t, db, "SELECT COUNT(*) FROM inventory")
	if res.Rows[0][0].Int() != 4 {
		t.Fatalf("delete through view: %v", res.Rows[0][0])
	}
}

func TestTableExpressions(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `WITH low (pno) AS
		(SELECT partno FROM inventory WHERE onhand_qty < 3)
		SELECT q.partno FROM quotations q, low WHERE q.partno = low.pno ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{1, 2}) {
		t.Fatalf("cte = %v", intsOf(t, res, 0))
	}
	// Shared table expression referenced twice.
	res = mustExec(t, db, `WITH c AS (SELECT partno FROM inventory WHERE type = 'CPU')
		SELECT a.partno FROM c a, c b WHERE a.partno = b.partno ORDER BY 1`)
	if !eqInts(intsOf(t, res, 0), []int64{1, 3, 5}) {
		t.Fatalf("shared cte = %v", intsOf(t, res, 0))
	}
	// Host-language variable inside a table expression.
	res2, err := db.Exec(`WITH big AS (SELECT partno FROM quotations WHERE order_qty > :minq)
		SELECT COUNT(*) FROM big`, map[string]Value{"minq": NewInt(20)})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].Int() != 4 { // order_qty 25,30,35,40
		t.Fatalf("param cte = %v", res2.Rows[0][0])
	}
}

func TestRecursion(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE edges (src INT, dst INT)")
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {5, 6}} {
		mustExec(t, db, fmt.Sprintf("INSERT INTO edges VALUES (%d, %d)", e[0], e[1]))
	}
	res := mustExec(t, db, `WITH RECURSIVE reach (src, dst) AS (
		SELECT src, dst FROM edges
		UNION SELECT r.src, e.dst FROM reach r, edges e WHERE r.dst = e.src)
		SELECT src, dst FROM reach WHERE src = 1 ORDER BY dst`)
	if !eqInts(intsOf(t, res, 1), []int64{2, 3, 4}) {
		t.Fatalf("transitive closure from 1 = %v", intsOf(t, res, 1))
	}
	// Cycles terminate thanks to duplicate elimination.
	mustExec(t, db, "INSERT INTO edges VALUES (4, 1)")
	res = mustExec(t, db, `WITH RECURSIVE reach (src, dst) AS (
		SELECT src, dst FROM edges
		UNION SELECT r.src, e.dst FROM reach r, edges e WHERE r.dst = e.src)
		SELECT COUNT(*) FROM reach WHERE src = 1`)
	if res.Rows[0][0].Int() != 4 { // 1→{1,2,3,4}
		t.Fatalf("cyclic closure = %v", res.Rows[0][0])
	}
	// Recursion with aggregation on top (logic programming + relational
	// ops, section 2).
	res = mustExec(t, db, `WITH RECURSIVE reach (src, dst) AS (
		SELECT src, dst FROM edges
		UNION SELECT r.src, e.dst FROM reach r, edges e WHERE r.dst = e.src)
		SELECT src, COUNT(*) n FROM reach GROUP BY src ORDER BY src LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatal("recursive aggregate")
	}
}

func TestDML(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (a INT NOT NULL, b STRING)")
	res := mustExec(t, db, "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
	if res.Affected != 3 {
		t.Fatalf("insert affected = %d", res.Affected)
	}
	// INSERT ... SELECT.
	res = mustExec(t, db, "INSERT INTO t SELECT a + 10, b FROM t WHERE a < 3")
	if res.Affected != 2 {
		t.Fatalf("insert-select affected = %d", res.Affected)
	}
	// Column subset with NULL default.
	mustExec(t, db, "INSERT INTO t (a) VALUES (99)")
	r := mustExec(t, db, "SELECT b FROM t WHERE a = 99")
	if !r.Rows[0][0].IsNull() {
		t.Error("default NULL")
	}
	// UPDATE with expression over old values (Halloween-safe).
	res = mustExec(t, db, "UPDATE t SET a = a + 100 WHERE a <= 3")
	if res.Affected != 3 {
		t.Fatalf("update affected = %d", res.Affected)
	}
	r = mustExec(t, db, "SELECT COUNT(*) FROM t WHERE a > 100 AND a < 200")
	if r.Rows[0][0].Int() != 3 {
		t.Error("update result")
	}
	// DELETE.
	res = mustExec(t, db, "DELETE FROM t WHERE a > 100")
	if res.Affected != 3 {
		t.Fatalf("delete affected = %d", res.Affected)
	}
	// NOT NULL enforcement through INSERT.
	if _, err := db.Exec("INSERT INTO t VALUES (NULL, 'x')", nil); err == nil {
		t.Error("NOT NULL must be enforced")
	}
}

func TestIndexUseAndCorrectness(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE big (k INT, v INT)")
	for i := 0; i < 500; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO big VALUES (%d, %d)", i, i%7))
	}
	mustExec(t, db, "ANALYZE big")
	noIdx := mustExec(t, db, "SELECT v FROM big WHERE k = 123")
	mustExec(t, db, "CREATE UNIQUE INDEX big_k ON big (k)")
	mustExec(t, db, "ANALYZE big")
	// Plan uses the index.
	ex := mustExec(t, db, "EXPLAIN SELECT v FROM big WHERE k = 123")
	planText := resultText(ex)
	if !strings.Contains(planText, "ISCAN") {
		t.Fatalf("expected ISCAN in plan:\n%s", planText)
	}
	withIdx := mustExec(t, db, "SELECT v FROM big WHERE k = 123")
	if len(withIdx.Rows) != 1 || withIdx.Rows[0][0].Int() != noIdx.Rows[0][0].Int() {
		t.Fatal("index scan result differs")
	}
	// Range scan through the index.
	res := mustExec(t, db, "SELECT k FROM big WHERE k >= 10 AND k < 13 ORDER BY k")
	if !eqInts(intsOf(t, res, 0), []int64{10, 11, 12}) {
		t.Fatalf("range = %v", intsOf(t, res, 0))
	}
	// Index respected after updates.
	mustExec(t, db, "UPDATE big SET k = 9999 WHERE k = 123")
	res = mustExec(t, db, "SELECT k FROM big WHERE k = 9999")
	if len(res.Rows) != 1 {
		t.Fatal("index after update")
	}
}

func TestExplainShowsPhases(t *testing.T) {
	db := paperDB(t)
	ex := mustExec(t, db, `EXPLAIN SELECT partno FROM quotations Q1
		WHERE Q1.partno IN (SELECT partno FROM inventory)`)
	text := resultText(ex)
	for _, want := range []string{
		"=== QGM (after parsing & semantic analysis) ===",
		"=== Query rewrite ===",
		"=== QGM (after rewrite) ===",
		"=== Query evaluation plan ===",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain missing %q", want)
		}
	}
}

func resultText(res *Result) string {
	var b strings.Builder
	for _, r := range res.Rows {
		b.WriteString(r[0].Str())
		b.WriteString("\n")
	}
	return b.String()
}

func TestPreparedStatements(t *testing.T) {
	db := paperDB(t)
	stmt, err := db.Prepare("SELECT partno FROM quotations WHERE order_qty > :q ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Run(map[string]Value{"q": NewInt(30)})
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(intsOf(t, res, 0), []int64{7, 8}) {
		t.Fatalf("prepared run 1 = %v", intsOf(t, res, 0))
	}
	res, err = stmt.Run(map[string]Value{"q": NewInt(35)})
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(intsOf(t, res, 0), []int64{8}) {
		t.Fatalf("prepared run 2 = %v", intsOf(t, res, 0))
	}
	if stmt.Plan() == "" {
		t.Error("plan text")
	}
}

func TestKim82Equivalence(t *testing.T) {
	// E23: both phrasings of "employees who make more than their
	// manager" return identical results.
	db := Open()
	mustExec(t, db, "CREATE TABLE emp (id INT, name STRING, sal INT, mgr INT)")
	rows := []string{
		"(1, 'alice', 100, 0)", "(2, 'bob', 120, 1)", "(3, 'carol', 90, 1)",
		"(4, 'dave', 95, 2)", "(5, 'eve', 130, 2)",
	}
	for _, r := range rows {
		mustExec(t, db, "INSERT INTO emp VALUES "+r)
	}
	sub := mustExec(t, db, `SELECT e.name FROM emp e WHERE e.sal >
		(SELECT m.sal FROM emp m WHERE m.id = e.mgr) ORDER BY 1`)
	join := mustExec(t, db, `SELECT e.name FROM emp e, emp m
		WHERE m.id = e.mgr AND e.sal > m.sal ORDER BY 1`)
	if len(sub.Rows) != len(join.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(sub.Rows), len(join.Rows))
	}
	for i := range sub.Rows {
		if sub.Rows[i][0].Str() != join.Rows[i][0].Str() {
			t.Fatalf("row %d differs: %v vs %v", i, sub.Rows[i], join.Rows[i])
		}
	}
	if len(sub.Rows) != 2 { // bob (120>100), eve (130>120)
		t.Fatalf("expected 2 rows, got %v", sub.Rows)
	}
}

func TestMajorityExtensionEndToEnd(t *testing.T) {
	// E18: register the paper's MAJORITY set predicate and use it in a
	// query.
	db := paperDB(t)
	if err := db.RegisterSetPredicate(&SetPredicateFunc{
		Name: "MAJORITY",
		NewState: func() SetPredState {
			return &majorityState{}
		},
	}); err != nil {
		t.Fatal(err)
	}
	// order_qty > MAJORITY of onhand quantities (1..5): strictly more
	// than half of {1,2,3,4,5} must be below order_qty.
	res := mustExec(t, db, `SELECT partno FROM quotations
		WHERE order_qty > MAJORITY (SELECT onhand_qty FROM inventory) ORDER BY 1`)
	// order_qty = 5p; need > 3 of {1..5} below: for p=1 (5): 4 of 5 → yes.
	if len(res.Rows) == 0 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("majority = %v", res.Rows)
	}
}

type majorityState struct{ yes, total int }

func (m *majorityState) Add(t datum.Tristate) {
	m.total++
	if t == datum.True {
		m.yes++
	}
}
func (m *majorityState) Result() datum.Tristate {
	if m.yes*2 > m.total {
		return datum.True
	}
	return datum.False
}
func (m *majorityState) Decided() bool { return false }

func TestSampleTableFunctionEndToEnd(t *testing.T) {
	// E19: SAMPLE(table, n) as a table function.
	db := paperDB(t)
	if err := db.RegisterTableFunc(&TableFunc{
		Name: "SAMPLE", NumTables: 1, NumScalars: 1,
		OutputCols: func(in [][]ColumnDef, _ []Value) ([]ColumnDef, error) {
			return in[0], nil
		},
		Eval: func(in []*Relation, scalars []Value) (*Relation, error) {
			n := int(scalars[0].Int())
			if n > len(in[0].Rows) {
				n = len(in[0].Rows)
			}
			return &Relation{Cols: in[0].Cols, Rows: in[0].Rows[:n]}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, "SELECT COUNT(*) FROM SAMPLE(quotations, 3) s")
	if res.Rows[0][0].Int() != 3 {
		t.Fatalf("sample count = %v", res.Rows[0][0])
	}
	// Table function over a derived table, with a WHERE above.
	res = mustExec(t, db, `SELECT COUNT(*) FROM SAMPLE((SELECT * FROM quotations WHERE partno > 2), 100) s`)
	if res.Rows[0][0].Int() != 6 {
		t.Fatalf("sample of subquery = %v", res.Rows[0][0])
	}
}

func TestScalarFuncAndTypeExtension(t *testing.T) {
	db := paperDB(t)
	// The paper's Area(Width, Length) example.
	if err := db.RegisterScalarFunc(&ScalarFunc{
		Name: "AREA", MinArgs: 2, MaxArgs: 2,
		ReturnType: func(args []TypeID) (TypeID, error) { return args[0], nil },
		Eval: func(args []Value) (Value, error) {
			if args[0].IsNull() || args[1].IsNull() {
				return Null, nil
			}
			return datum.Mul(args[0], args[1])
		},
	}); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, "SELECT AREA(partno, onhand_qty) FROM inventory WHERE partno = 3")
	if res.Rows[0][0].Int() != 9 {
		t.Fatalf("area = %v", res.Rows[0][0])
	}
	// DBC aggregate: StandardDeviation (paper example).
	if err := db.RegisterAggregate(&AggregateFunc{
		Name: "VARIANCE", EmptyIsNull: true,
		ReturnType: func(TypeID) (TypeID, error) { return datum.TFloat, nil },
		NewState:   func() AggState { return &varState{} },
	}); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, db, "SELECT VARIANCE(onhand_qty) FROM inventory")
	if res.Rows[0][0].Float() != 2 { // population variance of 1..5
		t.Fatalf("variance = %v", res.Rows[0][0])
	}
}

type varState struct {
	n          int64
	sum, sumSq float64
}

func (s *varState) Add(v Value) error {
	if v.IsNull() {
		return nil
	}
	s.n++
	s.sum += v.Float()
	s.sumSq += v.Float() * v.Float()
	return nil
}
func (s *varState) Result() Value {
	if s.n == 0 {
		return Null
	}
	mean := s.sum / float64(s.n)
	return NewFloat(s.sumSq/float64(s.n) - mean*mean)
}

func TestStorageManagerSelection(t *testing.T) {
	// Corona invokes the correct storage manager per table.
	db := Open()
	db.RegisterStorageManager(storage.NewFixedManager())
	mustExec(t, db, "CREATE TABLE f (a INT, b INT) USING fixed")
	mustExec(t, db, "INSERT INTO f VALUES (1, 2)")
	res := mustExec(t, db, "SELECT a + b FROM f")
	if res.Rows[0][0].Int() != 3 {
		t.Fatal("fixed table query")
	}
	// FIXED rejects strings.
	mustExec(t, db, "CREATE TABLE g (s STRING) USING fixed")
	if _, err := db.Exec("INSERT INTO g VALUES ('no')", nil); err == nil {
		t.Fatal("fixed manager must reject variable-length data")
	}
	if _, err := db.Exec("CREATE TABLE h (a INT) USING nosuch", nil); err == nil {
		t.Fatal("unknown storage manager must fail")
	}
}

func TestErrorPaths(t *testing.T) {
	db := paperDB(t)
	bad := []string{
		"SELECT nope FROM inventory",
		"SELECT * FROM nope",
		"SELECT partno FROM inventory WHERE price = (SELECT partno, onhand_qty FROM inventory)",
		"CREATE TABLE inventory (x INT)",
		"DROP TABLE nope",
		"CREATE INDEX i1 ON nope (x)",
		"INSERT INTO inventory VALUES (1)",
	}
	for _, q := range bad {
		if _, err := db.Exec(q, nil); err == nil {
			t.Errorf("%q should fail", q)
		}
	}
	// Scalar subquery with two rows errors at runtime.
	if _, err := db.Exec(
		"SELECT partno FROM quotations WHERE price = (SELECT price FROM quotations WHERE partno < 3)", nil); err == nil {
		t.Error("multi-row scalar subquery must fail")
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, "SELECT partno FROM quotations ORDER BY partno DESC LIMIT 3")
	if !eqInts(intsOf(t, res, 0), []int64{8, 7, 6}) {
		t.Fatalf("desc limit = %v", intsOf(t, res, 0))
	}
}

func TestCaseEndToEnd(t *testing.T) {
	db := paperDB(t)
	res := mustExec(t, db, `SELECT partno,
		CASE WHEN onhand_qty < 2 THEN 'low' WHEN onhand_qty < 4 THEN 'mid' ELSE 'high' END
		FROM inventory ORDER BY partno`)
	want := []string{"low", "mid", "mid", "high", "high"}
	for i, w := range want {
		if res.Rows[i][1].Str() != w {
			t.Errorf("case row %d = %v, want %s", i, res.Rows[i][1], w)
		}
	}
}

func TestIOStatsSurface(t *testing.T) {
	db := paperDB(t)
	db.ResetIOStats()
	mustExec(t, db, "SELECT COUNT(*) FROM quotations")
	r, _, _ := db.IOStats()
	if r == 0 {
		t.Error("page reads must be counted")
	}
}

// TestRuntimeChoose: a CHOOSE with parameter guards survives into the
// plan and picks its alternative at runtime from host variables —
// section 5's "kept in the plan until runtime to allow a decision based
// on runtime parameters".
func TestRuntimeChoose(t *testing.T) {
	db := paperDB(t)
	stmt, err := sql.Parse("SELECT partno FROM inventory WHERE type = 'CPU'")
	if err != nil {
		t.Fatal(err)
	}
	g, err := qgm.TranslateStatement(db.cat, stmt)
	if err != nil {
		t.Fatal(err)
	}
	// Alternative: the DISK variant of the query.
	alt := rewrite.CloneSubgraph(g, g.Top)
	for _, p := range alt.Preds {
		p.Expr = expr.Transform(p.Expr, func(x expr.Expr) expr.Expr {
			if c, ok := x.(*expr.Const); ok && c.Val.Type() == datum.TString {
				return expr.NewConst(datum.NewString("DISK"))
			}
			return x
		})
	}
	ch := rewrite.WrapChoose(g, g.Top, alt)
	// Guard: run the CPU variant when :want = 'cpu'.
	ch.ChooseConds = []expr.Expr{
		&expr.Cmp{Op: expr.OpEq,
			L: &expr.Param{Name: "want", Typ: datum.TString},
			R: expr.NewConst(datum.NewString("cpu"))},
		nil, // default
	}
	g.Top = ch
	g.GC()
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	compiled, err := db.opt.Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(compiled.Root.String(), "CHOOSE") {
		t.Fatalf("runtime CHOOSE must survive optimization:\n%s", compiled.Root)
	}
	run := func(want string) int {
		res, err := db.run(context.Background(), compiled, map[string]Value{"want": NewString(want)})
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Rows)
	}
	if n := run("cpu"); n != 3 {
		t.Fatalf("cpu alternative rows = %d, want 3", n)
	}
	if n := run("anything-else"); n != 2 { // DISK parts 2, 4
		t.Fatalf("default alternative rows = %d, want 2", n)
	}
}

// TestConcurrentQueries: read-only statements on one DB may run in
// parallel (the Ctx-threading design removes shared mutable execution
// state); run with -race to verify.
func TestConcurrentQueries(t *testing.T) {
	db := paperDB(t)
	queries := []string{
		"SELECT partno FROM inventory WHERE type = 'CPU'",
		`SELECT partno FROM quotations Q1 WHERE Q1.partno IN
			(SELECT partno FROM inventory Q3 WHERE Q3.onhand_qty < Q1.order_qty)`,
		"SELECT A1 FROM t1c WHERE A1 = 5 OR A2 = (SELECT B2 FROM t2c WHERE B1 = 16)",
		"SELECT type, COUNT(*) FROM inventory GROUP BY type",
	}
	mustExec(t, db, "CREATE TABLE t1c (A1 INT, A2 INT)")
	mustExec(t, db, "CREATE TABLE t2c (B1 INT, B2 INT)")
	mustExec(t, db, "INSERT INTO t1c VALUES (5, 42), (6, 42)")
	mustExec(t, db, "INSERT INTO t2c VALUES (16, 42)")
	done := make(chan error, 32)
	for w := 0; w < 8; w++ {
		go func(seed int) {
			for i := 0; i < 20; i++ {
				q := queries[(seed+i)%len(queries)]
				if _, err := db.Exec(q, nil); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
