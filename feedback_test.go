package starburst

import (
	"fmt"
	"strings"
	"testing"
)

// feedbackDB builds the divergence scenario: small_t is analyzed at 3
// rows, then grows to 1003 without re-analyzing, so the optimizer's
// estimate is ~335x off while big_t's (100 rows, analyzed) is exact.
func feedbackDB(t testing.TB) *DB {
	t.Helper()
	db := Open(WithPlanCache(8))
	db.MustExec(`CREATE TABLE small_t (v INT)`, nil)
	db.MustExec(`CREATE TABLE big_t (v INT)`, nil)
	for i := 0; i < 3; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO small_t VALUES (%d)`, i), nil)
	}
	for i := 0; i < 100; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO big_t VALUES (%d)`, i), nil)
	}
	db.MustExec(`ANALYZE small_t`, nil)
	db.MustExec(`ANALYZE big_t`, nil)
	for i := 3; i < 1003; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO small_t VALUES (%d)`, i), nil)
	}
	return db
}

// nlInner reports which table the plan's nested-loop join materializes
// as its inner (the second child, rendered after the outer).
func nlInner(t testing.TB, text string) string {
	t.Helper()
	si := strings.Index(text, "SCAN SMALL_T")
	bi := strings.Index(text, "SCAN BIG_T")
	if si < 0 || bi < 0 || !strings.Contains(text, "NLJN") {
		t.Fatalf("plan missing NLJN over both scans:\n%s", text)
	}
	if si < bi {
		return "big_t"
	}
	return "small_t"
}

// TestCardinalityFeedbackReplansJoinOrder is the feedback loop end to
// end: stale statistics put the (actually large) table on the inner
// side of a nested-loop join; one executed statement folds the observed
// cardinality into the catalog; the replanned join flips its inner, and
// the plan cache's generational invalidation replaces the stale entry.
func TestCardinalityFeedbackReplansJoinOrder(t *testing.T) {
	db := feedbackDB(t)
	db.SetCardinalityFeedback(true)
	if !db.CardinalityFeedback() {
		t.Fatal("feedback did not arm")
	}

	// The non-equi predicate keeps hash and merge joins ineligible, so
	// the join order is exactly the nested-loop inner choice.
	const q = `SELECT COUNT(*) FROM small_t s, big_t b WHERE s.v < b.v`

	// Stale statistics (small_t "has" 3 rows): small_t is the inner.
	if inner := nlInner(t, explainText(t, db, q)); inner != "small_t" {
		t.Fatalf("pre-feedback inner = %s, want small_t", inner)
	}

	genBefore := db.cat.Version()
	res := db.MustExec(q, nil)
	if got := res.Rows[0][0].Int(); got == 0 {
		t.Fatalf("join returned %d", got)
	}
	if db.cat.Version() <= genBefore {
		t.Fatal("feedback fold did not bump the catalog version")
	}

	// The fold recorded ~1003 observed rows for small_t's full scan.
	st, _ := db.cat.Table("small_t")
	ovs := st.CardOverlays()
	if len(ovs) != 1 || ovs[0].Key != "" || ovs[0].Rows < 500 {
		t.Fatalf("small_t overlays = %+v", ovs)
	}
	bt, _ := db.cat.Table("big_t")
	if got := bt.CardOverlays(); len(got) != 0 {
		t.Fatalf("big_t (accurate stats) grew overlays: %+v", got)
	}

	// Replanned with the learned cardinality: big_t becomes the inner.
	if inner := nlInner(t, explainText(t, db, q)); inner != "big_t" {
		t.Fatalf("post-feedback inner = %s, want big_t", inner)
	}

	// The first execution cached its plan against the old generation;
	// the version bump must invalidate it, and the re-execution must
	// recompile (an invalidation, not a hit) and settle: estimates now
	// track actuals, so no further folds or bumps.
	inv := db.PlanCacheStats().Invalidations
	gen := db.cat.Version()
	db.MustExec(q, nil)
	if got := db.PlanCacheStats().Invalidations; got != inv+1 {
		t.Fatalf("invalidations = %d, want %d", got, inv+1)
	}
	if db.cat.Version() != gen {
		t.Fatal("feedback kept folding after estimates converged")
	}
	hits := db.PlanCacheStats().Hits
	db.MustExec(q, nil)
	if got := db.PlanCacheStats().Hits; got != hits+1 {
		t.Fatalf("hits = %d, want %d (settled plan should cache-hit)", got, hits+1)
	}

	// The loop's activity is visible in SYS.STATEMENTS.
	res = db.MustExec(`SELECT feedback_folds FROM SYS.STATEMENTS
		WHERE name = 'SELECT COUNT(*) FROM SMALL_T S, BIG_T B WHERE S.V < B.V'`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("SYS.STATEMENTS feedback_folds = %v", res.Rows)
	}
}

// TestCardinalityFeedbackRespectsLimits: plans that can stop early and
// statements that error must not pollute the overlays, and ANALYZE
// clears what was learned.
func TestCardinalityFeedbackGuards(t *testing.T) {
	db := feedbackDB(t)
	db.SetCardinalityFeedback(true)

	// LIMIT truncates the scan; its actual says nothing about the table.
	db.MustExec(`SELECT v FROM small_t LIMIT 5`, nil)
	st, _ := db.cat.Table("small_t")
	if ovs := st.CardOverlays(); len(ovs) != 0 {
		t.Fatalf("LIMIT plan folded overlays: %+v", ovs)
	}

	// A filtered scan learns under its predicate fingerprint, separate
	// from the full-scan overlay.
	db.MustExec(`SELECT v FROM small_t WHERE v >= 0`, nil)
	ovs := st.CardOverlays()
	if len(ovs) != 1 || !strings.Contains(ovs[0].Key, ">=") {
		t.Fatalf("predicate overlay = %+v", ovs)
	}

	// ANALYZE supersedes: fresh statistics clear learned corrections.
	db.MustExec(`ANALYZE small_t`, nil)
	if ovs := st.CardOverlays(); len(ovs) != 0 {
		t.Fatalf("ANALYZE left overlays: %+v", ovs)
	}

	// With fresh stats the same scan no longer diverges — no refold.
	gen := db.cat.Version()
	db.MustExec(`SELECT v FROM small_t WHERE v >= 0`, nil)
	if db.cat.Version() != gen {
		t.Fatal("accurate estimate still folded feedback")
	}
}
