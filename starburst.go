// Package starburst is a from-scratch reproduction of the extensible
// query processor described in "Extensible Query Processing in
// Starburst" (Haas, Freytag, Lohman, Pirahesh; SIGMOD 1989).
//
// It implements Corona — the Starburst language processor — end to end:
// the Hydrogen query language (an orthogonal, extensible SQL dialect),
// the Query Graph Model internal representation, rule-based query
// rewrite, a STAR-driven cost-based plan optimizer with a join
// enumerator, and a stream-based Query Evaluation System; plus the
// parts of Core (the data manager) that Corona drives: record
// management, an extensible storage-manager architecture, and
// attachment (access method) types including B-trees.
//
// Every extension axis from the paper is available to database
// customizers (DBCs) through the DB methods: new types, scalar /
// aggregate / set-predicate / table functions, query rewrite rules,
// optimizer STARs, QES operators, join kinds, storage managers and
// access methods.
//
// Quickstart:
//
//	db := starburst.Open()
//	db.Exec(`CREATE TABLE inventory (partno INT, onhand_qty INT, type STRING)`, nil)
//	db.Exec(`INSERT INTO inventory VALUES (1, 10, 'CPU')`, nil)
//	res, err := db.Exec(`SELECT partno FROM inventory WHERE type = 'CPU'`, nil)
package starburst

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/qgm"
	"repro/internal/rewrite"
	"repro/internal/sql"
	"repro/internal/storage"
)

// Re-exported core types, so DBC extensions are written against the
// public package alone.
type (
	// Value is a typed datum.
	Value = datum.Value
	// Row is a tuple of datums.
	Row = datum.Row
	// TypeID identifies a built-in or externally defined type.
	TypeID = datum.TypeID
	// TypeDef describes an externally defined column type.
	TypeDef = datum.TypeDef
	// ScalarFunc is an externally defined scalar function.
	ScalarFunc = expr.ScalarFunc
	// AggregateFunc is an externally defined aggregate function.
	AggregateFunc = expr.AggregateFunc
	// AggState accumulates one group for an aggregate function.
	AggState = expr.AggState
	// SetPredicateFunc is an externally defined set predicate (the
	// paper's MAJORITY example).
	SetPredicateFunc = expr.SetPredicateFunc
	// SetPredState folds per-element predicate truth values.
	SetPredState = expr.SetPredState
	// TableFunc is an externally defined table function (SAMPLE).
	TableFunc = expr.TableFunc
	// Relation is a materialized table exchanged with table functions.
	Relation = expr.Relation
	// ColumnDef names a relation column.
	ColumnDef = expr.ColumnDef
	// RewriteRule is a QGM rewrite rule (condition/action).
	RewriteRule = rewrite.Rule
	// RewriteContext is passed to rewrite rule conditions and actions.
	RewriteContext = rewrite.Context
	// RewriteOptions tunes the rewrite engine (strategy, budget, ...).
	RewriteOptions = rewrite.Options
	// AuditError is returned from compilation in audit mode when a rule
	// firing leaves the QGM invalid; it names the rule, the firing
	// index, and carries the verifier report and firing trace.
	AuditError = rewrite.AuditError
	// STARAlternative is one alternative definition of an optimizer
	// STAR.
	STARAlternative = optimizer.Alternative
	// OptArgs parameterizes a STAR invocation.
	OptArgs = optimizer.Args
	// OptCtx is the STAR evaluation context.
	OptCtx = optimizer.Ctx
	// PlanNode is a LOLEPOP invocation in a query evaluation plan.
	PlanNode = plan.Node
	// StorageManager stores table data (extension architecture).
	StorageManager = storage.StorageManager
	// AccessMethod is an attachment type (B-tree, R-tree, ...).
	AccessMethod = storage.AccessMethod
	// Stream is the QES tuple iterator interface.
	Stream = exec.Stream
	// ExecCtx is the QES execution context.
	ExecCtx = exec.Ctx
	// BuildFunc builds the executor for a DBC-registered plan operator.
	BuildFunc = exec.BuildFunc
)

// Datum constructors, re-exported.
var (
	// Null is the SQL NULL value.
	Null = datum.Null
	// NewInt makes an INT datum.
	NewInt = datum.NewInt
	// NewFloat makes a FLOAT datum.
	NewFloat = datum.NewFloat
	// NewString makes a STRING datum.
	NewString = datum.NewString
	// NewBool makes a BOOL datum.
	NewBool = datum.NewBool
	// NewUser makes a datum of an externally defined type.
	NewUser = datum.NewUser
	// TypeByName resolves an externally defined type name.
	TypeByName = datum.TypeByName
)

// Result is the outcome of executing a statement.
type Result struct {
	// Columns names the result columns (empty for DDL/DML).
	Columns []string
	// Rows holds the result tuples.
	Rows []Row
	// Affected counts rows touched by INSERT/UPDATE/DELETE.
	Affected int64
	// Trace is the phase trace, present when tracing is armed (see
	// DB.SetTracing) or the statement was EXPLAIN ANALYZE.
	Trace *Trace
}

// DB is one Starburst database instance: catalog plus the four
// compilation/execution components of Figure 1, each independently
// extensible.
type DB struct {
	cat      *catalog.Catalog
	rewriter *rewrite.Engine
	opt      *optimizer.Optimizer
	builder  *exec.Builder

	// limits are the per-statement execution budgets (see SetLimits).
	limits exec.Limits
	// faults is the attached fault injector, nil until InjectFaults.
	faults *storage.FaultInjector
	// dop and batchSize configure parallel/batched execution (see
	// SetParallelism and SetBatchSize in parallel.go).
	dop       atomic.Int32
	batchSize atomic.Int32

	// obsState holds the observability knobs: metrics registry, phase
	// tracing, slow-query log (see observe.go).
	obsState

	// Rewrite configures the query rewrite phase; the zero value runs
	// all rule classes sequentially to fixpoint.
	Rewrite rewrite.Options
	// SkipRewrite bypasses the query rewrite phase ("this phase could
	// be bypassed for faster query compilation at the expense of
	// potentially lower runtime performance").
	SkipRewrite bool
}

// SetAudit toggles self-checking compilation: the rewrite engine runs
// the deep QGM verifier after every rule firing (returning a structured
// *rewrite.AuditError naming the offending rule on failure), and the
// optimizer verifies every chosen plan against the QGM head. Audit mode
// is slower and intended for DBC rule/STAR development and debugging.
func (db *DB) SetAudit(on bool) {
	db.Rewrite.Audit = on
	db.opt.Audit = on
}

// Open creates an empty in-memory database with the base rule sets.
func Open() *DB {
	cat := catalog.New()
	db := &DB{
		cat:      cat,
		rewriter: rewrite.NewDefaultEngine(),
		opt:      optimizer.New(cat),
		builder:  exec.NewBuilder(cat),
	}
	db.metrics = obs.NewRegistry()
	return db
}

// Catalog exposes the catalog for inspection.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Optimizer exposes the plan optimizer (join enumerator switches, STAR
// array) for tuning and extension.
func (db *DB) Optimizer() *optimizer.Optimizer { return db.opt }

// RewriteEngine exposes the query rewrite engine for rule registration.
func (db *DB) RewriteEngine() *rewrite.Engine { return db.rewriter }

// IOStats reports simulated storage I/O counters (reads, writes, index
// node touches).
func (db *DB) IOStats() (reads, writes, index int64) {
	return db.cat.IO.Snapshot()
}

// ResetIOStats zeroes the I/O counters.
func (db *DB) ResetIOStats() { db.cat.IO.Reset() }

// ---------------------------------------------------------------------
// DBC extension registration

// RegisterType installs an externally defined column type.
func (db *DB) RegisterType(def TypeDef) (TypeID, error) { return datum.RegisterType(def) }

// RegisterScalarFunc installs a scalar function usable anywhere a
// column can be referenced.
func (db *DB) RegisterScalarFunc(f *ScalarFunc) error { return db.cat.Funcs.RegisterScalar(f) }

// RegisterAggregate installs an aggregate function usable in place of
// built-in aggregates.
func (db *DB) RegisterAggregate(f *AggregateFunc) error { return db.cat.Funcs.RegisterAggregate(f) }

// RegisterSetPredicate installs a set predicate function; queries may
// then use "expr op NAME (subquery)", and QGM gains a quantifier type
// of the same name.
func (db *DB) RegisterSetPredicate(f *SetPredicateFunc) error {
	return db.cat.Funcs.RegisterSetPredicate(f)
}

// RegisterTableFunc installs a table function usable anywhere a table
// can appear.
func (db *DB) RegisterTableFunc(f *TableFunc) error { return db.cat.Funcs.RegisterTableFunc(f) }

// RegisterRewriteRule adds a DBC query rewrite rule.
func (db *DB) RegisterRewriteRule(r *RewriteRule) error { return db.rewriter.Register(r) }

// AddSTARAlternative extends the optimizer's STAR array.
func (db *DB) AddSTARAlternative(star string, alt *STARAlternative) {
	db.opt.Generator().AddAlternative(star, alt)
}

// RegisterStorageManager installs a storage manager; tables select it
// with CREATE TABLE ... USING <name>.
func (db *DB) RegisterStorageManager(m StorageManager) {
	db.cat.Storage.RegisterStorageManager(m)
}

// RegisterAccessMethod installs an attachment type; indexes select it
// with CREATE INDEX ... USING <name>.
func (db *DB) RegisterAccessMethod(m AccessMethod) {
	db.cat.Storage.RegisterAccessMethod(m)
}

// RegisterOperator installs a QES executor for a DBC plan operator
// emitted by custom STARs.
func (db *DB) RegisterOperator(op string, f BuildFunc) { db.builder.RegisterOperator(op, f) }

// ---------------------------------------------------------------------
// Statement execution (Figure 1)

// Exec parses, compiles and executes one statement. Params bind host
// language variables (":name" references).
func (db *DB) Exec(query string, params map[string]Value) (*Result, error) {
	return db.exec(context.Background(), query, params)
}

// exec is the statement entry point shared by Exec and ExecContext; it
// carries the panic barrier, the phase marker it reports, and the
// observation record for metrics/tracing. Defer order matters: observe
// is registered first so it runs last, after the recover barrier has
// converted any panic into err.
func (db *DB) exec(goCtx context.Context, query string, params map[string]Value) (res *Result, err error) {
	phase := "parse"
	o := &observation{query: query, kind: "INVALID", start: time.Now()}
	defer func() { db.observe(o, phase, err) }()
	defer recoverQueryError(&phase, &err)

	var tr *obs.Trace
	if db.traceWanted() {
		tr = obs.NewTrace()
	}
	t0 := time.Now()
	stmt, err := sql.Parse(query)
	tr.AddPhase(obs.PhaseParse, time.Since(t0))
	if err != nil {
		return nil, err
	}
	o.kind = stmtKind(stmt)
	switch s := stmt.(type) {
	case *sql.ExplainStmt:
		if s.Analyze {
			if tr == nil {
				tr = obs.NewTrace() // ANALYZE always reports phase times
			}
			o.trace = tr
			return db.explainAnalyze(goCtx, s.Stmt, &phase, params, tr, o)
		}
		text, err := db.explain(s.Stmt, &phase)
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"PLAN"}}
		for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			res.Rows = append(res.Rows, Row{datum.NewString(line)})
		}
		return res, nil
	case *sql.CreateTableStmt, *sql.CreateIndexStmt, *sql.CreateViewStmt,
		*sql.DropStmt, *sql.AnalyzeStmt:
		return db.execDDL(stmt)
	default:
		_ = s
	}
	compiled, err := db.compile(stmt, &phase, tr)
	if err != nil {
		return nil, err
	}
	o.trace, o.root = tr, compiled.Root
	phase = "exec"
	res, instr, err := db.runObserved(goCtx, compiled, params, tr, false)
	o.instr = instr
	if err != nil {
		return nil, err
	}
	if db.tracing.Load() {
		res.Trace = tr
	}
	return res, nil
}

// Stmt is a compiled statement; compilation and execution "may be
// separated in time, since the result of the compilation stage can be
// stored for future use" (section 3).
type Stmt struct {
	db       *DB
	compiled *plan.Compiled
	query    string
	kind     string
}

// Prepare compiles a DML statement for repeated execution.
func (db *DB) Prepare(query string) (st *Stmt, err error) {
	phase := "parse"
	defer recoverQueryError(&phase, &err)
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	compiled, err := db.compile(stmt, &phase, nil)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, compiled: compiled, query: query, kind: stmtKind(stmt)}, nil
}

// Run executes a prepared statement with the given parameter bindings.
func (s *Stmt) Run(params map[string]Value) (*Result, error) {
	return s.RunContext(context.Background(), params)
}

// RunContext is Run under a cancellation context.
func (s *Stmt) RunContext(goCtx context.Context, params map[string]Value) (res *Result, err error) {
	phase := "exec"
	o := &observation{query: s.query, kind: s.kind, start: time.Now(), root: s.compiled.Root}
	defer func() { s.db.observe(o, phase, err) }()
	defer recoverQueryError(&phase, &err)
	var tr *obs.Trace
	if s.db.traceWanted() {
		tr = obs.NewTrace()
		o.trace = tr
	}
	res, instr, err := s.db.runObserved(goCtx, s.compiled, params, tr, false)
	o.instr = instr
	if err != nil {
		return nil, err
	}
	if s.db.tracing.Load() {
		res.Trace = tr
	}
	return res, nil
}

// Plan renders the prepared statement's QEP.
func (s *Stmt) Plan() string { return s.compiled.Root.String() }

// compile drives the compile-time phases: translation to QGM, query
// rewrite, plan optimization (and, inside the executor, plan
// refinement). phase marks progress for the panic barrier; tr (nil-safe)
// collects per-phase wall time and rule/STAR firing counts.
func (db *DB) compile(stmt sql.Statement, phase *string, tr *obs.Trace) (*plan.Compiled, error) {
	t0 := time.Now()
	g, err := qgm.TranslateStatement(db.cat, stmt)
	tr.AddPhase(obs.PhaseParse, time.Since(t0)) // semantic analysis counts as parsing
	if err != nil {
		return nil, err
	}
	if !db.SkipRewrite {
		*phase = "rewrite"
		t0 = time.Now()
		trace, err := db.rewriter.Rewrite(g, db.Rewrite)
		tr.AddPhase(obs.PhaseRewrite, time.Since(t0))
		if err != nil {
			return nil, err
		}
		if tr != nil {
			for rule, n := range rewrite.FiringCounts(trace) {
				tr.RuleFirings[rule] += n
			}
		}
	}
	*phase = "optimize"
	t0 = time.Now()
	compiled, err := db.opt.OptimizeTraced(g, tr)
	tr.AddPhase(obs.PhaseOptimize, time.Since(t0))
	return compiled, err
}

// run refines and interprets a compiled plan under the DB's limits and
// the caller's cancellation context (see runObserved in observe.go for
// the full path; run is the untraced shorthand).
func (db *DB) run(goCtx context.Context, compiled *plan.Compiled, params map[string]Value) (*Result, error) {
	res, _, err := db.runObserved(goCtx, compiled, params, nil, false)
	return res, err
}

// explain renders the compilation phases for EXPLAIN <stmt>: the QGM
// after translation, the rewrite trace, the rewritten QGM, and the
// chosen plan.
func (db *DB) explain(stmt sql.Statement, phase *string) (string, error) {
	var b strings.Builder
	g, err := qgm.TranslateStatement(db.cat, stmt)
	if err != nil {
		return "", err
	}
	b.WriteString("=== QGM (after parsing & semantic analysis) ===\n")
	b.WriteString(g.String())
	if !db.SkipRewrite {
		*phase = "rewrite"
		trace, err := db.rewriter.Rewrite(g, db.Rewrite)
		if err != nil {
			return "", err
		}
		b.WriteString("=== Query rewrite ===\n")
		if len(trace) == 0 {
			b.WriteString("(no rules fired)\n")
		}
		for _, f := range trace {
			fmt.Fprintf(&b, "rule %s fired on box %d\n", f.Rule, f.Box)
		}
		b.WriteString("=== QGM (after rewrite) ===\n")
		b.WriteString(g.String())
	}
	*phase = "optimize"
	compiled, err := db.opt.Optimize(g)
	if err != nil {
		return "", err
	}
	b.WriteString("=== Query evaluation plan ===\n")
	b.WriteString(compiled.Root.String())
	return b.String(), nil
}

// execDDL performs data definition directly against the catalog.
func (db *DB) execDDL(stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.CreateTableStmt:
		cols := make([]catalog.Column, len(s.Cols))
		for i, cd := range s.Cols {
			tid, ok := datum.TypeIDByName(cd.TypeName)
			if !ok {
				return nil, fmt.Errorf("starburst: unknown type %s", cd.TypeName)
			}
			cols[i] = catalog.Column{Name: strings.ToUpper(cd.Name), Type: tid, NotNull: cd.NotNull}
		}
		if _, err := db.cat.CreateTable(s.Name, cols, s.SM); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.CreateIndexStmt:
		if _, err := db.cat.CreateIndex(s.Name, s.Table, s.Cols, s.Method, s.Unique); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.CreateViewStmt:
		// Validate the definition by translating it once.
		if _, err := qgm.Translate(db.cat, s.Query); err != nil {
			return nil, err
		}
		if err := db.cat.CreateView(s.Name, s.Cols, s.Text); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropStmt:
		var err error
		switch s.Kind {
		case "TABLE":
			err = db.cat.DropTable(s.Name)
		case "VIEW":
			err = db.cat.DropView(s.Name)
		case "INDEX":
			err = db.cat.DropIndex(s.Table, s.Name)
		}
		if err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.AnalyzeStmt:
		t, ok := db.cat.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("starburst: no table %s", s.Table)
		}
		db.cat.Analyze(t)
		return &Result{}, nil
	}
	return nil, fmt.Errorf("starburst: unsupported DDL %T", stmt)
}

// MustExec is Exec that panics on error; for examples and tests.
func (db *DB) MustExec(query string, params map[string]Value) *Result {
	res, err := db.Exec(query, params)
	if err != nil {
		panic(fmt.Sprintf("starburst: %s: %v", query, err))
	}
	return res
}
