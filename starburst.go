// Package starburst is a from-scratch reproduction of the extensible
// query processor described in "Extensible Query Processing in
// Starburst" (Haas, Freytag, Lohman, Pirahesh; SIGMOD 1989).
//
// It implements Corona — the Starburst language processor — end to end:
// the Hydrogen query language (an orthogonal, extensible SQL dialect),
// the Query Graph Model internal representation, rule-based query
// rewrite, a STAR-driven cost-based plan optimizer with a join
// enumerator, and a stream-based Query Evaluation System; plus the
// parts of Core (the data manager) that Corona drives: record
// management, an extensible storage-manager architecture, and
// attachment (access method) types including B-trees.
//
// Every extension axis from the paper is available to database
// customizers (DBCs) through the DB methods: new types, scalar /
// aggregate / set-predicate / table functions, query rewrite rules,
// optimizer STARs, QES operators, join kinds, storage managers and
// access methods.
//
// Quickstart:
//
//	db := starburst.Open()
//	db.Exec(`CREATE TABLE inventory (partno INT, onhand_qty INT, type STRING)`, nil)
//	db.Exec(`INSERT INTO inventory VALUES (1, 10, 'CPU')`, nil)
//	res, err := db.Exec(`SELECT partno FROM inventory WHERE type = 'CPU'`, nil)
package starburst

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/qgm"
	"repro/internal/rewrite"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/storage/disk"
	"repro/internal/txn"
)

// Re-exported core types, so DBC extensions are written against the
// public package alone.
type (
	// Value is a typed datum.
	Value = datum.Value
	// Row is a tuple of datums.
	Row = datum.Row
	// TypeID identifies a built-in or externally defined type.
	TypeID = datum.TypeID
	// TypeDef describes an externally defined column type.
	TypeDef = datum.TypeDef
	// ScalarFunc is an externally defined scalar function.
	ScalarFunc = expr.ScalarFunc
	// AggregateFunc is an externally defined aggregate function.
	AggregateFunc = expr.AggregateFunc
	// AggState accumulates one group for an aggregate function.
	AggState = expr.AggState
	// SetPredicateFunc is an externally defined set predicate (the
	// paper's MAJORITY example).
	SetPredicateFunc = expr.SetPredicateFunc
	// SetPredState folds per-element predicate truth values.
	SetPredState = expr.SetPredState
	// TableFunc is an externally defined table function (SAMPLE).
	TableFunc = expr.TableFunc
	// Relation is a materialized table exchanged with table functions.
	Relation = expr.Relation
	// ColumnDef names a relation column.
	ColumnDef = expr.ColumnDef
	// RewriteRule is a QGM rewrite rule (condition/action).
	RewriteRule = rewrite.Rule
	// RewriteContext is passed to rewrite rule conditions and actions.
	RewriteContext = rewrite.Context
	// RewriteOptions tunes the rewrite engine (strategy, budget, ...).
	RewriteOptions = rewrite.Options
	// AuditError is returned from compilation in audit mode when a rule
	// firing leaves the QGM invalid; it names the rule, the firing
	// index, and carries the verifier report and firing trace.
	AuditError = rewrite.AuditError
	// STARAlternative is one alternative definition of an optimizer
	// STAR.
	STARAlternative = optimizer.Alternative
	// OptArgs parameterizes a STAR invocation.
	OptArgs = optimizer.Args
	// OptCtx is the STAR evaluation context.
	OptCtx = optimizer.Ctx
	// PlanNode is a LOLEPOP invocation in a query evaluation plan.
	PlanNode = plan.Node
	// StorageManager stores table data (extension architecture).
	StorageManager = storage.StorageManager
	// AccessMethod is an attachment type (B-tree, R-tree, ...).
	AccessMethod = storage.AccessMethod
	// Stream is the QES tuple iterator interface.
	Stream = exec.Stream
	// ExecCtx is the QES execution context.
	ExecCtx = exec.Ctx
	// BuildFunc builds the executor for a DBC-registered plan operator.
	BuildFunc = exec.BuildFunc
)

// Datum constructors, re-exported.
var (
	// Null is the SQL NULL value.
	Null = datum.Null
	// NewInt makes an INT datum.
	NewInt = datum.NewInt
	// NewFloat makes a FLOAT datum.
	NewFloat = datum.NewFloat
	// NewString makes a STRING datum.
	NewString = datum.NewString
	// NewBool makes a BOOL datum.
	NewBool = datum.NewBool
	// NewUser makes a datum of an externally defined type.
	NewUser = datum.NewUser
	// TypeByName resolves an externally defined type name.
	TypeByName = datum.TypeByName
)

// Result is the outcome of executing a statement.
type Result struct {
	// Columns names the result columns (empty for DDL/DML).
	Columns []string
	// Rows holds the result tuples.
	Rows []Row
	// Affected counts rows touched by INSERT/UPDATE/DELETE.
	Affected int64
	// Trace is the phase trace, present when tracing is armed (see
	// DB.SetTracing) or the statement was EXPLAIN ANALYZE.
	Trace *Trace
}

// DB is one Starburst database instance: catalog plus the four
// compilation/execution components of Figure 1, each independently
// extensible.
//
// Concurrency contract: a DB is safe for concurrent use, and
// statements never serialize behind a DB-wide lock. Every statement
// runs inside a transaction — an explicit one (DB.Begin,
// Session.Begin, SQL BEGIN) or an implicit auto-commit transaction —
// whose MVCC snapshot gives it a stable view of the data while
// concurrent writers commit, and whose pinned copy-on-write catalog
// generation gives it a stable view of the schema while concurrent DDL
// publishes new generations. Writers conflict first-writer-wins;
// commits serialize only against each other. Per-client tuning belongs
// on a Session (see NewSession); the DB-level setters adjust the
// defaults new snapshots inherit.
type DB struct {
	cat      *catalog.Catalog
	rewriter *rewrite.Engine
	opt      *optimizer.Optimizer
	builder  *exec.Builder

	// mgr allocates transactions, owns the commit-timestamp watermark,
	// and serializes the commit protocol.
	mgr *txn.Manager
	// adminMu is the administrative lock that replaced the DB-wide
	// statement RWMutex: statements (queries, DML and DDL alike) hold
	// it shared for their duration, while operations that restructure
	// live engine state in place — Close, fault attach/detach — hold it
	// exclusively. Isolation between statements comes from MVCC
	// snapshots and copy-on-write catalog generations, never from this
	// lock.
	adminMu sync.RWMutex
	// cache is the shared plan cache, nil unless WithPlanCache.
	cache *planCache

	// store is the durable disk store, nil unless WithDataDir; dataDir
	// is its directory. openErr records a failed WithDataDir attach (or
	// recovery) — Open cannot return an error, so every statement
	// reports it instead. replay is non-nil only while WAL DDL replay is
	// re-executing statements through execDDL (see durable.go).
	store   *disk.Store
	dataDir string
	openErr error
	replay  *replayState

	// limits holds the default per-statement execution budgets (see
	// SetLimits); nil means unlimited.
	limits atomic.Pointer[exec.Limits]
	// faults is the attached fault injector, nil until InjectFaults.
	faults *storage.FaultInjector
	// dop and batchSize configure parallel/batched execution (see
	// SetParallelism and SetBatchSize in parallel.go).
	dop       atomic.Int32
	batchSize atomic.Int32
	// vecDisabled switches off columnar (vectorized) execution; stored
	// inverted so the zero value keeps vectorization on by default (see
	// SetVectorized in session.go).
	vecDisabled atomic.Bool
	// cardFeedback arms the cardinality-feedback loop (see feedback.go).
	cardFeedback atomic.Bool

	// obsState holds the observability knobs: metrics registry, phase
	// tracing, slow-query log (see observe.go).
	obsState

	// waitProf is the DB-wide wait-event profile; always on, feeds the
	// STMT IS NULL rows of SYS.WAITS (see introspect.go).
	waitProf *obs.WaitProfile
	// stmts is the statement-statistics accumulator (SYS.STATEMENTS).
	stmts stmtStats
	// sessions tracks open sessions (SYS.SESSIONS).
	sessions sessionReg
	// spanExp is the installed statement-trace exporter, nil when span
	// export is off (see SetSpanExporter).
	spanExp atomic.Pointer[SpanExporter]

	// Rewrite configures the query rewrite phase; the zero value runs
	// all rule classes sequentially to fixpoint.
	Rewrite rewrite.Options
	// SkipRewrite bypasses the query rewrite phase ("this phase could
	// be bypassed for faster query compilation at the expense of
	// potentially lower runtime performance").
	SkipRewrite bool
}

// SetAudit toggles self-checking compilation: the rewrite engine runs
// the deep QGM verifier after every rule firing (returning a structured
// *rewrite.AuditError naming the offending rule on failure), and the
// optimizer verifies every chosen plan against the QGM head. Audit mode
// is slower and intended for DBC rule/STAR development and debugging.
func (db *DB) SetAudit(on bool) {
	db.Rewrite.Audit = on
	db.opt.Audit = on
}

// Open creates an empty in-memory database with the base rule sets,
// configured by the given options, e.g.:
//
//	db := starburst.Open(
//		starburst.WithParallelism(4),
//		starburst.WithPlanCache(256),
//		starburst.WithLimits(starburst.Limits{MaxRows: 1e6}),
//	)
func Open(opts ...Option) *DB {
	cat := catalog.New()
	db := &DB{
		cat:      cat,
		rewriter: rewrite.NewDefaultEngine(),
		opt:      optimizer.New(cat),
		builder:  exec.NewBuilder(cat),
		mgr:      txn.NewManager(),
	}
	db.metrics = obs.NewRegistry()
	db.waitProf = obs.NewWaitProfile()
	for _, opt := range opts {
		opt(db)
	}
	db.registerIntrospection()
	db.describeMetrics()
	return db
}

// Catalog exposes the catalog for inspection.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Optimizer exposes the plan optimizer (join enumerator switches, STAR
// array) for tuning and extension.
func (db *DB) Optimizer() *optimizer.Optimizer { return db.opt }

// RewriteEngine exposes the query rewrite engine for rule registration.
func (db *DB) RewriteEngine() *rewrite.Engine { return db.rewriter }

// IOStats reports simulated storage I/O counters (reads, writes, index
// node touches).
func (db *DB) IOStats() (reads, writes, index int64) {
	return db.cat.IO.Snapshot()
}

// ResetIOStats zeroes the I/O counters.
func (db *DB) ResetIOStats() { db.cat.IO.Reset() }

// ---------------------------------------------------------------------
// DBC extension registration

// RegisterType installs an externally defined column type.
func (db *DB) RegisterType(def TypeDef) (TypeID, error) { return datum.RegisterType(def) }

// RegisterScalarFunc installs a scalar function usable anywhere a
// column can be referenced.
func (db *DB) RegisterScalarFunc(f *ScalarFunc) error { return db.cat.Funcs.RegisterScalar(f) }

// RegisterAggregate installs an aggregate function usable in place of
// built-in aggregates.
func (db *DB) RegisterAggregate(f *AggregateFunc) error { return db.cat.Funcs.RegisterAggregate(f) }

// RegisterSetPredicate installs a set predicate function; queries may
// then use "expr op NAME (subquery)", and QGM gains a quantifier type
// of the same name.
func (db *DB) RegisterSetPredicate(f *SetPredicateFunc) error {
	return db.cat.Funcs.RegisterSetPredicate(f)
}

// RegisterTableFunc installs a table function usable anywhere a table
// can appear.
func (db *DB) RegisterTableFunc(f *TableFunc) error { return db.cat.Funcs.RegisterTableFunc(f) }

// RegisterRewriteRule adds a DBC query rewrite rule.
func (db *DB) RegisterRewriteRule(r *RewriteRule) error { return db.rewriter.Register(r) }

// AddSTARAlternative extends the optimizer's STAR array.
func (db *DB) AddSTARAlternative(star string, alt *STARAlternative) {
	db.opt.Generator().AddAlternative(star, alt)
}

// RegisterStorageManager installs a storage manager; tables select it
// with CREATE TABLE ... USING <name>. Registering a second manager
// under an existing name is rejected with a *storage.DuplicateError.
func (db *DB) RegisterStorageManager(m StorageManager) error {
	return db.cat.Storage.RegisterStorageManager(m)
}

// RegisterAccessMethod installs an attachment type; indexes select it
// with CREATE INDEX ... USING <name>. Registering a second method under
// an existing name is rejected with a *storage.DuplicateError.
func (db *DB) RegisterAccessMethod(m AccessMethod) error {
	return db.cat.Storage.RegisterAccessMethod(m)
}

// RegisterOperator installs a QES executor for a DBC plan operator
// emitted by custom STARs.
func (db *DB) RegisterOperator(op string, f BuildFunc) { db.builder.RegisterOperator(op, f) }

// ---------------------------------------------------------------------
// Statement execution (Figure 1)

// Query parses, compiles and executes one statement under ctx; it is
// the context-first core every other execution entry point wraps. The
// statement runs inside an implicit auto-commit transaction: committed
// when it succeeds, rolled back when it fails. Params bind host
// language variables (":name" references). Cancelling ctx aborts the
// statement at the next tuple boundary. Errors are reported as
// *QueryError.
func (db *DB) Query(ctx context.Context, query string, params map[string]Value) (*Result, error) {
	return db.query(ctx, query, params, db.snapshot(), nil, nil)
}

// Exec is Query under context.Background(), kept as the short form for
// examples, tests and non-cancellable callers.
func (db *DB) Exec(query string, params map[string]Value) (*Result, error) {
	return db.query(context.Background(), query, params, db.snapshot(), nil, nil)
}

// query is the single statement core: every public execution entry
// point (DB.Query/Exec/ExecContext, Session.Query/Exec, Tx.Query/Exec,
// the database/sql driver) lands here with a settings snapshot. It
// carries the panic barrier, the error-wrapping barrier, the phase
// marker, the observation record, the plan-cache fast path, and the
// transaction funnel: tx is the explicit transaction to run inside
// (nil for auto-commit, where the core begins and finishes an implicit
// one), and sess — when the statement came through a session — handles
// the SQL transaction-control statements. Defer order matters: observe
// is registered first so it runs last; the recover barrier (registered
// last) runs first and converts any panic into err, so the implicit
// transaction's auto-finish defer sees panics as errors and rolls
// back.
func (db *DB) query(goCtx context.Context, query string, params map[string]Value, set settings, sess *Session, tx *Tx) (res *Result, err error) {
	phase := "parse"
	o := &observation{query: query, kind: "INVALID", start: time.Now(), waits: obs.NewWaitSet()}
	defer func() { db.observe(o, phase, err) }()
	defer func() {
		if err != nil && errors.Is(err, ErrWriteConflict) {
			db.waitProf.Record(obs.WaitTxnConflict, 0)
			o.waits.Record(obs.WaitTxnConflict, 0)
		}
		err = wrapQueryError(phase, err)
	}()
	if db.openErr != nil {
		phase = "open"
		return nil, db.openErr
	}

	var tr *obs.Trace
	if set.tracing || db.slowNanos.Load() > 0 || db.spanExp.Load() != nil {
		tr = obs.NewTrace()
	}

	db.lockAdminShared(o.waits)
	defer db.adminMu.RUnlock()

	// auto marks an implicit transaction this statement owns: begun by
	// ensureTx below, committed or rolled back by the finishAuto defer.
	// An explicit transaction (tx != nil on entry, or lazily begun on
	// an autocommit-off session) outlives the statement.
	auto := false
	ensureTx := func() error {
		if tx == nil {
			if sess != nil && !sess.Autocommit() {
				var berr error
				if tx, berr = sess.beginLazy(goCtx); berr != nil {
					return berr
				}
			} else {
				tx = db.autoTx()
				auto = true
			}
		}
		tx.stmtStart()
		return nil
	}
	defer func() {
		if auto {
			err = db.finishAuto(tx, err, o.waits)
		}
	}()
	defer recoverQueryError(&phase, &err)

	// Plan-cache fast path: a hit skips parse, rewrite and optimize
	// entirely. The entry is validated against a pinned catalog
	// generation — the open transaction's, or one pinned here and
	// handed to the implicit transaction on a hit — which cannot move
	// under the running plan. Only cacheable kinds (DML) live in the
	// cache, so a hit never preempts transaction-control or DDL
	// handling below; an autocommit-off session between transactions
	// skips the fast path so its lazy BEGIN goes through the full path.
	if db.cache != nil && (tx != nil || sess == nil || sess.Autocommit()) {
		key := db.cacheKey(query, set)
		cat := db.cat.Pin()
		if tx != nil {
			cat = tx.cat
		}
		if e, ok := db.cache.get(key, cat.Version()); ok {
			if tx == nil {
				tx = db.autoTxOn(cat)
				auto = true
			}
			tx.stmtStart()
			o.kind, o.root, o.trace = e.kind, e.compiled.Root, tr
			o.cacheHit = true
			if tr != nil {
				tr.PlanCacheHit = true
			}
			phase = "exec"
			return db.finishRun(goCtx, e.compiled, params, tr, o, set, tx)
		}
	}

	t0 := time.Now()
	stmt, err := sql.Parse(query)
	tr.AddPhase(obs.PhaseParse, time.Since(t0))
	if err != nil {
		return nil, err
	}
	o.kind = stmtKind(stmt)
	switch s := stmt.(type) {
	case *sql.BeginStmt:
		if tx != nil {
			return nil, fmt.Errorf("starburst: transaction already in progress (nested transactions are not supported)")
		}
		if sess == nil {
			return nil, fmt.Errorf("starburst: BEGIN requires a session or transaction handle (use DB.NewSession or DB.Begin)")
		}
		if _, err := sess.Begin(goCtx); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.CommitStmt:
		if tx == nil {
			return nil, fmt.Errorf("starburst: no transaction in progress")
		}
		phase = "commit"
		return &Result{}, tx.finish(true, o.waits)
	case *sql.RollbackStmt:
		if tx == nil {
			return nil, fmt.Errorf("starburst: no transaction in progress")
		}
		phase = "rollback"
		return &Result{}, tx.finish(false, o.waits)
	case *sql.ExplainStmt:
		if err := ensureTx(); err != nil {
			return nil, err
		}
		if s.Analyze {
			if tr == nil {
				tr = obs.NewTrace() // ANALYZE always reports phase times
			}
			o.trace = tr
			return db.explainAnalyze(goCtx, s.Stmt, &phase, params, tr, o, set, tx)
		}
		text, err := db.explain(tx.cat, s.Stmt, &phase, set)
		if err != nil {
			return nil, err
		}
		res := &Result{Columns: []string{"PLAN"}}
		for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			res.Rows = append(res.Rows, Row{datum.NewString(line)})
		}
		return res, nil
	case *sql.CreateTableStmt, *sql.CreateIndexStmt, *sql.CreateViewStmt,
		*sql.DropStmt, *sql.AnalyzeStmt:
		// DDL auto-commits: it runs outside the MVCC transaction, as an
		// atomic copy-on-write catalog-generation swap whose version
		// bump invalidates affected plan-cache entries lazily. Readers
		// holding older pinned generations are never blocked. Inside an
		// explicit transaction DDL is rejected — its effects could not
		// roll back with the transaction.
		phase = "ddl"
		if tx != nil {
			return nil, fmt.Errorf("starburst: %s cannot run inside a transaction (DDL auto-commits)", o.kind)
		}
		return db.execDDLDurable(stmt, query)
	}
	if err := ensureTx(); err != nil {
		return nil, err
	}
	compiled, err := db.compile(tx.cat, stmt, &phase, tr, set)
	if err != nil {
		return nil, err
	}
	if db.cache != nil && cacheableKind(o.kind) {
		db.cache.miss()
		db.cache.put(&cacheEntry{
			key:      db.cacheKey(query, set),
			compiled: compiled,
			kind:     o.kind,
			gen:      tx.cat.Version(),
		})
	}
	o.trace, o.root = tr, compiled.Root
	phase = "exec"
	return db.finishRun(goCtx, compiled, params, tr, o, set, tx)
}

// cacheableKind reports whether plans of this statement kind are worth
// caching: exactly the kinds that compile through the optimizer and
// re-execute unchanged under fresh parameter bindings.
func cacheableKind(kind string) bool {
	switch kind {
	case "SELECT", "INSERT", "UPDATE", "DELETE":
		return true
	}
	return false
}

// finishRun executes a compiled plan and finishes the statement: it
// records instrumentation on the observation and attaches the trace to
// the result when the session asked for one.
// starburst:locks db.adminMu:read
func (db *DB) finishRun(goCtx context.Context, compiled *plan.Compiled, params map[string]Value,
	tr *obs.Trace, o *observation, set settings, tx *Tx) (*Result, error) {
	res, instr, err := db.runObserved(goCtx, compiled, params, tr, false, set, o.waits, tx)
	o.instr = instr
	if err != nil {
		return nil, err
	}
	o.rows = res.Affected
	if o.rows == 0 {
		o.rows = int64(len(res.Rows))
	}
	if set.tracing {
		res.Trace = tr
	}
	return res, nil
}

// Stmt is a compiled statement; compilation and execution "may be
// separated in time, since the result of the compilation stage can be
// stored for future use" (section 3).
type Stmt struct {
	db       *DB
	compiled *plan.Compiled
	query    string
	kind     string
	// snap re-reads the owning DB's or Session's settings per run, so a
	// prepared statement follows later setting changes like an ad-hoc
	// statement would.
	snap func() settings
	// sess is the owning session for Session.Prepare statements, nil
	// for DB-level ones. A session-prepared statement runs inside the
	// session's open transaction, exactly like an ad-hoc statement.
	sess *Session
}

// Prepare compiles a DML statement for repeated execution under the
// DB's default settings; Session.Prepare is the session-scoped twin.
func (db *DB) Prepare(query string) (*Stmt, error) {
	return db.prepare(query, db.snapshot)
}

// prepare is the compilation core behind DB.Prepare and
// Session.Prepare. It consults (and fills) the plan cache, so
// re-preparing a statement another session already compiled is a cache
// hit.
func (db *DB) prepare(query string, snap func() settings) (st *Stmt, err error) {
	set := snap()
	phase := "parse"
	defer func() { err = wrapQueryError(phase, err) }()
	defer recoverQueryError(&phase, &err)
	if db.openErr != nil {
		phase = "open"
		return nil, db.openErr
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	kind := stmtKind(stmt)
	// Compile against a pinned catalog generation: concurrent DDL
	// publishes new generations without disturbing this compilation.
	cat := db.cat.Pin()
	var key string
	if db.cache != nil && cacheableKind(kind) {
		key = db.cacheKey(query, set)
		if e, ok := db.cache.get(key, cat.Version()); ok {
			return &Stmt{db: db, compiled: e.compiled, query: query, kind: kind, snap: snap}, nil
		}
	}
	compiled, err := db.compile(cat, stmt, &phase, nil, set)
	if err != nil {
		return nil, err
	}
	if key != "" {
		db.cache.miss()
		db.cache.put(&cacheEntry{key: key, compiled: compiled, kind: kind, gen: cat.Version()})
	}
	return &Stmt{db: db, compiled: compiled, query: query, kind: kind, snap: snap}, nil
}

// Query executes the prepared statement under ctx with the given
// parameter bindings; it is the context-first core Run and RunContext
// wrap. Settings are re-snapshotted from the preparing DB or Session on
// every call.
func (s *Stmt) Query(goCtx context.Context, params map[string]Value) (res *Result, err error) {
	db := s.db
	set := s.snap()
	phase := "exec"
	o := &observation{query: s.query, kind: s.kind, start: time.Now(), root: s.compiled.Root, waits: obs.NewWaitSet()}
	defer func() { db.observe(o, phase, err) }()
	defer func() {
		if err != nil && errors.Is(err, ErrWriteConflict) {
			db.waitProf.Record(obs.WaitTxnConflict, 0)
			o.waits.Record(obs.WaitTxnConflict, 0)
		}
		err = wrapQueryError(phase, err)
	}()
	if db.openErr != nil {
		phase = "open"
		return nil, db.openErr
	}
	var tr *obs.Trace
	if set.tracing || db.slowNanos.Load() > 0 || db.spanExp.Load() != nil {
		tr = obs.NewTrace()
		o.trace = tr
	}
	// Resolve the transaction before the admin latch: transaction entry
	// points acquire tx.mu before the latch, and this path must match
	// that order.
	var tx *Tx
	if s.sess != nil {
		tx = s.sess.openTx()
		if tx == nil && !s.sess.Autocommit() {
			var berr error
			if tx, berr = s.sess.beginLazy(goCtx); berr != nil {
				return nil, berr
			}
		}
	}
	if tx != nil {
		// Inside the session's open transaction: the statement joins
		// it; a failure rolls back the statement, not the transaction.
		tx.mu.Lock()
		defer tx.mu.Unlock()
		if tx.done {
			return nil, ErrTxDone
		}
		db.lockAdminShared(o.waits)
		defer db.adminMu.RUnlock()
		tx.stmtStart()
		defer recoverQueryError(&phase, &err)
		return db.finishRun(goCtx, s.compiled, params, tr, o, set, tx)
	}
	db.lockAdminShared(o.waits)
	defer db.adminMu.RUnlock()
	// A prepared statement runs inside an implicit auto-commit
	// transaction, exactly like an ad-hoc one.
	tx = db.autoTx()
	tx.stmtStart()
	defer func() { err = db.finishAuto(tx, err, o.waits) }()
	defer recoverQueryError(&phase, &err)
	return db.finishRun(goCtx, s.compiled, params, tr, o, set, tx)
}

// Run executes a prepared statement with the given parameter bindings.
func (s *Stmt) Run(params map[string]Value) (*Result, error) {
	return s.Query(context.Background(), params)
}

// RunContext is Run under a cancellation context.
func (s *Stmt) RunContext(goCtx context.Context, params map[string]Value) (*Result, error) {
	return s.Query(goCtx, params)
}

// Plan renders the prepared statement's QEP.
func (s *Stmt) Plan() string { return s.compiled.Root.String() }

// compile drives the compile-time phases: translation to QGM, query
// rewrite, plan optimization (and, inside the executor, plan
// refinement). phase marks progress for the panic barrier; tr (nil-safe)
// collects per-phase wall time and rule/STAR firing counts.
// It compiles against cat, the calling transaction's pinned catalog
// generation.
// starburst:locks db.adminMu:read
func (db *DB) compile(cat *catalog.Catalog, stmt sql.Statement, phase *string, tr *obs.Trace, set settings) (*plan.Compiled, error) {
	t0 := time.Now()
	g, err := qgm.TranslateStatement(cat, stmt)
	tr.AddPhase(obs.PhaseParse, time.Since(t0)) // semantic analysis counts as parsing
	if err != nil {
		return nil, err
	}
	if !set.skipRewrite {
		*phase = "rewrite"
		t0 = time.Now()
		trace, err := db.rewriter.Rewrite(g, set.rewrite)
		tr.AddPhase(obs.PhaseRewrite, time.Since(t0))
		if err != nil {
			return nil, err
		}
		if tr != nil {
			for rule, n := range rewrite.FiringCounts(trace) {
				tr.RuleFirings[rule] += n
			}
		}
	}
	*phase = "optimize"
	t0 = time.Now()
	compiled, err := db.opt.OptimizeConfig(g, tr, optimizer.Config{DOP: set.dop})
	tr.AddPhase(obs.PhaseOptimize, time.Since(t0))
	return compiled, err
}

// run refines and interprets a compiled plan under the DB's default
// settings and the caller's cancellation context (see runObserved in
// observe.go for the full path; run is the untraced shorthand, wrapping
// the plan in an implicit auto-commit transaction).
func (db *DB) run(goCtx context.Context, compiled *plan.Compiled, params map[string]Value) (res *Result, err error) {
	db.adminMu.RLock()
	defer db.adminMu.RUnlock()
	tx := db.autoTx()
	tx.stmtStart()
	defer func() { err = db.finishAuto(tx, err, nil) }()
	res, _, err = db.runObserved(goCtx, compiled, params, nil, false, db.snapshot(), nil, tx)
	return res, err
}

// explain renders the compilation phases for EXPLAIN <stmt>: the QGM
// after translation, the rewrite trace, the rewritten QGM, and the
// chosen plan. cat is the calling transaction's pinned catalog
// generation.
// starburst:locks db.adminMu:read
func (db *DB) explain(cat *catalog.Catalog, stmt sql.Statement, phase *string, set settings) (string, error) {
	var b strings.Builder
	g, err := qgm.TranslateStatement(cat, stmt)
	if err != nil {
		return "", err
	}
	b.WriteString("=== QGM (after parsing & semantic analysis) ===\n")
	b.WriteString(g.String())
	if !set.skipRewrite {
		*phase = "rewrite"
		trace, err := db.rewriter.Rewrite(g, set.rewrite)
		if err != nil {
			return "", err
		}
		b.WriteString("=== Query rewrite ===\n")
		if len(trace) == 0 {
			b.WriteString("(no rules fired)\n")
		}
		for _, f := range trace {
			fmt.Fprintf(&b, "rule %s fired on box %d\n", f.Rule, f.Box)
		}
		b.WriteString("=== QGM (after rewrite) ===\n")
		b.WriteString(g.String())
	}
	*phase = "optimize"
	compiled, err := db.opt.OptimizeConfig(g, nil, optimizer.Config{DOP: set.dop})
	if err != nil {
		return "", err
	}
	b.WriteString("=== Query evaluation plan ===\n")
	b.WriteString(compiled.Root.String())
	return b.String(), nil
}

// execDDL performs data definition against the live catalog. Each
// mutation publishes a fresh copy-on-write generation atomically, so
// in-flight statements keep reading their pinned generations.
func (db *DB) execDDL(stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.CreateTableStmt:
		cols := make([]catalog.Column, len(s.Cols))
		for i, cd := range s.Cols {
			tid, ok := datum.TypeIDByName(cd.TypeName)
			if !ok {
				return nil, fmt.Errorf("starburst: unknown type %s", cd.TypeName)
			}
			cols[i] = catalog.Column{Name: strings.ToUpper(cd.Name), Type: tid, NotNull: cd.NotNull}
		}
		if _, err := db.cat.CreateTable(s.Name, cols, s.SM); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.CreateIndexStmt:
		if _, err := db.cat.CreateIndex(s.Name, s.Table, s.Cols, s.Method, s.Unique); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.CreateViewStmt:
		// Validate the definition by translating it once.
		if _, err := qgm.Translate(db.cat, s.Query); err != nil {
			return nil, err
		}
		if err := db.cat.CreateView(s.Name, s.Cols, s.Text); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.DropStmt:
		var err error
		switch s.Kind {
		case "TABLE":
			err = db.cat.DropTable(s.Name)
		case "VIEW":
			err = db.cat.DropView(s.Name)
		case "INDEX":
			err = db.cat.DropIndex(s.Table, s.Name)
		}
		if err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.AnalyzeStmt:
		t, ok := db.cat.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("starburst: no table %s", s.Table)
		}
		if err := db.cat.Analyze(t); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	return nil, fmt.Errorf("starburst: unsupported DDL %T", stmt)
}

// MustExec is Exec that panics on error; for examples and tests.
func (db *DB) MustExec(query string, params map[string]Value) *Result {
	res, err := db.Exec(query, params)
	if err != nil {
		panic(fmt.Sprintf("starburst: %s: %v", query, err))
	}
	return res
}
