package starburst

// Columnar-execution and cardinality-feedback benchmarks (PR 9). The
// Col/Row pair is the headline gate: the same scan→filter→aggregate
// statement through the fused columnar kernels vs the row-batch path
// (benchcmp requires ≥1.5x). The feedback pair prices the loop: the
// overhead of running armed (instrumented + capture walk), and the
// post-fold replan cycle (generational invalidation + recompile).

import (
	"fmt"
	"testing"

	"repro/internal/datum"
)

// colBenchDB is a wide-enough table that per-row dispatch dominates:
// the row path touches every field through datum.Value, the columnar
// path runs typed kernels over lanes.
func colBenchDB(b *testing.B) *DB {
	b.Helper()
	db := Open()
	mustExec(b, db, `CREATE TABLE cb (k INT, v INT, w INT)`)
	tbl, _ := db.cat.Table("cb")
	for i := 0; i < 32768; i++ {
		row := datum.Row{
			datum.NewInt(int64(i)),
			datum.NewInt(int64(i % 1024)),
			datum.NewInt(int64(i % 11)),
		}
		if _, err := db.cat.Insert(tbl, row); err != nil {
			b.Fatal(err)
		}
	}
	mustExec(b, db, "ANALYZE cb")
	return db
}

const colBenchQuery = `SELECT w, COUNT(*), SUM(v) FROM cb WHERE v < 400 GROUP BY w`

func benchColScanFilterAgg(b *testing.B, vectorized bool) {
	db := colBenchDB(b)
	db.SetVectorized(vectorized)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(colBenchQuery, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 11 {
			b.Fatalf("%d groups", len(res.Rows))
		}
	}
}

func BenchmarkColScanFilterAgg(b *testing.B) { benchColScanFilterAgg(b, true) }
func BenchmarkRowScanFilterAgg(b *testing.B) { benchColScanFilterAgg(b, false) }

// feedbackBenchDB mirrors feedback_test.go's divergence scenario at
// benchmark scale: small_t's statistics are 300x stale, so the first
// armed execution folds an overlay and bumps the catalog version.
func feedbackBenchDB(b *testing.B) *DB {
	b.Helper()
	db := Open(WithPlanCache(16))
	mustExec(b, db, `CREATE TABLE small_t (v INT)`)
	mustExec(b, db, `CREATE TABLE big_t (v INT)`)
	for i := 0; i < 3; i++ {
		mustExec(b, db, fmt.Sprintf(`INSERT INTO small_t VALUES (%d)`, i))
	}
	for i := 0; i < 100; i++ {
		mustExec(b, db, fmt.Sprintf(`INSERT INTO big_t VALUES (%d)`, i))
	}
	mustExec(b, db, `ANALYZE small_t`)
	mustExec(b, db, `ANALYZE big_t`)
	for i := 3; i < 1003; i++ {
		mustExec(b, db, fmt.Sprintf(`INSERT INTO small_t VALUES (%d)`, i))
	}
	return db
}

const feedbackBenchQuery = `SELECT COUNT(*) FROM small_t s, big_t b WHERE s.v < b.v`

// BenchmarkFeedbackOffExec is the baseline: the same statement with
// the loop disarmed (vectorized, plan-cached).
func BenchmarkFeedbackOffExec(b *testing.B) {
	db := feedbackBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(feedbackBenchQuery, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeedbackArmedExec runs with feedback armed after the fold
// has settled: steady-state price of instrumented execution plus the
// capture walk that finds nothing left to fold.
func BenchmarkFeedbackArmedExec(b *testing.B) {
	db := feedbackBenchDB(b)
	db.SetCardinalityFeedback(true)
	mustExec(b, db, feedbackBenchQuery) // fold + replan once, then settle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(feedbackBenchQuery, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeedbackReplan is the post-fold cycle: every iteration
// invalidates the cached plan the way a fold does (catalog version
// bump) and pays the recompile against overlay-corrected estimates
// plus the execution.
func BenchmarkFeedbackReplan(b *testing.B) {
	db := feedbackBenchDB(b)
	db.SetCardinalityFeedback(true)
	mustExec(b, db, feedbackBenchQuery) // seed the overlay
	db.SetCardinalityFeedback(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.cat.BumpVersion()
		if _, err := db.Exec(feedbackBenchQuery, nil); err != nil {
			b.Fatal(err)
		}
	}
}
