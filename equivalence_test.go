package starburst

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/datum"
)

// This file checks the paper's nonprocedurality goal as a property:
// "whenever feasible, the performance of a query should depend on its
// meaning rather than on its expression". Concretely, for randomly
// generated queries the result must be identical under
//
//   - rewrite on vs. rewrite off,
//   - every forced join method,
//   - left-deep vs. bushy enumeration,
//
// because all of these change only the plan, never the meaning.

// genDB builds a small database with NULLs sprinkled in.
func genDB(t testing.TB, seed int64) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, "CREATE TABLE ta (k INT, v INT, s STRING)")
	mustExec(t, db, "CREATE TABLE tb (k INT, v INT)")
	mustExec(t, db, "CREATE TABLE tc (k INT, s STRING)")
	rng := rand.New(rand.NewSource(seed))
	val := func(limit int) string {
		if rng.Intn(8) == 0 {
			return "NULL"
		}
		return fmt.Sprintf("%d", rng.Intn(limit))
	}
	str := func() string {
		if rng.Intn(8) == 0 {
			return "NULL"
		}
		return fmt.Sprintf("'s%d'", rng.Intn(4))
	}
	for i := 0; i < 40; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO ta VALUES (%s, %s, %s)", val(10), val(20), str()))
	}
	for i := 0; i < 30; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO tb VALUES (%s, %s)", val(10), val(20)))
	}
	for i := 0; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO tc VALUES (%s, %s)", val(10), str()))
	}
	mustExec(t, db, "ANALYZE ta")
	mustExec(t, db, "ANALYZE tb")
	mustExec(t, db, "ANALYZE tc")
	return db
}

// queryGen generates random Hydrogen queries over the genDB schema.
type queryGen struct{ rng *rand.Rand }

func (g *queryGen) pick(opts ...string) string {
	return opts[g.rng.Intn(len(opts))]
}

func (g *queryGen) predicate(alias string, depth int) string {
	switch g.rng.Intn(9) {
	case 0:
		return fmt.Sprintf("%s.k %s %d", alias, g.pick("=", "<>", "<", "<=", ">", ">="), g.rng.Intn(10))
	case 1:
		return fmt.Sprintf("%s.v %s %d", alias, g.pick("<", ">"), g.rng.Intn(20))
	case 2:
		return fmt.Sprintf("%s.k IS %sNULL", alias, g.pick("", "NOT "))
	case 3:
		return fmt.Sprintf("%s.k IN (%d, %d, %d)", alias, g.rng.Intn(10), g.rng.Intn(10), g.rng.Intn(10))
	case 4:
		return fmt.Sprintf("%s.k BETWEEN %d AND %d", alias, g.rng.Intn(5), 5+g.rng.Intn(5))
	case 5:
		if depth > 0 {
			return fmt.Sprintf("%s.k IN (SELECT k FROM tb WHERE v < %d)", alias, g.rng.Intn(20))
		}
		return fmt.Sprintf("%s.k = %d", alias, g.rng.Intn(10))
	case 6:
		if depth > 0 {
			return fmt.Sprintf("EXISTS (SELECT 1 FROM tc WHERE tc.k = %s.k)", alias)
		}
		return fmt.Sprintf("%s.v >= %d", alias, g.rng.Intn(20))
	case 7:
		if depth > 0 {
			return fmt.Sprintf("%s.k NOT IN (SELECT k FROM tc WHERE k > %d)", alias, g.rng.Intn(8))
		}
		return fmt.Sprintf("%s.k <> %d", alias, g.rng.Intn(10))
	default:
		return fmt.Sprintf("(%s OR %s)", g.predicate(alias, 0), g.predicate(alias, 0))
	}
}

func (g *queryGen) query() string {
	var b strings.Builder
	twoTables := g.rng.Intn(2) == 0
	if twoTables {
		b.WriteString("SELECT x.k, x.v, y.v FROM ta x, tb y WHERE x.k = y.k")
	} else {
		b.WriteString("SELECT x.k, x.v FROM ta x WHERE x.k IS NOT NULL")
	}
	for n := g.rng.Intn(3); n > 0; n-- {
		b.WriteString(" AND ")
		b.WriteString(g.predicate("x", 1))
	}
	if twoTables && g.rng.Intn(2) == 0 {
		b.WriteString(" AND ")
		b.WriteString(g.predicate("y", 0))
	}
	return b.String()
}

// lateralQuery generates queries with a correlated derived table in
// FROM (lateral application path).
func (g *queryGen) lateralQuery() string {
	return fmt.Sprintf(`SELECT x.k, lat.m FROM ta x,
		(SELECT MAX(v) m FROM tb WHERE tb.k = x.k) lat
		WHERE x.v %s %d`, g.pick("<", ">", ">="), g.rng.Intn(20))
}

// canonical renders a result set order-independently.
func canonical(res *Result) string {
	keys := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = datum.RowKey(r)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func TestPropertyRewritePreservesSemantics(t *testing.T) {
	db := genDB(t, 11)
	dbNoRewrite := genDB(t, 11)
	dbNoRewrite.SkipRewrite = true
	g := &queryGen{rng: rand.New(rand.NewSource(42))}
	for i := 0; i < 130; i++ {
		q := g.query()
		if i%13 == 0 {
			q = g.lateralQuery()
		}
		a, err := db.Exec(q, nil)
		if err != nil {
			t.Fatalf("query %d %q: %v", i, q, err)
		}
		b, err := dbNoRewrite.Exec(q, nil)
		if err != nil {
			t.Fatalf("query %d (no rewrite) %q: %v", i, q, err)
		}
		if canonical(a) != canonical(b) {
			t.Fatalf("rewrite changed semantics of %q:\nwith:    %d rows\nwithout: %d rows",
				q, len(a.Rows), len(b.Rows))
		}
	}
}

func TestPropertyJoinMethodIndependence(t *testing.T) {
	mk := func(drop ...string) *DB {
		db := genDB(t, 7)
		for _, d := range drop {
			db.Optimizer().Generator().RemoveAlternative("JOIN", d)
		}
		return db
	}
	dbs := map[string]*DB{
		"nl":    mk("HashJoin", "MergeJoin"),
		"hash":  mk("NestedLoop", "MergeJoin"),
		"merge": mk("NestedLoop", "HashJoin"),
	}
	g := &queryGen{rng: rand.New(rand.NewSource(99))}
	for i := 0; i < 60; i++ {
		q := g.query()
		var want string
		var wantName string
		for name, db := range dbs {
			res, err := db.Exec(q, nil)
			if err != nil {
				t.Fatalf("query %d via %s %q: %v", i, name, q, err)
			}
			c := canonical(res)
			if want == "" {
				want, wantName = c, name
				continue
			}
			if c != want {
				t.Fatalf("join methods disagree on %q: %s vs %s", q, wantName, name)
			}
		}
	}
}

func TestPropertyBushyIndependence(t *testing.T) {
	flat := genDB(t, 3)
	bushy := genDB(t, 3)
	bushy.Optimizer().AllowBushy = true
	bushy.Optimizer().AllowCartesian = true
	for i, q := range []string{
		"SELECT a.k FROM ta a, tb b, tc c WHERE a.k = b.k AND b.v = c.k",
		"SELECT a.k, c.s FROM ta a, tb b, tc c WHERE a.k = b.k AND a.k = c.k AND b.v > 5",
		"SELECT COUNT(*) FROM ta a, tb b, tc c WHERE a.k = b.k AND c.k = b.k",
	} {
		r1, err := flat.Exec(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := bushy.Exec(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if canonical(r1) != canonical(r2) {
			t.Fatalf("case %d: bushy enumeration changed semantics of %q", i, q)
		}
	}
}

// TestPropertyBudgetMonotoneSafety: any rewrite budget yields the same
// results (partial rewrites are still equivalence-preserving).
func TestPropertyBudgetMonotoneSafety(t *testing.T) {
	q := `SELECT partno FROM
		(SELECT DISTINCT partno, type FROM inventory) d
		WHERE d.type = 'CPU' AND d.partno IN (SELECT partno FROM quotations)`
	var want string
	for budget := 0; budget <= 6; budget++ {
		db := paperDB(t)
		db.Rewrite.Budget = budget
		res, err := db.Exec(q, nil)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		c := canonical(res)
		if budget == 0 {
			want = c
			continue
		}
		if c != want {
			t.Fatalf("budget %d changed results", budget)
		}
	}
}

// TestPropertyIndexTransparency: adding indexes never changes results.
func TestPropertyIndexTransparency(t *testing.T) {
	plain := genDB(t, 5)
	indexed := genDB(t, 5)
	mustExec(t, indexed, "CREATE INDEX ta_k ON ta (k)")
	mustExec(t, indexed, "CREATE INDEX tb_k ON tb (k)")
	mustExec(t, indexed, "CREATE INDEX ta_vk ON ta (v, k)")
	mustExec(t, indexed, "ANALYZE ta")
	mustExec(t, indexed, "ANALYZE tb")
	g := &queryGen{rng: rand.New(rand.NewSource(1234))}
	for i := 0; i < 80; i++ {
		q := g.query()
		a, err := plain.Exec(q, nil)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		b, err := indexed.Exec(q, nil)
		if err != nil {
			t.Fatalf("indexed %q: %v", q, err)
		}
		if canonical(a) != canonical(b) {
			t.Fatalf("indexes changed semantics of %q (%d vs %d rows)", q, len(a.Rows), len(b.Rows))
		}
	}
}

// TestPropertyDMLRoundTrip: inserted rows come back; deleted rows do
// not; index and heap agree after churn.
func TestPropertyDMLRoundTrip(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE t (k INT NOT NULL, v INT)")
	mustExec(t, db, "CREATE UNIQUE INDEX t_k ON t (k)")
	rng := rand.New(rand.NewSource(77))
	live := map[int64]int64{}
	for op := 0; op < 400; op++ {
		k := int64(rng.Intn(60))
		switch rng.Intn(3) {
		case 0: // insert (may violate uniqueness)
			v := int64(rng.Intn(100))
			_, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", k, v), nil)
			if _, exists := live[k]; exists {
				if err == nil {
					t.Fatalf("duplicate key %d accepted", k)
				}
			} else if err != nil {
				t.Fatalf("insert %d: %v", k, err)
			} else {
				live[k] = v
			}
		case 1: // update
			v := int64(rng.Intn(100))
			res := mustExec(t, db, fmt.Sprintf("UPDATE t SET v = %d WHERE k = %d", v, k))
			if _, exists := live[k]; exists {
				if res.Affected != 1 {
					t.Fatalf("update affected %d", res.Affected)
				}
				live[k] = v
			} else if res.Affected != 0 {
				t.Fatal("update of missing key affected rows")
			}
		case 2: // delete
			res := mustExec(t, db, fmt.Sprintf("DELETE FROM t WHERE k = %d", k))
			if _, exists := live[k]; exists {
				if res.Affected != 1 {
					t.Fatalf("delete affected %d", res.Affected)
				}
				delete(live, k)
			} else if res.Affected != 0 {
				t.Fatal("delete of missing key affected rows")
			}
		}
	}
	// Final state agrees, via scan and via index.
	res := mustExec(t, db, "SELECT k, v FROM t ORDER BY k")
	if len(res.Rows) != len(live) {
		t.Fatalf("live rows %d, want %d", len(res.Rows), len(live))
	}
	for _, r := range res.Rows {
		if live[r[0].Int()] != r[1].Int() {
			t.Fatalf("row %v disagrees with model", r)
		}
	}
	for k, v := range live {
		r := mustExec(t, db, fmt.Sprintf("SELECT v FROM t WHERE k = %d", k))
		if len(r.Rows) != 1 || r.Rows[0][0].Int() != v {
			t.Fatalf("index lookup k=%d = %v, want %d", k, r.Rows, v)
		}
	}
}

// TestPropertyRecursiveRestrictionEquivalence: the magic-sets-style
// recursive-selection-pushdown rule must not change results, on random
// graphs and random source restrictions.
func TestPropertyRecursiveRestrictionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 5; trial++ {
		db := Open()
		dbOff := Open()
		dbOff.SkipRewrite = true
		for _, d := range []*DB{db, dbOff} {
			mustExec(t, d, "CREATE TABLE edges (src INT, dst INT)")
		}
		for i := 0; i < 60; i++ {
			s, dst := rng.Intn(20), rng.Intn(20)
			q := fmt.Sprintf("INSERT INTO edges VALUES (%d, %d)", s, dst)
			mustExec(t, db, q)
			mustExec(t, dbOff, q)
		}
		q := fmt.Sprintf(`WITH RECURSIVE reach (src, dst) AS (
			SELECT src, dst FROM edges
			UNION SELECT r.src, e.dst FROM reach r, edges e WHERE r.dst = e.src)
			SELECT src, dst FROM reach WHERE src = %d`, rng.Intn(20))
		a, err := db.Exec(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dbOff.Exec(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if canonical(a) != canonical(b) {
			t.Fatalf("trial %d: magic restriction changed results (%d vs %d rows)",
				trial, len(a.Rows), len(b.Rows))
		}
	}
}

// TestPropertyAggregatesMatchModel: random data, GROUP BY results are
// checked against an independent Go model.
func TestPropertyAggregatesMatchModel(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE m (g INT, v INT)")
	rng := rand.New(rand.NewSource(314))
	type agg struct {
		n        int64
		sum      int64
		min, max int64
		anyV     bool
	}
	model := map[int64]*agg{}
	for i := 0; i < 500; i++ {
		g := int64(rng.Intn(12))
		var vTxt string
		a := model[g]
		if a == nil {
			a = &agg{min: 1 << 60, max: -(1 << 60)}
			model[g] = a
		}
		if rng.Intn(10) == 0 {
			vTxt = "NULL"
		} else {
			v := int64(rng.Intn(1000))
			vTxt = fmt.Sprintf("%d", v)
			a.sum += v
			a.n++
			a.anyV = true
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
		}
		mustExec(t, db, fmt.Sprintf("INSERT INTO m VALUES (%d, %s)", g, vTxt))
	}
	res := mustExec(t, db, `SELECT g, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v), AVG(v)
		FROM m GROUP BY g ORDER BY g`)
	if len(res.Rows) != len(model) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(model))
	}
	totalRows := map[int64]int64{}
	// Recompute COUNT(*) per group from the model insert loop: count
	// rows regardless of NULL. Track via a second pass query.
	all := mustExec(t, db, "SELECT g FROM m")
	for _, r := range all.Rows {
		totalRows[r[0].Int()]++
	}
	for _, r := range res.Rows {
		g := r[0].Int()
		a := model[g]
		if r[1].Int() != totalRows[g] {
			t.Fatalf("g=%d COUNT(*) = %v, want %d", g, r[1], totalRows[g])
		}
		if r[2].Int() != a.n {
			t.Fatalf("g=%d COUNT(v) = %v, want %d", g, r[2], a.n)
		}
		if !a.anyV {
			if !r[3].IsNull() || !r[4].IsNull() || !r[5].IsNull() || !r[6].IsNull() {
				t.Fatalf("g=%d all-NULL aggregates = %v", g, r)
			}
			continue
		}
		if r[3].Int() != a.sum || r[4].Int() != a.min || r[5].Int() != a.max {
			t.Fatalf("g=%d sum/min/max = %v, want %d/%d/%d", g, r, a.sum, a.min, a.max)
		}
		wantAvg := float64(a.sum) / float64(a.n)
		if diff := r[6].Float() - wantAvg; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("g=%d avg = %v, want %v", g, r[6], wantAvg)
		}
	}
}

// TestPropertyOuterJoinMatchesModel: left outer join against a Go
// model, with NULL keys sprinkled in.
func TestPropertyOuterJoinMatchesModel(t *testing.T) {
	db := genDB(t, 21)
	res := mustExec(t, db, `SELECT x.k, y.v FROM ta x LEFT OUTER JOIN tb y ON x.k = y.k`)
	// Model: load both tables, join by hand.
	taRows := mustExec(t, db, "SELECT k FROM ta").Rows
	tbRows := mustExec(t, db, "SELECT k, v FROM tb").Rows
	want := 0
	for _, a := range taRows {
		matches := 0
		if !a[0].IsNull() {
			for _, b := range tbRows {
				if !b[0].IsNull() && a[0].Int() == b[0].Int() {
					matches++
				}
			}
		}
		if matches == 0 {
			want++ // preserved with NULL
		} else {
			want += matches
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("outer join rows = %d, model says %d", len(res.Rows), want)
	}
}

// TestPropertySortStableAndNullsFirst: ORDER BY places NULLs first and
// sorts stably within equal keys.
func TestPropertySortNullsFirst(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE s (a INT)")
	mustExec(t, db, "INSERT INTO s VALUES (3), (NULL), (1), (NULL), (2)")
	res := mustExec(t, db, "SELECT a FROM s ORDER BY a")
	if !res.Rows[0][0].IsNull() || !res.Rows[1][0].IsNull() {
		t.Fatalf("NULLs must sort first: %v", res.Rows)
	}
	if res.Rows[2][0].Int() != 1 || res.Rows[4][0].Int() != 3 {
		t.Fatalf("sort order: %v", res.Rows)
	}
	res = mustExec(t, db, "SELECT a FROM s ORDER BY a DESC")
	if !res.Rows[4][0].IsNull() {
		t.Fatalf("DESC puts NULLs last: %v", res.Rows)
	}
}
