package starburst

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// The paper claims the STAR representation can express "filtration
// methods such as semi-joins and Bloom-joins [MACK86]" among the
// strategies fitting in under 20 rules. This test makes that claim
// concrete: a DBC adds a Bloom-join — a hash join whose build side
// first publishes a Bloom filter used to discard probe tuples early —
// as ONE STAR alternative plus one registered QES operator, with no
// changes to the evaluator, the search strategy, or existing operators.

// bloomFilter is a minimal Bloom filter over datum hashes.
type bloomFilter struct {
	bits []uint64
	mask uint64
}

func newBloom(n int) *bloomFilter {
	size := 1
	for size < n*8 {
		size <<= 1
	}
	return &bloomFilter{bits: make([]uint64, (size+63)/64), mask: uint64(size - 1)}
}

func (b *bloomFilter) hashes(h uint64) (uint64, uint64) {
	f := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(h >> (8 * i))
	}
	f.Write(buf[:])
	h2 := f.Sum64()
	return h & b.mask, h2 & b.mask
}

func (b *bloomFilter) add(h uint64) {
	i1, i2 := b.hashes(h)
	b.bits[i1/64] |= 1 << (i1 % 64)
	b.bits[i2/64] |= 1 << (i2 % 64)
}

func (b *bloomFilter) mayContain(h uint64) bool {
	i1, i2 := b.hashes(h)
	return b.bits[i1/64]&(1<<(i1%64)) != 0 && b.bits[i2/64]&(1<<(i2%64)) != 0
}

// bloomJoinOp is the DBC's executor: build side materialized into a
// hash table + Bloom filter; probe tuples failing the filter are
// discarded without touching the hash table.
type bloomJoinOp struct {
	left, right  Stream
	lKeys, rKeys []int

	table   map[uint64][]datum.Row
	bloom   *bloomFilter
	current datum.Row
	bucket  []datum.Row
	bi      int
	// Filtered counts probe rows rejected by the Bloom filter (for the
	// test's observability).
	Filtered *int64
}

func (j *bloomJoinOp) Open(ctx *exec.Ctx) error {
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	rows, err := exec.Run(ctx, j.right)
	if err != nil {
		return err
	}
	j.table = map[uint64][]datum.Row{}
	j.bloom = newBloom(len(rows) + 1)
	for _, r := range rows {
		h := datum.HashRow(r, j.rKeys)
		j.table[h] = append(j.table[h], r)
		j.bloom.add(h)
	}
	j.current = nil
	return nil
}

func (j *bloomJoinOp) Next(ctx *exec.Ctx) (datum.Row, bool, error) {
	for {
		if j.current == nil {
			row, ok, err := j.left.Next(ctx)
			if err != nil || !ok {
				return nil, false, err
			}
			h := datum.HashRow(row, j.lKeys)
			if !j.bloom.mayContain(h) {
				*j.Filtered++
				continue // Bloom filter rejects: skip hash probe
			}
			j.current = row
			j.bucket = j.table[h]
			j.bi = 0
		}
		for j.bi < len(j.bucket) {
			r := j.bucket[j.bi]
			j.bi++
			eq := true
			for i := range j.lKeys {
				if !datum.Equal(j.current[j.lKeys[i]], r[j.rKeys[i]]) {
					eq = false
					break
				}
			}
			if eq {
				return datum.Concat(j.current, r), true, nil
			}
		}
		j.current = nil
	}
}

func (j *bloomJoinOp) Close(ctx *exec.Ctx) error {
	j.table = nil
	j.left.Close(ctx)
	return j.right.Close(ctx)
}

func TestBloomJoinSTARExpressible(t *testing.T) {
	db := Open()
	mustExec(t, db, "CREATE TABLE probe (k INT, v INT)")
	mustExec(t, db, "CREATE TABLE build (k INT, v INT)")
	for i := 0; i < 1000; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO probe VALUES (%d, %d)", i, i))
	}
	for i := 0; i < 50; i++ { // build side matches only 5% of probes
		mustExec(t, db, fmt.Sprintf("INSERT INTO build VALUES (%d, %d)", i*20, i))
	}
	mustExec(t, db, "ANALYZE probe")
	mustExec(t, db, "ANALYZE build")

	var filtered int64
	// One STAR alternative...
	db.AddSTARAlternative("JOIN", &STARAlternative{
		Name: "BloomJoin",
		Build: func(ctx *OptCtx, a OptArgs) ([]*PlanNode, error) {
			if a.JoinKind != "" && a.JoinKind != plan.KindRegular {
				return nil, nil
			}
			if len(a.Left) == 0 || len(a.Right) == 0 {
				return nil, nil
			}
			l, r := cheapestOf(a.Left), cheapestOf(a.Right)
			// Probe with the larger side, build (and filter) from the
			// smaller — the configuration where Bloom filtration pays.
			if l.Props.Rows < r.Props.Rows {
				l, r = r, l
			}
			ls, rs := equiSlots(a.Preds, l, r)
			if len(ls) == 0 {
				return nil, nil
			}
			cols := append(append([]plan.ColRef(nil), l.Cols...), r.Cols...)
			types := append(append([]datum.TypeID(nil), l.Types...), r.Types...)
			n := &PlanNode{
				Op: "BLOOMJOIN", Inputs: []*PlanNode{l, r},
				Cols: cols, Types: types,
				EquiLeft: ls, EquiRight: rs,
				Props: plan.Props{Rows: 1, Cost: 0.0001}, // force selection
			}
			return []*PlanNode{n}, nil
		},
	})
	// ...plus one registered operator.
	db.RegisterOperator("BLOOMJOIN", func(b *exec.Builder, n *plan.Node, inputs []exec.Stream, corr map[plan.ColRef]int) (exec.Stream, error) {
		return &bloomJoinOp{
			left: inputs[0], right: inputs[1],
			lKeys: n.EquiLeft, rKeys: n.EquiRight,
			Filtered: &filtered,
		}, nil
	})

	stmt, err := db.Prepare("SELECT p.v FROM probe p, build b WHERE p.k = b.k")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stmt.Plan(), "BLOOMJOIN") {
		t.Fatalf("bloom join not chosen:\n%s", stmt.Plan())
	}
	res, err := stmt.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 50 {
		t.Fatalf("bloom join rows = %d, want 50", len(res.Rows))
	}
	// Most of the 1000 probe rows must have been rejected by the filter
	// before the hash probe.
	if filtered < 800 {
		t.Fatalf("bloom filter rejected only %d probe rows", filtered)
	}
	t.Logf("bloom filter discarded %d/1000 probe tuples before the hash probe", filtered)
}

// cheapestOf and equiSlots mirror the unexported optimizer helpers for
// DBC use (a real DBC would keep these in their extension package).
func cheapestOf(ps []*plan.Node) *plan.Node {
	var best *plan.Node
	for _, p := range ps {
		if best == nil || p.Props.Cost < best.Props.Cost {
			best = p
		}
	}
	return best
}

func equiSlots(preds []expr.Expr, l, r *plan.Node) (ls, rs []int) {
	for _, p := range preds {
		cmp, ok := p.(*expr.Cmp)
		if !ok || cmp.Op != expr.OpEq {
			continue
		}
		lc, lok := cmp.L.(*expr.Col)
		rc, rok := cmp.R.(*expr.Col)
		if !lok || !rok {
			continue
		}
		if a, b := l.SlotOf(lc.QID, lc.Ord), r.SlotOf(rc.QID, rc.Ord); a >= 0 && b >= 0 {
			ls, rs = append(ls, a), append(rs, b)
			continue
		}
		if a, b := l.SlotOf(rc.QID, rc.Ord), r.SlotOf(lc.QID, lc.Ord); a >= 0 && b >= 0 {
			ls, rs = append(ls, a), append(rs, b)
		}
	}
	return
}

var _ = optimizer.Args{} // keep the import for the type aliases above
